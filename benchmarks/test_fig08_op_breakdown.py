"""Benchmark regenerating Figure 8: operation-type breakdown per network."""

from __future__ import annotations

from repro.harness import fig08_op_breakdown


def test_fig08_op_breakdown(benchmark, regenerate):
    """Figure 8: operation-type breakdown per network."""
    regenerate(benchmark, fig08_op_breakdown.run)
