"""Benchmark regenerating Figure 8: operation-type breakdown per network."""

from __future__ import annotations


def test_fig08_op_breakdown(benchmark, regenerate):
    """Figure 8: operation-type breakdown per network."""
    regenerate(benchmark, "fig08")
