"""Benchmark regenerating Figure 13: L2 misses per layer type (no L1D)."""

from __future__ import annotations


def test_fig13_l2_misses(benchmark, regenerate):
    """Figure 13: L2 misses per layer type (no L1D)."""
    regenerate(benchmark, "fig13")
