"""Benchmark regenerating Figure 16: AlexNet per-layer scheduler sensitivity."""

from __future__ import annotations


def test_fig16_scheduler_alexnet(benchmark, regenerate):
    """Figure 16: AlexNet per-layer scheduler sensitivity."""
    regenerate(benchmark, "fig16")
