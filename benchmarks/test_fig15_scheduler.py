"""Benchmark regenerating Figure 15: warp-scheduler sensitivity."""

from __future__ import annotations


def test_fig15_scheduler(benchmark, regenerate):
    """Figure 15: warp-scheduler sensitivity."""
    regenerate(benchmark, "fig15")
