"""Benchmark regenerating Figure 12: register-file usage per SM."""

from __future__ import annotations

from repro.harness import fig12_register_usage


def test_fig12_register_usage(benchmark, regenerate):
    """Figure 12: register-file usage per SM."""
    regenerate(benchmark, fig12_register_usage.run)
