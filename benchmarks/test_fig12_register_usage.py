"""Benchmark regenerating Figure 12: register-file usage per SM."""

from __future__ import annotations


def test_fig12_register_usage(benchmark, regenerate):
    """Figure 12: register-file usage per SM."""
    regenerate(benchmark, "fig12")
