"""Benchmark regenerating Figure 14: L2 miss ratio per layer type (no L1D)."""

from __future__ import annotations


def test_fig14_l2_miss_ratio(benchmark, regenerate):
    """Figure 14: L2 miss ratio per layer type (no L1D)."""
    regenerate(benchmark, "fig14")
