"""Ablation: MSHR file size vs memory-throttle stalls.

Figure 7 attributes fully-connected layers' stalls to memory throttling
(MSHR exhaustion).  This ablation sweeps the MSHR count on CifarNet's
FC kernel and checks the mechanism: more MSHRs, fewer throttle stalls.
"""

from __future__ import annotations

from dataclasses import replace

from repro.gpu import SimOptions, simulate_kernel
from repro.kernels.compile import compiled_network
from repro.platforms import GP102
from repro.profiling.stall import StallReason

MSHR_SWEEP = (8, 32, 128)


def _run_sweep():
    kernel = {k.name: k for k in compiled_network("cifarnet")}["fc1"]
    throttle = {}
    cycles = {}
    for entries in MSHR_SWEEP:
        config = replace(GP102, mshr_entries=entries)
        result = simulate_kernel(kernel, config, SimOptions())
        fractions = result.stats.stall_fractions()
        throttle[entries] = fractions.get(StallReason.MEMORY_THROTTLE, 0.0)
        cycles[entries] = result.stats.cycles
    return throttle, cycles


def test_mshr_count_drives_memory_throttle(benchmark):
    """More MSHRs: faster FC kernel and (eventually) no throttling."""
    throttle, cycles = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    # Performance improves monotonically with MSHR capacity.
    assert cycles[8] > cycles[32] > cycles[128], cycles
    # Small files throttle; a big file absorbs the FC's 32-wide loads.
    assert throttle[8] > 0.05 and throttle[32] > 0.05, throttle
    assert throttle[128] < 0.01, throttle
