"""Benchmark regenerating Figure 4: average power per layer type."""

from __future__ import annotations


def test_fig04_layer_power(benchmark, regenerate):
    """Figure 4: average power per layer type."""
    regenerate(benchmark, "fig04")
