"""Benchmark regenerating Figure 4: average power per layer type."""

from __future__ import annotations

from repro.harness import fig04_layer_power


def test_fig04_layer_power(benchmark, regenerate):
    """Figure 4: average power per layer type."""
    regenerate(benchmark, fig04_layer_power.run)
