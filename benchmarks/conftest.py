"""Shared fixtures for the benchmark harness.

Every paper table/figure gets one benchmark that regenerates it through
the shared plan -> execute -> aggregate pipeline in :mod:`repro.runs`.
The first full run simulates every (network, platform, L1, scheduler)
combination (tens of minutes on one core); subsequent runs load from
the unified result store (``.repro-cache`` or ``$REPRO_CACHE_DIR``)
and complete in seconds.
"""

from __future__ import annotations

import pytest

from repro.runs import Executor, ResultStore, run_experiment
from repro.runs.registry import get_experiment


@pytest.fixture(scope="session")
def executor() -> Executor:
    """Store-backed executor shared by all benchmarks."""
    return Executor(ResultStore(), verbose=True)


@pytest.fixture
def regenerate(executor):
    """Run one experiment exactly once under pytest-benchmark timing."""

    def _regenerate(benchmark, exp_id):
        experiment = get_experiment(exp_id)
        result = benchmark.pedantic(
            run_experiment, args=(experiment, executor), rounds=1, iterations=1
        )
        failed = [str(check) for check in result.checks if not check.passed]
        assert not failed, f"{result.exp_id}: {failed}"
        return result

    return _regenerate
