"""Shared fixtures for the benchmark harness.

Every paper table/figure gets one benchmark that regenerates it through
the shared disk-cached :class:`~repro.harness.runner.Runner`.  The first
full run simulates every (network, platform, L1, scheduler) combination
(tens of minutes on one core); subsequent runs load from
``.tango_cache`` and complete in seconds.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import Runner


@pytest.fixture(scope="session")
def runner() -> Runner:
    """Disk-cached simulation runner shared by all benchmarks."""
    return Runner(cache_dir=".tango_cache", verbose=True)


@pytest.fixture
def regenerate(runner):
    """Run one experiment exactly once under pytest-benchmark timing."""

    def _regenerate(benchmark, experiment):
        result = benchmark.pedantic(experiment, args=(runner,), rounds=1, iterations=1)
        failed = [str(check) for check in result.checks if not check.passed]
        assert not failed, f"{result.exp_id}: {failed}"
        return result

    return _regenerate
