"""Benchmark regenerating Figure 2: normalized execution time vs L1D size."""

from __future__ import annotations


def test_fig02_l1_sensitivity(benchmark, regenerate):
    """Figure 2: normalized execution time vs L1D size."""
    regenerate(benchmark, "fig02")
