"""Benchmarks regenerating Tables I-IV of the paper."""

from __future__ import annotations

from repro.harness import tables


def test_table1_inputs_and_models(benchmark, regenerate):
    """Table I: input data, pre-trained models and outputs."""
    regenerate(benchmark, tables.run_table1)


def test_table2_gpu_architectures(benchmark, regenerate):
    """Table II: the GK210 / TX1 / GP102 evaluation platforms."""
    regenerate(benchmark, tables.run_table2)


def test_table3_kernel_configurations(benchmark, regenerate):
    """Table III: per-kernel grid/block/regs/smem/cmem."""
    regenerate(benchmark, tables.run_table3)


def test_table4_fpga_platform(benchmark, regenerate):
    """Table IV: the PynQ-Z1 FPGA platform."""
    regenerate(benchmark, tables.run_table4)
