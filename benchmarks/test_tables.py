"""Benchmarks regenerating Tables I-IV of the paper."""

from __future__ import annotations


def test_table1_inputs_and_models(benchmark, regenerate):
    """Table I: input data, pre-trained models and outputs."""
    regenerate(benchmark, "table1")


def test_table2_gpu_architectures(benchmark, regenerate):
    """Table II: the GK210 / TX1 / GP102 evaluation platforms."""
    regenerate(benchmark, "table2")


def test_table3_kernel_configurations(benchmark, regenerate):
    """Table III: per-kernel grid/block/regs/smem/cmem."""
    regenerate(benchmark, "table3")


def test_table4_fpga_platform(benchmark, regenerate):
    """Table IV: the PynQ-Z1 FPGA platform."""
    regenerate(benchmark, "table4")
