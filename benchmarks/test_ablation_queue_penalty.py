"""Ablation: the scheduler queue-management penalty (Observation 12).

Figure 15's LRR-beats-GTO result rests on one mechanism: GTO/TLV move
warps between ready and pending queues on every memory issue, a cost
LRR avoids.  This ablation sets that penalty to zero and checks that
LRR's advantage on a conv-heavy network collapses — i.e. the modelled
mechanism, not some artifact, produces the figure.
"""

from __future__ import annotations

from repro.gpu import SimOptions, simulate_network
from repro.platforms import GP102


def _lrr_advantage(queue_penalty: int) -> float:
    cycles = {}
    for scheduler in ("gto", "lrr"):
        options = SimOptions(scheduler=scheduler, queue_penalty=queue_penalty)
        cycles[scheduler] = simulate_network("cifarnet", GP102, options).total_cycles
    return 1.0 - cycles["lrr"] / cycles["gto"]


def _run_sweep():
    return {penalty: _lrr_advantage(penalty) for penalty in (0, 1, 2)}


def test_queue_penalty_is_the_lrr_mechanism(benchmark):
    """LRR's win must grow with the queue penalty and vanish without it."""
    advantage = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    assert advantage[0] < 0.05, f"no penalty -> no LRR edge, got {advantage}"
    assert advantage[1] > advantage[0], advantage
    assert advantage[2] >= advantage[1] - 0.02, advantage
