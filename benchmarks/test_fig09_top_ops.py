"""Benchmark regenerating Figure 9: top-10 operations across the suite."""

from __future__ import annotations


def test_fig09_top_ops(benchmark, regenerate):
    """Figure 9: top-10 operations across the suite."""
    regenerate(benchmark, "fig09")
