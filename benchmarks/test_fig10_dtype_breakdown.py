"""Benchmark regenerating Figure 10: data-type mix across ResNet layers."""

from __future__ import annotations


def test_fig10_dtype_breakdown(benchmark, regenerate):
    """Figure 10: data-type mix across ResNet layers."""
    regenerate(benchmark, "fig10")
