"""Ablation: loop-trip sampling budget (DESIGN.md section 5).

The simulator samples long reduction loops (SMARTS-style) and rescales
counters; this ablation validates the methodology by sweeping the trip
budget on CifarNet and checking that the headline statistics are stable:
the Figure 1 conv-dominance invariant must hold at every budget and the
total cycle estimate must converge as the budget grows.
"""

from __future__ import annotations

from dataclasses import replace

from repro.gpu import SimOptions, simulate_network
from repro.platforms import GP102

BUDGETS = (16, 32, 64)


def _run_sweep():
    totals = {}
    conv_shares = {}
    for budget in BUDGETS:
        options = SimOptions(max_trips=budget, max_outer_trips=2)
        result = simulate_network("cifarnet", GP102, options)
        totals[budget] = result.total_cycles
        by_cat = result.cycles_by_category()
        conv_shares[budget] = by_cat["Conv"] / result.total_cycles
    return totals, conv_shares


def test_sampling_budget_stability(benchmark):
    """Headline statistics must be stable across sampling budgets."""
    totals, conv_shares = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    # Conv dominance (the Figure 1 claim) holds at every budget.
    for budget, share in conv_shares.items():
        assert share > 0.8, f"budget {budget}: conv share {share:.0%}"
    # Total cycles converge: adjacent budgets agree within 40%.
    values = [totals[b] for b in BUDGETS]
    for a, b in zip(values, values[1:]):
        assert 0.6 <= a / b <= 1.67, f"unstable totals: {totals}"
