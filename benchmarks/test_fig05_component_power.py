"""Benchmark regenerating Figure 5: power breakdown by hardware component."""

from __future__ import annotations


def test_fig05_component_power(benchmark, regenerate):
    """Figure 5: power breakdown by hardware component."""
    regenerate(benchmark, "fig05")
