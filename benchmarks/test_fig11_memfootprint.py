"""Benchmark regenerating Figure 11: device-memory footprint."""

from __future__ import annotations


def test_fig11_memfootprint(benchmark, regenerate):
    """Figure 11: device-memory footprint."""
    regenerate(benchmark, "fig11")
