"""Benchmark regenerating Figure 11: device-memory footprint."""

from __future__ import annotations

from repro.harness import fig11_memfootprint


def test_fig11_memfootprint(benchmark, regenerate):
    """Figure 11: device-memory footprint."""
    regenerate(benchmark, fig11_memfootprint.run)
