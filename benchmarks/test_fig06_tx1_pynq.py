"""Benchmark regenerating Figure 6: TX1-vs-PynQ energy comparison."""

from __future__ import annotations


def test_fig06_tx1_pynq(benchmark, regenerate):
    """Figure 6: TX1-vs-PynQ energy comparison."""
    regenerate(benchmark, "fig06")
