"""Benchmark regenerating Figure 1: execution-time breakdown per layer type."""

from __future__ import annotations


def test_fig01_exec_breakdown(benchmark, regenerate):
    """Figure 1: execution-time breakdown per layer type."""
    regenerate(benchmark, "fig01")
