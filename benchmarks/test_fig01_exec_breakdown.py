"""Benchmark regenerating Figure 1: execution-time breakdown per layer type."""

from __future__ import annotations

from repro.harness import fig01_exec_breakdown


def test_fig01_exec_breakdown(benchmark, regenerate):
    """Figure 1: execution-time breakdown per layer type."""
    regenerate(benchmark, fig01_exec_breakdown.run)
