"""Benchmark regenerating Figure 7: stall-cycle breakdown on the GK210."""

from __future__ import annotations


def test_fig07_stall_breakdown(benchmark, regenerate):
    """Figure 7: stall-cycle breakdown on the GK210."""
    regenerate(benchmark, "fig07")
