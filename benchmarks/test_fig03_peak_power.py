"""Benchmark regenerating Figure 3: peak power consumption per network."""

from __future__ import annotations


def test_fig03_peak_power(benchmark, regenerate):
    """Figure 3: peak power consumption per network."""
    regenerate(benchmark, "fig03")
