"""Ablation: access coalescing quality per layer family.

The paper's cache observations rest on how differently layer types use
the coalescer: convolution warps touch contiguous pixels (near-perfect
coalescing), FC warps with one weight row per lane degenerate to one
transaction per lane.  This bench measures transactions-per-load for a
conv and an FC kernel and checks the separation that drives Figures 7,
13 and 14.
"""

from __future__ import annotations

from repro.gpu import SimOptions, simulate_kernel
from repro.kernels.compile import compiled_network
from repro.platforms import GP102


def _transactions_per_load(network: str, kernel_name: str) -> float:
    kernel = {k.name: k for k in compiled_network(network)}[kernel_name]
    result = simulate_kernel(kernel, GP102, SimOptions())
    stats = result.stats
    loads = stats.issued_by_pipe
    from repro.isa.opcodes import Pipe

    ldst_issues = loads.get(Pipe.LDST, 0.0)
    if not ldst_issues:
        return 0.0
    return stats.load_transactions / ldst_issues


def _run():
    return {
        "conv (cifarnet conv2)": _transactions_per_load("cifarnet", "conv2"),
        "fc (cifarnet fc1)": _transactions_per_load("cifarnet", "fc1"),
    }


def test_fc_coalesces_far_worse_than_conv(benchmark):
    """FC's strided weight rows produce many-fold more transactions."""
    ratios = benchmark.pedantic(_run, rounds=1, iterations=1)
    conv = ratios["conv (cifarnet conv2)"]
    fc = ratios["fc (cifarnet fc1)"]
    assert 0 < conv <= 4.0, ratios  # conv loads coalesce to a few lines
    assert fc >= 3 * conv, ratios  # FC degenerates toward 1 tx per lane
