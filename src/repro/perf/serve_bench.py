"""Serving-engine benchmark: event-loop throughput on a synthetic fleet.

Backs ``repro bench --serve``.  The scenario is fixed — a 20-device
GP102 fleet, two tenants (a diurnal interactive stream and a Poisson
batch stream), least-loaded scheduling, SLO-aware admission and the
queue-depth autoscaler — and the latency profiles are *synthetic*
(built analytically, no GPU simulation), so the numbers measure the
discrete-event engine alone: arrivals through admission, scheduling,
batching, dispatch and completion.

Both event loops are timed back-to-back over the identical scenario,
``runs`` samples each, and their :meth:`~repro.serve.stats.ServeStats.
digest` values are cross-checked — the benchmark doubles as an
equivalence smoke.  The emitted payload maps ``serve-fast`` and
``serve-heap`` to ``BENCH_sim.json``-shaped entries (``cold_s`` best-
of-N, mean/std/ci95, ``samples.cold``), so the committed
``BENCH_serve.json`` plugs straight into :func:`repro.perf.bench.
compare_bench` for same-machine regression tracking, and
:func:`gate_serve` runs the one-sided Mann-Whitney check that the fast
loop is not significantly slower than the reference heap on this
runner.
"""

from __future__ import annotations

import time

from repro.perf.stats import compare_samples, summarize
from repro.serve.autoscale import AutoscaleConfig
from repro.serve.devices import build_fleet
from repro.serve.engine import ServeConfig, ServeSim
from repro.serve.pipeline import make_pipeline
from repro.serve.profiles import KernelTerm, LatencyProfile
from repro.serve.tenants import MultiTenantWorkload, Tenant
from repro.serve.workload import DiurnalWorkload, PoissonWorkload

#: Scenario scale: enough events that a run takes whole seconds (so
#: the Mann-Whitney test sees signal over scheduler noise), small
#: enough that ``--runs 5`` on both loops stays a couple of minutes.
REQUESTS = 200_000
DEVICES = 20


def _profile(network: str, base_ms: float, per_item_ms: float) -> LatencyProfile:
    """An analytic profile: ``base_ms + per_item_ms * batch`` shape."""
    clock_ghz = 1.0
    return LatencyProfile(
        network, "GP102", clock_ghz,
        launch_overhead_cycles=base_ms * clock_ghz * 1e6,
        terms=(KernelTerm(per_item_ms * clock_ghz * 1e6, 1, 1, 1),),
        dynamic_j=0.05, static_watts=40.0,
    )


def _scenario(requests: int, devices: int, seed: int):
    """The fixed benchmark scenario (fleet, profiles, workload, sim)."""
    profiles = {
        ("alexnet", "GP102"): _profile("alexnet", 1.0, 0.5),
        ("resnet", "GP102"): _profile("resnet", 2.0, 1.0),
    }
    fleet = build_fleet(f"gp102:{devices}")
    interactive = requests * 7 // 10
    workload = MultiTenantWorkload([
        (Tenant("interactive", slo_ms=20.0),
         DiurnalWorkload(6000.0, interactive, ["alexnet"],
                         period_ms=30_000.0, segments=32)),
        (Tenant("batch", slo_ms=100.0, priority=1),
         PoissonWorkload(2500.0, requests - interactive, ["resnet"])),
    ])
    pipeline = make_pipeline(
        admission="slo-aware",
        autoscale=AutoscaleConfig(
            template="gp102", min_devices=max(1, devices // 2),
            max_devices=devices, interval_ms=1000.0,
        ),
    )
    config = ServeConfig(scheduler="least-loaded", seed=seed,
                         admission="slo-aware")
    return ServeSim(fleet, profiles, workload, config, pipeline)


def _entry(
    samples: list[float], loop: str, digest: str, requests: int, devices: int
) -> dict:
    best = min(samples)
    spread = summarize(samples)
    return {
        "cold_s": best,
        "cold_mean_s": round(spread["mean"], 6),
        "cold_std_s": round(spread["std"], 6),
        "cold_ci95_s": round(spread["ci95"], 6),
        "samples": {"cold": samples},
        "requests": requests,
        "devices": devices,
        "throughput_rps": round(requests / best),
        "loop": loop,
        "digest": digest,
    }


def run_serve_bench(
    requests: int = REQUESTS,
    devices: int = DEVICES,
    runs: int = 3,
    seed: int = 0,
    verbose: bool = True,
) -> dict:
    """Benchmark both event loops; returns the ``BENCH_serve.json`` payload.

    One discarded warmup run primes allocator and profile memo state,
    then the loops are *interleaved* round by round so clock drift and
    thermal state bias neither side.  Raises :class:`RuntimeError` if
    the loops' stats digests disagree — a bit-identity failure is a
    correctness bug, not a perf number.
    """
    sim = _scenario(requests, devices, seed)
    loops = ("fast", "heap")
    sim.run(loops[0])  # warmup, discarded
    samples: dict[str, list[float]] = {loop: [] for loop in loops}
    digests: dict[str, str] = {}
    for _ in range(max(1, runs)):
        for loop in loops:
            start = time.perf_counter()
            stats = sim.run(loop)
            samples[loop].append(round(time.perf_counter() - start, 6))
            digests[loop] = stats.digest()
    if digests["fast"] != digests["heap"]:
        raise RuntimeError(
            f"event loops diverged: fast digest {digests['fast'][:16]}... "
            f"!= heap digest {digests['heap'][:16]}..."
        )
    payload: dict = {}
    for loop in loops:
        entry = _entry(samples[loop], loop, digests[loop], requests, devices)
        payload[f"serve-{loop}"] = entry
        if verbose:
            print(f"serve-{loop}   cold={entry['cold_s']:8.3f}s"
                  f"±{entry['cold_std_s']:.3f} "
                  f"throughput={entry['throughput_rps']:,} req/s "
                  f"({requests:,} requests, {devices} devices)", flush=True)
    return payload


def gate_serve(
    payload: dict, threshold: float = 1.25, alpha: float = 0.05
) -> dict:
    """The fast-loop gate: not significantly slower than the heap loop.

    Feeds the heap loop's cold samples (baseline) and the fast loop's
    (candidate) to :func:`repro.perf.stats.compare_samples`; the
    verdict's ``slower`` means the fast path regressed on this machine.
    """
    return compare_samples(
        payload["serve-heap"]["samples"]["cold"],
        payload["serve-fast"]["samples"]["cold"],
        threshold=threshold,
        alpha=alpha,
    )
