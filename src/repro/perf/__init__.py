"""Performance infrastructure: result caching and benchmarking.

* :mod:`repro.perf.cache` — persistent cross-run kernel-result cache
  keyed by (kernel signature, config, options, engine version).
* :mod:`repro.perf.bench` — the ``repro bench`` harness timing cold and
  warm-cache whole-network simulations (emits ``BENCH_sim.json``).
"""

from repro.perf.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CachedKernel,
    KernelResultCache,
    cache_key,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CachedKernel",
    "KernelResultCache",
    "cache_key",
    "default_cache_dir",
]
