"""Performance infrastructure: benchmarking over the unified store.

* :mod:`repro.perf.bench` — the ``repro bench`` harness timing cold,
  warm-kernel-cache and warm-run-store whole-network simulations
  (emits ``BENCH_sim.json``).
* :mod:`repro.perf.serve_bench` — the ``repro bench --serve`` harness
  timing both serving event loops on a synthetic fleet (emits
  ``BENCH_serve.json``) and gating the fast loop against the heap.

The kernel-cache layer lives in :mod:`repro.runs.store`; the package
re-exports its public names for convenience.  (The old
``repro.perf.cache`` shim completed its deprecation cycle and is gone.)
"""

from repro.runs.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CachedKernel,
    KernelResultCache,
    cache_key,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CachedKernel",
    "KernelResultCache",
    "cache_key",
    "default_cache_dir",
]
