"""Performance infrastructure: benchmarking plus a caching facade.

* :mod:`repro.perf.cache` — back-compat re-exports of the kernel-cache
  layer, which now lives in the unified :mod:`repro.runs.store`.
* :mod:`repro.perf.bench` — the ``repro bench`` harness timing cold,
  warm-kernel-cache and warm-run-store whole-network simulations
  (emits ``BENCH_sim.json``).
"""

from repro.perf.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CachedKernel,
    KernelResultCache,
    cache_key,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CachedKernel",
    "KernelResultCache",
    "cache_key",
    "default_cache_dir",
]
