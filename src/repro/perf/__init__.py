"""Performance infrastructure: benchmarking plus a caching facade.

* :mod:`repro.perf.cache` — deprecated back-compat re-exports of the
  kernel-cache layer, which now lives in the unified
  :mod:`repro.runs.store` (importing it warns; see CHANGES.md for the
  removal path).
* :mod:`repro.perf.bench` — the ``repro bench`` harness timing cold,
  warm-kernel-cache and warm-run-store whole-network simulations
  (emits ``BENCH_sim.json``).
"""

from repro.runs.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CachedKernel,
    KernelResultCache,
    cache_key,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CachedKernel",
    "KernelResultCache",
    "cache_key",
    "default_cache_dir",
]
