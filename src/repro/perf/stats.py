"""Small-sample statistics for the benchmark harness.

Everything here is hand-implemented over plain floats — no scipy — and
sized for the regime ``repro bench --runs N`` actually produces: a
handful (3–20) of wall-clock timings per network.

* :func:`summarize` — mean, sample standard deviation and a 95 %
  confidence interval on the mean (Student t, two-sided).
* :func:`mann_whitney_u` — one-sided Mann–Whitney U test (is sample B
  stochastically *greater* than sample A?) via the normal approximation
  with tie correction.  Rank-based, so a single outlier timing cannot
  fake or mask a regression the way a t-test's mean can.
* :func:`compare_samples` — the regression verdict used by
  ``repro bench --compare``: *slower* only when the mean ratio exceeds
  a threshold **and** the U test finds the shift significant.

With fewer than 3 runs per side the U statistic cannot reach
``p < 0.05`` (perfect 2-vs-2 separation floors at p ~ 0.12), so
:func:`compare_samples` degrades to a ratio-only check for
single-sample baselines and says so in its verdict — callers that want
robust significance should pass ``--runs 5`` or more.
"""

from __future__ import annotations

import math

#: Two-sided 95 % Student-t critical values by degrees of freedom; the
#: benchmark never sees more than ~30 runs, beyond which the normal
#: value (1.96) is within 2 %.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def _t95(df: int) -> float:
    if df <= 0:
        return 0.0
    if df in _T95:
        return _T95[df]
    for bound in (25, 30):
        if df <= bound:
            return _T95[bound]
    return 1.96


def summarize(samples: list[float]) -> dict:
    """Mean / sample std / 95 % CI half-width of *samples*.

    Returns ``{n, mean, std, ci95}``; ``std``/``ci95`` are 0.0 for a
    single sample (no spread information, not "certain").
    """
    n = len(samples)
    if n == 0:
        raise ValueError("summarize() needs at least one sample")
    mean = math.fsum(samples) / n
    if n == 1:
        return {"n": 1, "mean": mean, "std": 0.0, "ci95": 0.0}
    var = math.fsum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(var)
    ci95 = _t95(n - 1) * std / math.sqrt(n)
    return {"n": n, "mean": mean, "std": std, "ci95": ci95}


def mann_whitney_u(baseline: list[float], candidate: list[float]) -> dict:
    """One-sided Mann–Whitney U: p-value that *candidate* is drawn from
    a distribution stochastically **greater** (slower) than *baseline*.

    Normal approximation with tie correction; exact enough for the
    n >= 3 per side the benchmark uses (and conservative below that —
    tiny samples simply cannot reach small p).  Returns
    ``{u, p, n_baseline, n_candidate}`` where ``u`` counts
    (candidate > baseline) pairs, ties as half.
    """
    na, nb = len(baseline), len(candidate)
    if na == 0 or nb == 0:
        raise ValueError("mann_whitney_u() needs non-empty samples")
    # Rank the pooled samples (average ranks on ties).
    pooled = sorted(
        [(x, 0) for x in baseline] + [(x, 1) for x in candidate]
    )
    ranks = [0.0] * (na + nb)
    tie_term = 0.0
    i = 0
    while i < len(pooled):
        j = i
        while j < len(pooled) and pooled[j][0] == pooled[i][0]:
            j += 1
        avg_rank = (i + j + 1) / 2.0  # ranks are 1-based
        for k in range(i, j):
            ranks[k] = avg_rank
        t = j - i
        if t > 1:
            tie_term += t * (t * t - 1)
        i = j
    rank_sum_b = math.fsum(r for r, (_, side) in zip(ranks, pooled) if side)
    u = rank_sum_b - nb * (nb + 1) / 2.0  # pairs where candidate wins
    mean_u = na * nb / 2.0
    n = na + nb
    var_u = (na * nb / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0.0:  # all values identical
        return {"u": u, "p": 1.0, "n_baseline": na, "n_candidate": nb}
    # Continuity-corrected one-sided normal tail.
    z = (u - mean_u - 0.5) / math.sqrt(var_u)
    p = 0.5 * math.erfc(z / math.sqrt(2.0))
    return {"u": u, "p": min(1.0, max(0.0, p)), "n_baseline": na, "n_candidate": nb}


def compare_samples(
    baseline: list[float],
    candidate: list[float],
    threshold: float = 1.10,
    alpha: float = 0.05,
) -> dict:
    """Regression verdict: is *candidate* meaningfully slower than
    *baseline*?

    ``slower`` is True only when the candidate/baseline mean ratio
    exceeds *threshold* **and** the evidence supports it: a one-sided
    Mann–Whitney ``p < alpha`` when both sides have >= 2 samples, the
    bare ratio otherwise (``method: "ratio-only"`` in the verdict, for
    single-timing legacy baselines).
    """
    base = summarize(baseline)
    cand = summarize(candidate)
    ratio = cand["mean"] / base["mean"] if base["mean"] else float("inf")
    verdict = {
        "baseline": base,
        "candidate": cand,
        "ratio": ratio,
        "threshold": threshold,
        "alpha": alpha,
    }
    if len(baseline) < 2 or len(candidate) < 2:
        verdict["method"] = "ratio-only"
        verdict["p"] = None
        verdict["slower"] = ratio > threshold
        return verdict
    test = mann_whitney_u(baseline, candidate)
    verdict["method"] = "mann-whitney"
    verdict["p"] = test["p"]
    verdict["slower"] = ratio > threshold and test["p"] < alpha
    return verdict
