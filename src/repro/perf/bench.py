"""Engine benchmark: cold vs warm-cache whole-network simulation times.

Backs the ``repro bench`` subcommand.  For each network it times

* **cold** — a plain :func:`~repro.gpu.simulator.simulate_network` call,
  no persistent cache (pure engine speed);
* **warm** — the same call against the kernel layer of a freshly
  opened :class:`~repro.runs.store.ResultStore` whose directory was
  populated by a prior run, so every unique kernel is a disk hit;
* **run-warm** — an :class:`~repro.runs.executor.Executor` read of the
  whole-network run entry (the harness/serve fast path: one file, no
  per-kernel replay);
* **seed** (optional) — the frozen reference engine in
  :mod:`repro.gpu.seed_engine`, for before/after speedup reporting.

Each timing is taken ``runs`` times.  The legacy scalar fields
(``cold_s`` etc.) keep best-of-N semantics (the minimum, to suppress
scheduler noise), and every per-run sample is kept under ``samples`` so
:func:`compare_bench` can run a rank test instead of comparing two
noisy minima.  The emitted JSON maps each network to ``{cold_s,
warm_s, run_warm_s, kernels, unique_kernels, engine, engine_version,
samples, cold_mean_s, cold_std_s, cold_ci95_s}`` (plus ``seed_s`` when
requested) — the schema of the committed ``BENCH_sim.json``, a
superset of the pre-``--runs`` one.  The cold path runs with
canonical-signature dedup on (the default), so ``unique_kernels`` is
the number of simulations the engine actually performed per network.

:func:`compare_bench` is the regression gate behind ``repro bench
--compare``: per network it feeds the baseline's and the fresh run's
cold samples to :func:`repro.perf.stats.compare_samples` and flags
statistically significant slowdowns (one-sided Mann–Whitney, ratio
threshold); the CLI exits non-zero when any network regresses.
Baselines and candidates should come from the *same machine* — the
committed ``BENCH_sim.json`` documents one reference box, and the CI
gate benches two engines back-to-back on one runner rather than
comparing against the committed file across hardware.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.engine import engine_version, get_engine
from repro.gpu.simulator import simulate_network
from repro.perf.stats import compare_samples, summarize
from repro.runs import Executor, ResultStore, RunSpec


def _sample(fn, runs: int) -> list[float]:
    """Wall-clock each of ``runs`` calls of *fn* (all samples kept)."""
    samples: list[float] = []
    for _ in range(max(1, runs)):
        start = time.perf_counter()
        fn()
        samples.append(round(time.perf_counter() - start, 6))
    return samples


def bench_network(
    name: str,
    config: GpuConfig,
    options: SimOptions,
    cache_dir: str | Path,
    runs: int = 1,
    seed: bool = False,
) -> dict:
    """Time one network cold, warm-cache, and optionally on the seed engine."""
    result = simulate_network(name, config, options)
    cold = _sample(lambda: simulate_network(name, config, options), runs)
    stats = summarize(cold)
    samples = {"cold": cold}
    entry: dict = {
        "cold_s": min(cold),
        "cold_mean_s": round(stats["mean"], 6),
        "cold_std_s": round(stats["std"], 6),
        "cold_ci95_s": round(stats["ci95"], 6),
        "kernels": len(result.kernels),
        "unique_kernels": result.unique_kernels,
        "engine": get_engine(),
        "engine_version": engine_version(),
        "samples": samples,
    }
    # Populate the unified store through the shared executor, then time
    # disk-hit reloads through fresh store objects (no in-memory layer
    # carry-over): per-kernel replays first, whole-run entries second.
    spec = RunSpec(name, config, options)
    Executor(ResultStore(cache_dir)).run(spec)
    samples["warm"] = _sample(
        lambda: simulate_network(
            name, config, options, cache=ResultStore(cache_dir).kernels
        ),
        runs,
    )
    entry["warm_s"] = min(samples["warm"])
    samples["run_warm"] = _sample(
        lambda: Executor(ResultStore(cache_dir)).run(spec), runs
    )
    entry["run_warm_s"] = min(samples["run_warm"])
    if seed:
        from repro.gpu import seed_engine

        samples["seed"] = _sample(
            lambda: seed_engine.simulate_network(name, config, options), runs
        )
        entry["seed_s"] = min(samples["seed"])
    return entry


def run_bench(
    networks: list[str],
    config: GpuConfig,
    options: SimOptions,
    cache_dir: str | Path | None = None,
    runs: int = 1,
    seed: bool = False,
    verbose: bool = True,
) -> dict:
    """Benchmark *networks*; returns the ``BENCH_sim.json`` payload."""
    out: dict = {}
    for name in networks:
        if cache_dir is None:
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
                entry = bench_network(name, config, options, tmp, runs, seed)
        else:
            entry = bench_network(name, config, options, cache_dir, runs, seed)
        out[name] = entry
        if verbose:
            line = (f"{name:12s} cold={entry['cold_s']:8.3f}s"
                    f"±{entry['cold_std_s']:.3f} "
                    f"warm={entry['warm_s']:7.4f}s "
                    f"run-warm={entry['run_warm_s']:7.4f}s "
                    f"kernels={entry['kernels']} "
                    f"unique={entry['unique_kernels']}")
            if seed:
                ratio = entry["seed_s"] / entry["cold_s"] if entry["cold_s"] else 0.0
                line += f" seed={entry['seed_s']:8.3f}s ({ratio:.1f}x)"
            print(line, flush=True)
    return out


def _cold_samples(entry: dict) -> list[float]:
    """Cold samples of one payload entry; pre-``--runs`` payloads only
    carry the best-of scalar, which degrades the test to ratio-only."""
    samples = entry.get("samples", {}).get("cold")
    if samples:
        return [float(x) for x in samples]
    return [float(entry["cold_s"])]


def compare_bench(
    baseline: dict,
    candidate: dict,
    threshold: float = 1.10,
    alpha: float = 0.05,
) -> dict:
    """Per-network regression verdicts of *candidate* against *baseline*.

    Both arguments are ``run_bench`` payloads.  Returns ``{networks:
    {name: verdict}, regressions: [names], threshold, alpha}`` where
    each verdict comes from :func:`repro.perf.stats.compare_samples`
    over the cold samples (see its docstring for the slower rule).
    Networks missing from either side are skipped (listed under
    ``skipped``).
    """
    verdicts: dict = {}
    regressions: list[str] = []
    skipped: list[str] = []
    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline or name not in candidate:
            skipped.append(name)
            continue
        verdict = compare_samples(
            _cold_samples(baseline[name]),
            _cold_samples(candidate[name]),
            threshold=threshold,
            alpha=alpha,
        )
        verdict["baseline_engine"] = baseline[name].get("engine_version")
        verdict["candidate_engine"] = candidate[name].get("engine_version")
        verdicts[name] = verdict
        if verdict["slower"]:
            regressions.append(name)
    return {
        "networks": verdicts,
        "regressions": regressions,
        "skipped": skipped,
        "threshold": threshold,
        "alpha": alpha,
    }


def read_bench(path: str | Path) -> dict:
    """Load a ``BENCH_sim.json``-schema payload."""
    return json.loads(Path(path).read_text())


def write_bench(payload: dict, path: str | Path) -> None:
    """Write the benchmark payload as pretty JSON."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
