"""Engine benchmark: cold vs warm-cache whole-network simulation times.

Backs the ``repro bench`` subcommand.  For each network it times

* **cold** — a plain :func:`~repro.gpu.simulator.simulate_network` call,
  no persistent cache (pure engine speed);
* **warm** — the same call against the kernel layer of a freshly
  opened :class:`~repro.runs.store.ResultStore` whose directory was
  populated by a prior run, so every unique kernel is a disk hit;
* **run-warm** — an :class:`~repro.runs.executor.Executor` read of the
  whole-network run entry (the harness/serve fast path: one file, no
  per-kernel replay);
* **seed** (optional) — the frozen reference engine in
  :mod:`repro.gpu.seed_engine`, for before/after speedup reporting.

Timings take the minimum over ``repeats`` runs (classic
best-of-N to suppress scheduler noise).  The emitted JSON maps each
network to ``{cold_s, warm_s, run_warm_s, kernels, unique_kernels,
engine_version}`` (plus ``seed_s`` when requested) — the schema of the
committed ``BENCH_sim.json``.  The cold path runs with canonical-
signature dedup on (the default), so ``unique_kernels`` is the number
of simulations the engine actually performed per network.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.simulator import simulate_network
from repro.gpu.sm import ENGINE_VERSION
from repro.runs import Executor, ResultStore, RunSpec


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def bench_network(
    name: str,
    config: GpuConfig,
    options: SimOptions,
    cache_dir: str | Path,
    repeats: int = 1,
    seed: bool = False,
) -> dict:
    """Time one network cold, warm-cache, and optionally on the seed engine."""
    result = simulate_network(name, config, options)
    entry: dict = {
        "cold_s": round(_best_of(lambda: simulate_network(name, config, options), repeats), 4),
        "kernels": len(result.kernels),
        "unique_kernels": result.unique_kernels,
        "engine_version": ENGINE_VERSION,
    }
    # Populate the unified store through the shared executor, then time
    # disk-hit reloads through fresh store objects (no in-memory layer
    # carry-over): per-kernel replays first, whole-run entries second.
    spec = RunSpec(name, config, options)
    Executor(ResultStore(cache_dir)).run(spec)
    entry["warm_s"] = round(
        _best_of(
            lambda: simulate_network(
                name, config, options, cache=ResultStore(cache_dir).kernels
            ),
            repeats,
        ),
        4,
    )
    entry["run_warm_s"] = round(
        _best_of(lambda: Executor(ResultStore(cache_dir)).run(spec), repeats), 4
    )
    if seed:
        from repro.gpu import seed_engine

        entry["seed_s"] = round(
            _best_of(lambda: seed_engine.simulate_network(name, config, options), repeats),
            4,
        )
    return entry


def run_bench(
    networks: list[str],
    config: GpuConfig,
    options: SimOptions,
    cache_dir: str | Path | None = None,
    repeats: int = 1,
    seed: bool = False,
    verbose: bool = True,
) -> dict:
    """Benchmark *networks*; returns the ``BENCH_sim.json`` payload."""
    out: dict = {}
    for name in networks:
        if cache_dir is None:
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
                entry = bench_network(name, config, options, tmp, repeats, seed)
        else:
            entry = bench_network(name, config, options, cache_dir, repeats, seed)
        out[name] = entry
        if verbose:
            line = (f"{name:12s} cold={entry['cold_s']:8.3f}s "
                    f"warm={entry['warm_s']:7.4f}s "
                    f"run-warm={entry['run_warm_s']:7.4f}s "
                    f"kernels={entry['kernels']} "
                    f"unique={entry['unique_kernels']}")
            if seed:
                ratio = entry["seed_s"] / entry["cold_s"] if entry["cold_s"] else 0.0
                line += f" seed={entry['seed_s']:8.3f}s ({ratio:.1f}x)"
            print(line, flush=True)
    return out


def write_bench(payload: dict, path: str | Path) -> None:
    """Write the benchmark payload as pretty JSON."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
