"""Back-compat facade over the unified result store.

The persistent kernel-result cache moved into
:mod:`repro.runs.store` when the run-orchestration layer unified it
with the harness's former network-result cache (one directory, one key
contract — DESIGN.md section 9).  This module re-exports the kernel
layer's public names so existing imports keep working.
"""

from __future__ import annotations

from repro.runs.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CachedKernel,
    KernelResultCache,
    cache_key,
    cache_stats,
    clear_cache,
    default_cache_dir,
)
from repro.gpu.sm import ENGINE_VERSION

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CachedKernel",
    "ENGINE_VERSION",
    "KernelResultCache",
    "cache_key",
    "cache_stats",
    "clear_cache",
    "default_cache_dir",
]
