"""Persistent cross-run kernel-result cache.

Kernel simulations are deterministic functions of (kernel signature,
machine config, simulation options, engine version), so their scaled
:class:`~repro.profiling.stats.KernelStats` can be memoized across
processes.  :class:`KernelResultCache` stores one JSON file per key
under a cache directory (default ``.repro-cache/``, overridable with
the ``REPRO_CACHE_DIR`` environment variable) plus an in-memory layer
for repeat lookups within one process.

The key contract (DESIGN.md section 8):

* **signature** — ``KernelLaunch.signature()``, the same identity the
  in-run dedup of ``simulate_network`` already relies on (program
  shape, launch geometry, register/shared usage, canonical addresses);
* **config** — every field of the frozen :class:`GpuConfig` dataclass;
* **options** — every field of the frozen :class:`SimOptions`
  dataclass;
* **engine** — :data:`repro.gpu.sm.ENGINE_VERSION`, bumped whenever
  issue-loop semantics change.

Any field change anywhere in that tuple yields a different SHA-256 key,
so stale entries are never returned — they are simply never looked up
again.  Corrupt, truncated or schema-mismatched cache files are treated
as misses (and rewritten on the next store), never as errors: the cache
must not be able to make a simulation fail.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.occupancy import Occupancy
from repro.gpu.sm import ENGINE_VERSION
from repro.profiling.stats import KernelStats

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache directory honouring ``REPRO_CACHE_DIR``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def cache_key(signature: str, config: GpuConfig, options: SimOptions) -> str:
    """SHA-256 over the full key tuple, as a hex digest."""
    payload = json.dumps(
        {
            "engine": ENGINE_VERSION,
            "signature": signature,
            "config": asdict(config),
            "options": asdict(options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CachedKernel:
    """One deserialized cache entry (everything a hit must restore)."""

    stats: KernelStats
    occupancy: Occupancy
    sample_factor: float
    block_factor: float


class KernelResultCache:
    """Content-addressed store of scaled per-kernel simulation results.

    ``cache_dir=None`` resolves through ``REPRO_CACHE_DIR`` to the
    default location.  The in-memory layer keeps raw payload dicts, not
    live objects: every :meth:`get` deserializes afresh so callers own
    their stats and cannot alias each other's counters.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(
        self, signature: str, config: GpuConfig, options: SimOptions
    ) -> CachedKernel | None:
        """Look up one kernel result; None on miss or unreadable entry."""
        key = cache_key(signature, config, options)
        payload = self._memory.get(key)
        if payload is None:
            try:
                payload = json.loads(self._path(key).read_text())
            except (OSError, ValueError):
                self.misses += 1
                return None
        entry = _decode(payload)
        if entry is None:
            # Corrupt/stale schema: forget it so a store can heal it.
            self._memory.pop(key, None)
            self.misses += 1
            return None
        self._memory[key] = payload
        self.hits += 1
        return entry

    def put(
        self,
        signature: str,
        config: GpuConfig,
        options: SimOptions,
        stats: KernelStats,
        occupancy: Occupancy,
        sample_factor: float,
        block_factor: float,
    ) -> None:
        """Store one kernel result (best-effort; IO errors are ignored)."""
        key = cache_key(signature, config, options)
        payload = {
            "engine": ENGINE_VERSION,
            "stats": stats.to_dict(),
            "occupancy": asdict(occupancy),
            "sample_factor": sample_factor,
            "block_factor": block_factor,
        }
        self._memory[key] = payload
        self.stores += 1
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except OSError:
            pass


def cache_stats(cache_dir: str | Path | None = None) -> dict:
    """Entry count / byte size summary of the on-disk cache.

    Backs ``repro cache stats``; a missing directory reads as an empty
    cache, never an error.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    entries = 0
    total_bytes = 0
    engines: dict[str, int] = {}
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            try:
                total_bytes += path.stat().st_size
                engine = json.loads(path.read_text()).get("engine", "?")
            except (OSError, ValueError):
                engine = "corrupt"
            entries += 1
            engines[engine] = engines.get(engine, 0) + 1
    return {
        "dir": str(directory),
        "entries": entries,
        "bytes": total_bytes,
        "engine_version": ENGINE_VERSION,
        "by_engine": dict(sorted(engines.items())),
    }


def clear_cache(cache_dir: str | Path | None = None) -> int:
    """Delete every cache entry (and stray ``.tmp`` files); returns the
    number of entries removed.  Backs ``repro cache clear``."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    removed = 0
    if directory.is_dir():
        for path in list(directory.glob("*.json")) + list(directory.glob("*.tmp")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def _decode(payload: dict) -> CachedKernel | None:
    """Payload dict -> CachedKernel, or None when malformed."""
    try:
        if payload["engine"] != ENGINE_VERSION:
            return None
        return CachedKernel(
            stats=KernelStats.from_dict(payload["stats"]),
            occupancy=Occupancy(**payload["occupancy"]),
            sample_factor=payload["sample_factor"],
            block_factor=payload["block_factor"],
        )
    except (KeyError, TypeError, ValueError, AttributeError):
        return None
