"""Deprecated back-compat facade over the unified result store.

The persistent kernel-result cache moved into
:mod:`repro.runs.store` when the run-orchestration layer unified it
with the harness's former network-result cache (one directory, one key
contract — DESIGN.md section 9).  This module re-exports the kernel
layer's public names so existing imports keep working, but it is on a
removal path (see CHANGES.md): importing it raises
``DeprecationWarning``, and no in-repo code imports it any more —
update imports to :mod:`repro.runs.store` (or :data:`ENGINE_VERSION`
to :mod:`repro.gpu.sm`).
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.perf.cache is deprecated and will be removed; import the "
    "cache layer from repro.runs.store (and ENGINE_VERSION from "
    "repro.gpu.sm) instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.runs.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CachedKernel,
    KernelResultCache,
    cache_key,
    cache_stats,
    clear_cache,
    default_cache_dir,
)
from repro.gpu.sm import ENGINE_VERSION

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CachedKernel",
    "ENGINE_VERSION",
    "KernelResultCache",
    "cache_key",
    "cache_stats",
    "clear_cache",
    "default_cache_dir",
]
