"""OpenCL C kernel emission.

The paper ships OpenCL versions of CifarNet and AlexNet (Section III),
which are the ones deployed to the PynQ FPGA through Vivado HLS.  The
OpenCL kernels use the same configurations as the CUDA kernels, so this
emitter mechanically translates the CUDA text: qualifiers, builtin index
functions and math intrinsics.
"""

from __future__ import annotations

import re

from repro.codegen.cuda import cuda_network_source

#: Networks with OpenCL implementations in the released suite.
OPENCL_NETWORKS = ("cifarnet", "alexnet")

_REWRITES = (
    (r'extern "C" __global__ void', "__kernel void"),
    (r"const float\* __restrict__", "__global const float*"),
    (r"float\* __restrict__", "__global float*"),
    (r"\bthreadIdx\.x\b", "get_local_id(0)"),
    (r"\bthreadIdx\.y\b", "get_local_id(1)"),
    (r"\bblockIdx\.x\b", "get_group_id(0)"),
    (r"\bblockIdx\.y\b", "get_group_id(1)"),
    (r"\bblockIdx\.z\b", "get_group_id(2)"),
    (r"\bblockDim\.x\b", "get_local_size(0)"),
    (r"\bblockDim\.y\b", "get_local_size(1)"),
    (r"\bgridDim\.x\b", "get_num_groups(0)"),
    (r"\bgridDim\.y\b", "get_num_groups(1)"),
    (r"\bfmaxf\b", "fmax"),
    (r"\bexpf\b", "exp"),
    (r"\btanhf\b", "tanh"),
    (r"\brsqrtf\b", "rsqrt"),
    (r"\bpowf\b", "pow"),
    (r'#include <cuda_runtime.h>', ""),
    (r"#include <math.h>", ""),
)


def opencl_network_source(name: str) -> str:
    """Full OpenCL C source file for the named network.

    Raises ``ValueError`` for networks the released suite does not
    provide in OpenCL.
    """
    if name not in OPENCL_NETWORKS:
        raise ValueError(
            f"the suite provides OpenCL only for {', '.join(OPENCL_NETWORKS)}; "
            f"got {name!r}"
        )
    source = cuda_network_source(name)
    for pattern, replacement in _REWRITES:
        source = re.sub(pattern, replacement, source)
    header = (
        "// OpenCL translation of the CUDA kernels; same launch\n"
        "// configurations (Table III).  Deployable through Vivado HLS.\n"
    )
    return header + source
