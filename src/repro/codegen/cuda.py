"""CUDA C kernel emission.

Generates one ``__global__`` kernel per planned launch, with the same
one-thread-per-neuron decomposition, loop structure and launch geometry
the kernel IR models.  The emitted file for a network contains every
kernel plus a host-side launch trace comment reproducing Table III.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import NetworkGraph
from repro.core.layers.defs import (
    FC,
    DepthwiseConv2D,
    LRN,
    BatchNorm,
    Concat,
    Conv2D,
    Eltwise,
    GRUCell,
    LSTMCell,
    Pool2D,
    ReLU,
    Scale,
    Softmax,
)
from repro.core.suite import get_network
from repro.kernels.mapping import KernelPlan, plan_network


def _ident(name: str) -> str:
    """A C identifier from a layer/kernel name."""
    out = "".join(ch if ch.isalnum() else "_" for ch in name)
    return out.strip("_") or "kernel"


def _conv_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer: Conv2D = node.layer  # type: ignore[assignment]
    c_in, h, w = graph.in_shapes(node)[0]
    c_out, oh, ow = graph.out_shape(node.name)
    k, s, p = layer.kernel, layer.stride, layer.pad
    name = _ident(plan.kernel_name)
    relu = "v = fmaxf(v, 0.0f);" if layer.relu else ""
    bias_decl = ", const float* __restrict__ bias" if layer.bias else ""
    bias_add = "v += bias[oc];" if layer.bias else ""
    return f"""
// {node.name}: conv {c_in}x{h}x{w} -> {c_out}x{oh}x{ow}, k={k} s={s} p={p}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(
    const float* __restrict__ in, const float* __restrict__ weight{bias_decl},
    float* __restrict__ out, int oc_offset, int x_offset, int y_offset)
{{
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    for (int slot = tid; slot < {oh * ow}; slot += blockDim.x * blockDim.y) {{
        int x = slot % {ow} + x_offset;
        int y = slot / {ow} + y_offset;
        if (x >= {ow} || y >= {oh}) continue;
        int oc = blockIdx.x + oc_offset;
        float v = 0.0f;
        for (int c = 0; c < {c_in}; ++c) {{
            for (int kh = 0; kh < {k}; ++kh) {{
                int iy = y * {s} + kh - {p};
                if (iy < 0 || iy >= {h}) continue;
                for (int kw = 0; kw < {k}; ++kw) {{
                    int ix = x * {s} + kw - {p};
                    if (ix < 0 || ix >= {w}) continue;
                    v += weight[((oc * {c_in} + c) * {k} + kh) * {k} + kw]
                       * in[(c * {h} + iy) * {w} + ix];
                }}
            }}
        }}
        {bias_add}
        {relu}
        out[(oc * {oh} + y) * {ow} + x] = v;
    }}
}}
"""


def _pool_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer: Pool2D = node.layer  # type: ignore[assignment]
    c, h, w = graph.in_shapes(node)[0]
    name = _ident(plan.kernel_name)
    if layer.global_pool:
        return f"""
// {node.name}: global average pool {c}x{h}x{w} -> {c}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(const float* __restrict__ in, float* __restrict__ out)
{{
    int ch = blockIdx.x * blockDim.x + threadIdx.x;
    if (ch >= {c}) return;
    float acc = 0.0f;
    for (int i = 0; i < {h * w}; ++i) acc += in[ch * {h * w} + i];
    out[ch] = acc / {float(h * w)}f;
}}
"""
    k, s, p = layer.kernel, layer.stride, layer.pad
    _, oh, ow = graph.out_shape(node.name)
    init = "-3.402823e38f" if layer.kind == "max" else "0.0f"
    update = "acc = fmaxf(acc, v);" if layer.kind == "max" else "acc += v; ++n;"
    finish = "" if layer.kind == "max" else "acc /= (float)n;"
    return f"""
// {node.name}: {layer.kind} pool {c}x{h}x{w} -> {c}x{oh}x{ow}, k={k} s={s} p={p}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(const float* __restrict__ in, float* __restrict__ out)
{{
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    for (int slot = tid; slot < {oh * ow}; slot += blockDim.x * blockDim.y) {{
        int x = slot % {ow};
        int y = slot / {ow};
        for (int ch = blockIdx.x; ch < {c}; ch += gridDim.x) {{
            float acc = {init};
            int n = 0;
            for (int kh = 0; kh < {k}; ++kh) {{
                int iy = y * {s} + kh - {p};
                if (iy < 0 || iy >= {h}) continue;
                for (int kw = 0; kw < {k}; ++kw) {{
                    int ix = x * {s} + kw - {p};
                    if (ix < 0 || ix >= {w}) continue;
                    float v = in[(ch * {h} + iy) * {w} + ix];
                    {update}
                }}
            }}
            (void)n;
            {finish}
            out[(ch * {oh} + y) * {ow} + x] = acc;
        }}
    }}
}}
"""


def _fc_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer: FC = node.layer  # type: ignore[assignment]
    in_features = int(np.prod(graph.in_shapes(node)[0]))
    name = _ident(plan.kernel_name)
    relu = "v = fmaxf(v, 0.0f);" if layer.relu else ""
    return f"""
// {node.name}: fully connected {in_features} -> {layer.out_features}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(
    const float* __restrict__ in, const float* __restrict__ weight,
    const float* __restrict__ bias, float* __restrict__ out)
{{
    int blocklin = (blockIdx.z * gridDim.y + blockIdx.y) * gridDim.x + blockIdx.x;
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    int neuron = blocklin * (blockDim.x * blockDim.y) + tid;
    if (neuron >= {layer.out_features}) return;
    float v = bias[neuron];
    for (int i = 0; i < {in_features}; ++i)
        v += weight[neuron * {in_features} + i] * in[i];
    {relu}
    out[neuron] = v;
}}
"""


def _lrn_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer: LRN = node.layer  # type: ignore[assignment]
    c, h, w = graph.in_shapes(node)[0]
    half = layer.local_size // 2
    name = _ident(plan.kernel_name)
    return f"""
// {node.name}: LRN across channels, n={layer.local_size} alpha={layer.alpha} beta={layer.beta}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(const float* __restrict__ in, float* __restrict__ out)
{{
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    for (int slot = tid; slot < {h * w}; slot += blockDim.x * blockDim.y) {{
        for (int ch = blockIdx.x; ch < {c}; ch += gridDim.x) {{
            float ssq = 0.0f;
            for (int j = ch - {half}; j <= ch + {half}; ++j) {{
                if (j < 0 || j >= {c}) continue;
                float v = in[j * {h * w} + slot];
                ssq += v * v;
            }}
            float denom = powf(1.0f + {layer.alpha}f / {layer.local_size} * ssq, {layer.beta}f);
            out[ch * {h * w} + slot] = in[ch * {h * w} + slot] / denom;
        }}
    }}
}}
"""


def _elementwise_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer = node.layer
    c, h, w = graph.in_shapes(node)[0]
    total = c * h * w
    name = _ident(plan.kernel_name)
    if isinstance(layer, ReLU):
        sig = "const float* __restrict__ in, float* __restrict__ out"
        body = "out[i] = fmaxf(in[i], 0.0f);"
    elif isinstance(layer, BatchNorm):
        sig = ("const float* __restrict__ in, const float* __restrict__ mean, "
               "const float* __restrict__ var, float* __restrict__ out")
        body = (f"int ch = i / {h * w}; "
                f"out[i] = (in[i] - mean[ch]) * rsqrtf(var[ch] + {layer.eps}f);")
    elif isinstance(layer, Scale):
        sig = ("const float* __restrict__ in, const float* __restrict__ gamma, "
               "const float* __restrict__ beta, float* __restrict__ out")
        body = f"int ch = i / {h * w}; out[i] = in[i] * gamma[ch] + beta[ch];"
    elif isinstance(layer, Eltwise):
        sig = ("const float* __restrict__ a, const float* __restrict__ b, "
               "float* __restrict__ out")
        body = "out[i] = a[i] + b[i];"
    else:  # Concat copy slice
        sig = "const float* __restrict__ in, float* __restrict__ out, int ch_offset"
        body = f"out[ch_offset * {h * w} + i] = in[i];"
    return f"""
// {node.name}: {type(layer).__name__} over {c}x{h}x{w}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}({sig})
{{
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    int stride = gridDim.x * blockDim.x * blockDim.y;
    for (int i = blockIdx.x * blockDim.x * blockDim.y + tid; i < {total}; i += stride)
    {{
        {body}
    }}
}}
"""


def _softmax_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    classes = graph.out_shape(node.name)[0]
    name = _ident(plan.kernel_name)
    return f"""
// {node.name}: softmax over {classes} classes
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(const float* __restrict__ in, float* __restrict__ out)
{{
    int blocklin = (blockIdx.z * gridDim.y + blockIdx.y) * gridDim.x + blockIdx.x;
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    int n = blocklin * (blockDim.x * blockDim.y) + tid;
    if (n >= {classes}) return;
    float m = -3.402823e38f;
    for (int j = 0; j < {classes}; ++j) m = fmaxf(m, in[j]);
    float total = 0.0f;
    for (int j = 0; j < {classes}; ++j) total += expf(in[j] - m);
    out[n] = expf(in[n] - m) / total;
}}
"""


def _rnn_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer = node.layer
    hidden = layer.hidden_size
    name = _ident(plan.kernel_name)
    if isinstance(layer, GRUCell):
        gates = "z, r and candidate h"
        body = f"""
    float az = b_z[n], ar = b_r[n], ah = b_h[n];
    for (int j = 0; j < {hidden}; ++j) {{
        az += u_z[n * {hidden} + j] * h_prev[j];
        ar += u_r[n * {hidden} + j] * h_prev[j];
    }}
    az += w_z[n] * x[0]; ar += w_r[n] * x[0];
    float z = 1.0f / (1.0f + expf(-az));
    float r = 1.0f / (1.0f + expf(-ar));
    for (int j = 0; j < {hidden}; ++j)
        ah += u_h[n * {hidden} + j] * (r * h_prev[j]);
    ah += w_h[n] * x[0];
    float hc = tanhf(ah);
    h_next[n] = (1.0f - z) * h_prev[n] + z * hc;"""
        params = ("const float* x, const float* h_prev, "
                  "const float* w_z, const float* u_z, const float* b_z, "
                  "const float* w_r, const float* u_r, const float* b_r, "
                  "const float* w_h, const float* u_h, const float* b_h, "
                  "float* h_next")
    else:
        gates = "input, forget, output and candidate g"
        body = f"""
    float ai = b_i[n], af = b_f[n], ao = b_o[n], ag = b_g[n];
    for (int j = 0; j < {hidden}; ++j) {{
        float hv = h_prev[j];
        ai += u_i[n * {hidden} + j] * hv;
        af += u_f[n * {hidden} + j] * hv;
        ao += u_o[n * {hidden} + j] * hv;
        ag += u_g[n * {hidden} + j] * hv;
    }}
    ai += w_i[n] * x[0]; af += w_f[n] * x[0];
    ao += w_o[n] * x[0]; ag += w_g[n] * x[0];
    float gi = 1.0f / (1.0f + expf(-ai));
    float gf = 1.0f / (1.0f + expf(-af));
    float go = 1.0f / (1.0f + expf(-ao));
    float gg = tanhf(ag);
    float cn = gf * c_prev[n] + gi * gg;
    c_next[n] = cn;
    h_next[n] = go * tanhf(cn);"""
        params = ("const float* x, const float* h_prev, const float* c_prev, "
                  "const float* w_i, const float* u_i, const float* b_i, "
                  "const float* w_f, const float* u_f, const float* b_f, "
                  "const float* w_o, const float* u_o, const float* b_o, "
                  "const float* w_g, const float* u_g, const float* b_g, "
                  "float* h_next, float* c_next")
    return f"""
// {node.name}: one {type(layer).__name__} timestep, gates: {gates}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}({params})
{{
    int n = threadIdx.y * blockDim.x + threadIdx.x;
    if (n >= {hidden}) return;
{body}
}}
"""


def _depthwise_kernel(plan: KernelPlan, graph: NetworkGraph) -> str:
    node = plan.node
    layer: DepthwiseConv2D = node.layer  # type: ignore[assignment]
    c, h, w = graph.in_shapes(node)[0]
    _, oh, ow = graph.out_shape(node.name)
    k, s, p = layer.kernel, layer.stride, layer.pad
    name = _ident(plan.kernel_name)
    relu = "v = fmaxf(v, 0.0f);" if layer.relu else ""
    bias_decl = ", const float* __restrict__ bias" if layer.bias else ""
    bias_add = "v += bias[ch];" if layer.bias else ""
    return f"""
// {node.name}: depthwise conv {c}x{h}x{w} -> {c}x{oh}x{ow}, k={k} s={s} p={p}
// launch: grid{plan.grid} block{plan.block}
extern "C" __global__ void {name}(
    const float* __restrict__ in, const float* __restrict__ weight{bias_decl},
    float* __restrict__ out)
{{
    int ch = blockIdx.x;
    int tid = threadIdx.y * blockDim.x + threadIdx.x;
    for (int slot = tid; slot < {oh * ow}; slot += blockDim.x * blockDim.y) {{
        int x = slot % {ow};
        int y = slot / {ow};
        float v = 0.0f;
        for (int kh = 0; kh < {k}; ++kh) {{
            int iy = y * {s} + kh - {p};
            if (iy < 0 || iy >= {h}) continue;
            for (int kw = 0; kw < {k}; ++kw) {{
                int ix = x * {s} + kw - {p};
                if (ix < 0 || ix >= {w}) continue;
                v += weight[(ch * {k} + kh) * {k} + kw]
                   * in[(ch * {h} + iy) * {w} + ix];
            }}
        }}
        {bias_add}
        {relu}
        out[(ch * {oh} + y) * {ow} + x] = v;
    }}
}}
"""


def cuda_kernel_source(plan: KernelPlan, graph: NetworkGraph) -> str:
    """CUDA C source of one planned kernel."""
    layer = plan.node.layer
    if isinstance(layer, DepthwiseConv2D):
        return _depthwise_kernel(plan, graph)
    if isinstance(layer, Conv2D):
        return _conv_kernel(plan, graph)
    if isinstance(layer, Pool2D):
        return _pool_kernel(plan, graph)
    if isinstance(layer, FC):
        return _fc_kernel(plan, graph)
    if isinstance(layer, LRN):
        return _lrn_kernel(plan, graph)
    if isinstance(layer, (BatchNorm, Scale, ReLU, Eltwise, Concat)):
        return _elementwise_kernel(plan, graph)
    if isinstance(layer, Softmax):
        return _softmax_kernel(plan, graph)
    if isinstance(layer, (GRUCell, LSTMCell)):
        return _rnn_kernel(plan, graph)
    raise TypeError(f"no CUDA emitter for {type(layer).__name__}")


def cuda_network_source(name: str) -> str:
    """Full CUDA C source file for the named network."""
    graph = get_network(name)
    plans = plan_network(graph)
    seen: set[str] = set()
    parts = [
        f"// {graph.display_name} inference kernels — generated by the Tango",
        "// reproduction suite.  One thread per neuron; no cuDNN, no framework.",
        "#include <cuda_runtime.h>",
        "#include <math.h>",
    ]
    for plan in plans:
        ident = _ident(plan.kernel_name)
        if ident in seen:
            continue
        seen.add(ident)
        parts.append(cuda_kernel_source(plan, graph))
    return "\n".join(parts)
