"""CUDA C and OpenCL source emission.

The released Tango artifact *is* CUDA C / OpenCL source; this package
regenerates equivalent source text from the layer graphs so the suite
remains usable on real hardware downstream.  CUDA is emitted for all
seven networks; OpenCL for CifarNet and AlexNet, matching the paper's
coverage (Section III).
"""

from repro.codegen.cuda import cuda_network_source
from repro.codegen.exporter import export_suite
from repro.codegen.opencl import OPENCL_NETWORKS, opencl_network_source

__all__ = [
    "OPENCL_NETWORKS",
    "cuda_network_source",
    "export_suite",
    "opencl_network_source",
]
