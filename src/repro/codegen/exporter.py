"""Suite source-tree exporter.

Writes the generated CUDA/OpenCL sources to disk in the layout of the
released Tango repository: one directory per network containing the
kernel source and a manifest of per-layer weight files.
"""

from __future__ import annotations

from pathlib import Path

from repro.codegen.cuda import cuda_network_source
from repro.codegen.opencl import OPENCL_NETWORKS, opencl_network_source
from repro.core.suite import NETWORK_ORDER, get_network
from repro.core.weights import per_layer_weight_bytes


def export_suite(root: str | Path, names: tuple[str, ...] = NETWORK_ORDER) -> list[Path]:
    """Write the generated suite under *root*; returns written paths.

    Layout::

        <root>/<network>/<network>.cu
        <root>/<network>/<network>.cl          (CifarNet, AlexNet)
        <root>/<network>/weights.manifest      (per-layer weight files)
    """
    root = Path(root)
    written: list[Path] = []
    for name in names:
        net_dir = root / name
        net_dir.mkdir(parents=True, exist_ok=True)
        cu_path = net_dir / f"{name}.cu"
        cu_path.write_text(cuda_network_source(name))
        written.append(cu_path)
        if name in OPENCL_NETWORKS:
            cl_path = net_dir / f"{name}.cl"
            cl_path.write_text(opencl_network_source(name))
            written.append(cl_path)
        graph = get_network(name)
        manifest_lines = [
            f"{node_name}.bin {size}"
            for node_name, size in per_layer_weight_bytes(graph).items()
        ]
        manifest = net_dir / "weights.manifest"
        manifest.write_text("\n".join(manifest_lines) + "\n")
        written.append(manifest)
    return written
