"""The :class:`KernelLaunch` record — one CUDA kernel invocation.

A compiled network is an ordered list of these; each carries exactly the
information Table III of the paper tabulates (gridDim, blockDim,
registers, shared memory, constant memory) plus the thread program the
simulator executes and the global-memory regions the kernel touches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.isa.program import Program

WARP_SIZE = 32
MAX_THREADS_PER_BLOCK = 1024

Dim3 = tuple[int, int, int]


@dataclass(frozen=True)
class MemRegion:
    """A named global-memory region a kernel reads or writes."""

    name: str
    base: int
    size_bytes: int


@dataclass
class KernelLaunch:
    """One kernel invocation of a compiled network.

    Attributes:
        name: Kernel name as Table III would list it (e.g. ``Conv 1-2``).
        node_name: Graph node this kernel (or kernel slice) implements.
        category: Layer-type category for the per-layer-type figures.
        grid: gridDim (x, y, z).
        block: blockDim (x, y, z).
        program: Thread program every thread executes.
        regs: Registers per thread (Table III ``regs``).
        smem_bytes: Static shared memory per block (Table III ``smem``).
        cmem_bytes: Constant-bank usage (Table III ``cmem``).
        active_threads: Threads that do real work (a block may carry
            masked-off threads when the tile overhangs the output).
        regions: Global-memory regions referenced, for reporting.
        shared_input: True when every block of the grid reads the same
            input tensor (channel-split convolutions, FC layers reading
            the whole input vector).  The simulator uses this to model
            cross-block L2 sharing: blocks it does not simulate would
            have warmed the shared lines.
    """

    name: str
    node_name: str
    category: str
    grid: Dim3
    block: Dim3
    program: Program
    regs: int
    smem_bytes: int
    cmem_bytes: int
    active_threads: int
    regions: tuple[MemRegion, ...] = ()
    shared_input: bool = False

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.grid) or any(d <= 0 for d in self.block):
            raise ValueError(f"{self.name}: grid/block dims must be positive")
        if self.threads_per_block > MAX_THREADS_PER_BLOCK:
            raise ValueError(
                f"{self.name}: {self.threads_per_block} threads/block exceeds "
                f"the {MAX_THREADS_PER_BLOCK} limit"
            )

    @property
    def threads_per_block(self) -> int:
        """Threads in one block."""
        return self.block[0] * self.block[1] * self.block[2]

    @property
    def warps_per_block(self) -> int:
        """Warps in one block (rounded up)."""
        return math.ceil(self.threads_per_block / WARP_SIZE)

    @property
    def total_blocks(self) -> int:
        """Blocks in the grid."""
        return self.grid[0] * self.grid[1] * self.grid[2]

    @property
    def total_threads(self) -> int:
        """Total threads launched."""
        return self.total_blocks * self.threads_per_block

    @property
    def total_warps(self) -> int:
        """Total warps launched."""
        return self.total_blocks * self.warps_per_block

    def dynamic_instructions(self) -> int:
        """Exact unsampled dynamic instruction count across all threads."""
        return self.program.dynamic_count() * self.total_threads

    def signature(self) -> str:
        """Stable identity for result caching across identical kernels.

        Delegates to :func:`repro.analysis.canonical.canonical_signature`:
        a SHA-256 over the launch geometry plus the full alpha-renamed
        program, so two launches share a signature exactly when the
        simulator is guaranteed to produce bit-identical
        :class:`~repro.profiling.stats.KernelStats` for them — e.g.
        ResNet's repeated bottleneck kernels simulate once, while
        AlexNet's channel-split halves (same geometry and instruction
        counts, different address slices) stay distinct.
        """
        # Imported lazily: repro.analysis depends on repro.kernels, so a
        # top-level import here would be circular.
        from repro.analysis.canonical import canonical_signature

        return canonical_signature(self)
