"""The kernel compiler: layer graph -> ordered kernel launches.

:func:`compile_network` walks the launch plan of
:mod:`repro.kernels.mapping` and lowers each planned slice through the
matching builder in :mod:`repro.kernels.builders`, producing the list of
:class:`~repro.kernels.launch.KernelLaunch` objects that the simulator
executes and the Table III harness tabulates.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.graph import NetworkGraph
from repro.core.layers.defs import (
    FC,
    DepthwiseConv2D,
    LRN,
    BatchNorm,
    Concat,
    Conv2D,
    Eltwise,
    GRUCell,
    LSTMCell,
    Pool2D,
    ReLU,
    Scale,
    Softmax,
)
from repro.core.suite import get_network
from repro.kernels import builders
from repro.kernels.launch import KernelLaunch
from repro.kernels.mapping import KernelPlan, plan_network
from repro.kernels.validate import validate_launch_symbols


def _lower(plan: KernelPlan, graph: NetworkGraph) -> builders.BuiltKernel:
    """Dispatch one planned kernel slice to its layer builder."""
    node = plan.node
    layer = node.layer
    in_shapes = graph.in_shapes(node)
    out_shape = graph.out_shape(node.name)
    if isinstance(layer, Conv2D):
        return builders.build_conv(layer, in_shapes[0], out_shape, plan.tmap)
    if isinstance(layer, DepthwiseConv2D):
        return builders.build_depthwise_conv(layer, in_shapes[0], out_shape, plan.tmap)
    if isinstance(layer, Pool2D):
        return builders.build_pool(layer, in_shapes[0], out_shape, plan.tmap)
    if isinstance(layer, FC):
        return builders.build_fc(layer, int(np.prod(in_shapes[0])), plan.tmap)
    if isinstance(layer, LRN):
        return builders.build_lrn(layer, in_shapes[0], plan.tmap)
    if isinstance(layer, BatchNorm):
        return builders.build_batchnorm(in_shapes[0], plan.tmap)
    if isinstance(layer, Scale):
        return builders.build_scale(in_shapes[0], plan.tmap)
    if isinstance(layer, ReLU):
        return builders.build_relu(in_shapes[0], plan.tmap)
    if isinstance(layer, Eltwise):
        return builders.build_eltwise(in_shapes[0], plan.tmap)
    if isinstance(layer, Concat):
        return builders.build_concat(in_shapes[0], plan.tmap)
    if isinstance(layer, Softmax):
        return builders.build_softmax(out_shape[0], plan.tmap)
    if isinstance(layer, (GRUCell, LSTMCell)):
        return builders.build_rnn_cell(layer)
    raise TypeError(f"no builder for layer type {type(layer).__name__}")


_BLOCK_SYMS = {"bx", "by", "bz", "lin_bid"}


def _input_shared_across_blocks(plan: KernelPlan) -> bool:
    """True when every block reads the same input tensor.

    Channel-split convolutions (the output-channel index comes from a
    block coordinate, so each block sweeps the whole input) and FC /
    softmax layers (every neuron reads the full input vector) qualify;
    element-wise and pooling layers partition their input per block.
    """
    layer = plan.node.layer
    if isinstance(layer, Conv2D):
        return any(t.sym in _BLOCK_SYMS for t in plan.tmap.c_terms)
    if isinstance(layer, (FC, Softmax)):
        return True
    return False


def compile_network(graph: NetworkGraph, verify: bool = False) -> list[KernelLaunch]:
    """Compile *graph* into its ordered kernel launch sequence.

    RNN cells are replicated once per sequence timestep, mirroring the
    repeated layer invocations of the released suite.

    Every built program is structurally validated up front (an address
    expression referencing a loop variable no enclosing loop binds
    raises :class:`~repro.kernels.validate.KernelValidationError` here,
    instead of a ``KeyError`` deep inside the simulator).  With
    ``verify=True`` the full :mod:`repro.analysis` pass suite also runs
    over the compiled launches and raises
    :class:`~repro.analysis.KernelVerificationError` on any
    error-severity diagnostic.
    """
    launches: list[KernelLaunch] = []
    for plan in plan_network(graph):
        built = _lower(plan, graph)
        validate_launch_symbols(plan.kernel_name, built.program)
        active = plan.tmap.active_threads_per_block
        threads = plan.block[0] * plan.block[1] * plan.block[2]
        if active <= 0 or active > threads:
            active = threads
        base = KernelLaunch(
            name=plan.kernel_name,
            node_name=plan.node.name,
            category=plan.node.layer.category,
            grid=plan.grid,
            block=plan.block,
            program=built.program,
            regs=built.program.reg_count,
            smem_bytes=built.smem_bytes,
            cmem_bytes=built.cmem_bytes,
            active_threads=active,
            regions=built.regions,
            shared_input=_input_shared_across_blocks(plan),
        )
        for launch_index in range(plan.launches):
            if plan.launches == 1:
                launches.append(base)
            else:
                launches.append(
                    KernelLaunch(
                        name=f"{plan.kernel_name} (t={launch_index})",
                        node_name=base.node_name,
                        category=base.category,
                        grid=base.grid,
                        block=base.block,
                        program=base.program,
                        regs=base.regs,
                        smem_bytes=base.smem_bytes,
                        cmem_bytes=base.cmem_bytes,
                        active_threads=base.active_threads,
                        regions=base.regions,
                        shared_input=base.shared_input,
                    )
                )
    if verify:
        # Imported lazily: repro.analysis depends on repro.kernels, so a
        # top-level import here would be circular.
        from repro.analysis import verify_launches

        verify_launches(launches, network=graph.name)
    return launches


@lru_cache(maxsize=None)
def compiled_network(name: str, verify: bool = False) -> tuple[KernelLaunch, ...]:
    """Compile (and cache) the named suite network."""
    return tuple(compile_network(get_network(name), verify=verify))
