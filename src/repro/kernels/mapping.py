"""Per-network launch mapping styles, reproducing the paper's Table III.

The paper assigns one thread per neuron and splits any layer whose
neuron count exceeds the per-kernel thread limit over multiple kernels;
the concrete grid/block geometry differs per network in the released
suite, and Table III records it.  This module encodes those styles:

* **CifarNet** -- every image kernel is a single (32, 32, 1) block
  (threads = spatial positions, channels looped per thread); FC kernels
  are single blocks of one thread per output neuron.
* **AlexNet** -- one block per output channel; spatial maps larger than
  32x32 are tiled into 32/23-pixel tiles, one kernel per distinct tile
  size (conv1 runs as four kernels of 96 blocks: 32x32, 32x23, 23x32,
  23x23); wide convolutions split output channels across two kernels
  (conv2/4/5); FC layers launch one single-thread block per neuron.
* **SqueezeNet** -- row kernels: grid = rows, block = one thread per
  column, channels looped per thread; pools launch with input dims.
* **ResNet** -- every kernel is (C_out, 1, 1) x (32, 32, 1); threads
  sweep spatial positions in 1024-element strides.
* **VGGNet** -- 3-D grids: (tiles_x, tiles_y, C_out) with a per-size
  tile lookup; FC layers use the (4,4,4)x(8,8,1) and (1,1,10)x(10,10,1)
  geometries of Table III.
* **GRU/LSTM** -- a single block per timestep: (10, 10, 1) for GRU and
  (100, 1, 1) for LSTM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.graph import NetworkGraph, Node
from repro.core.layers.defs import (
    FC,
    DepthwiseConv2D,
    LRN,
    BatchNorm,
    Concat,
    Conv2D,
    Eltwise,
    GRUCell,
    LSTMCell,
    Pool2D,
    ReLU,
    Scale,
    Softmax,
)
from repro.kernels.addressing import Term
from repro.kernels.geometry import OUTER_VAR, ThreadMap
from repro.kernels.launch import MAX_THREADS_PER_BLOCK, Dim3

#: AlexNet-style spatial tiling: 55 = 32 + 23.
_TILE = 32

#: VGGNet tile lookup: output size -> (grid side, block side).
_VGG_TILES = {224: (16, 14), 112: (8, 14), 56: (8, 7), 28: (7, 4), 14: (7, 2), 7: (7, 1)}


@dataclass(frozen=True)
class KernelPlan:
    """One planned kernel slice of a layer."""

    node: Node
    kernel_name: str
    grid: Dim3
    block: Dim3
    tmap: ThreadMap
    #: Timestep replication (RNN cells launch once per sequence element).
    launches: int = 1


def _image_out(graph: NetworkGraph, node: Node) -> tuple[int, int, int]:
    shape = graph.out_shape(node.name)
    if len(shape) != 3:
        raise ValueError(f"{node.name}: expected CHW output, got {shape}")
    return shape


def _is_image_layer(node: Node) -> bool:
    return isinstance(
        node.layer,
        (Conv2D, DepthwiseConv2D, LRN, BatchNorm, Scale, ReLU, Eltwise, Concat),
    ) or (isinstance(node.layer, Pool2D) and not node.layer.global_pool)


# ----------------------------------------------------------------------
# style: CifarNet
# ----------------------------------------------------------------------
def _plan_cifarnet(graph: NetworkGraph) -> list[KernelPlan]:
    plans: list[KernelPlan] = []
    for node in graph:
        layer = node.layer
        if isinstance(layer, Pool2D) and layer.global_pool:
            channels = graph.out_shape(node.name)[0]
            width = max(32, min(MAX_THREADS_PER_BLOCK, channels))
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),), active_threads_per_block=channels
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (width, 1, 1), tmap))
        elif _is_image_layer(node):
            oc, oh, ow = _image_out(graph, node)
            tmap = ThreadMap(
                c_terms=(Term(OUTER_VAR, 1),),
                y_terms=(Term("ty", 1, mod=oh),),
                x_terms=(Term("tx", 1, mod=ow),),
                outputs_per_thread=oc,
                active_threads_per_block=oh * ow,
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (32, 32, 1), tmap))
        elif isinstance(layer, FC):
            width = max(32, math.ceil(layer.out_features / 32) * 32)
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),),
                active_threads_per_block=layer.out_features,
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (width, 1, 1), tmap))
        elif isinstance(layer, Softmax):
            classes = graph.out_shape(node.name)[0]
            width = max(32, math.ceil(classes / 32) * 32)
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),), active_threads_per_block=classes
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (width, 1, 1), tmap))
        else:
            raise ValueError(f"cifarnet: unhandled layer {node.name}")
    return plans


# ----------------------------------------------------------------------
# style: AlexNet
# ----------------------------------------------------------------------
#: Output-channel splits of the wide convolutions, from Table III.
_ALEXNET_CONV_SPLITS = {"conv2": 2, "conv3": 1, "conv4": 2, "conv5": 2}


def _spatial_tiles(size: int) -> list[tuple[int, int]]:
    """Tile a spatial extent into (offset, width) pieces of <= 32 pixels."""
    tiles = []
    offset = 0
    while offset < size:
        width = min(_TILE, size - offset)
        tiles.append((offset, width))
        offset += width
    return tiles


def _plan_alexnet(graph: NetworkGraph) -> list[KernelPlan]:
    plans: list[KernelPlan] = []
    for node in graph:
        layer = node.layer
        if _is_image_layer(node):
            oc, oh, ow = _image_out(graph, node)
            tiles_x = _spatial_tiles(ow)
            tiles_y = _spatial_tiles(oh)
            multi_tile = len(tiles_x) > 1 or len(tiles_y) > 1
            splits = (
                _ALEXNET_CONV_SPLITS.get(node.name, 1)
                if isinstance(layer, Conv2D)
                else 1
            )
            channels_per_kernel = oc // splits
            slice_index = 0
            for split in range(splits):
                c_offset = split * channels_per_kernel
                for x_off, tw in tiles_x:
                    for y_off, th in tiles_y:
                        slice_index += 1
                        c_terms = (Term("bx", 1),)
                        if c_offset:
                            c_terms += (Term("one", c_offset),)
                        tmap = ThreadMap(
                            c_terms=c_terms,
                            y_terms=(Term("ty", 1), Term("one", y_off)),
                            x_terms=(Term("tx", 1), Term("one", x_off)),
                            active_threads_per_block=tw * th,
                        )
                        suffix = f"-{slice_index}" if (multi_tile or splits > 1) else ""
                        plans.append(
                            KernelPlan(
                                node,
                                f"{node.name}{suffix}",
                                (channels_per_kernel, 1, 1),
                                (tw, th, 1),
                                tmap,
                            )
                        )
        elif isinstance(layer, FC):
            tmap = ThreadMap(
                n_terms=(Term("lin_bid", 1),), active_threads_per_block=1
            )
            plans.append(
                KernelPlan(node, node.name, (layer.out_features, 1, 1), (1, 1, 1), tmap)
            )
        elif isinstance(layer, Softmax):
            classes = graph.out_shape(node.name)[0]
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),), active_threads_per_block=classes
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (classes, 1, 1), tmap))
        else:
            raise ValueError(f"alexnet: unhandled layer {node.name}")
    return plans


# ----------------------------------------------------------------------
# style: SqueezeNet (row kernels)
# ----------------------------------------------------------------------
def _plan_squeezenet(graph: NetworkGraph) -> list[KernelPlan]:
    plans: list[KernelPlan] = []
    for node in graph:
        layer = node.layer
        if isinstance(layer, Concat):
            # The released kernels write expand outputs directly into the
            # concatenated buffer; no copy kernel is launched (and Table
            # III lists none).
            continue
        if isinstance(layer, Pool2D) and layer.global_pool:
            channels = graph.out_shape(node.name)[0]
            width = min(MAX_THREADS_PER_BLOCK, channels)
            blocks = math.ceil(channels / width)
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1), Term("lin_bid", width)),
                active_threads_per_block=width,
            )
            plans.append(
                KernelPlan(node, node.name, (blocks, 1, 1), (width, 1, 1), tmap)
            )
        elif _is_image_layer(node):
            oc, oh, ow = _image_out(graph, node)
            if isinstance(layer, Pool2D):
                # Table III launches pools with the *input* spatial dims.
                _, gh, gw = graph.in_shapes(node)[0]
            else:
                gh, gw = oh, ow
            tmap = ThreadMap(
                c_terms=(Term(OUTER_VAR, 1),),
                y_terms=(Term("bx", 1, mod=oh),),
                x_terms=(Term("tx", 1, mod=ow),),
                outputs_per_thread=oc,
                active_threads_per_block=min(gw, ow) if isinstance(layer, Pool2D) else ow,
            )
            plans.append(KernelPlan(node, node.name, (gh, 1, 1), (gw, 1, 1), tmap))
        elif isinstance(layer, Softmax):
            classes = graph.out_shape(node.name)[0]
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),), active_threads_per_block=classes
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (classes, 1, 1), tmap))
        else:
            raise ValueError(f"squeezenet: unhandled layer {node.name}")
    return plans


# ----------------------------------------------------------------------
# style: ResNet
# ----------------------------------------------------------------------
def _plan_resnet(graph: NetworkGraph) -> list[KernelPlan]:
    plans: list[KernelPlan] = []
    for node in graph:
        layer = node.layer
        if isinstance(layer, Pool2D) and layer.global_pool:
            channels = graph.out_shape(node.name)[0]
            width = min(MAX_THREADS_PER_BLOCK, channels)
            blocks = math.ceil(channels / width)
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1), Term("lin_bid", width)),
                active_threads_per_block=width,
            )
            plans.append(
                KernelPlan(node, node.name, (blocks, 1, 1), (width, 1, 1), tmap)
            )
        elif _is_image_layer(node):
            oc, oh, ow = _image_out(graph, node)
            spatial = oh * ow
            per_thread = math.ceil(spatial / MAX_THREADS_PER_BLOCK)
            y_terms: tuple[Term, ...] = (Term("lin_tid", 1, div=ow),)
            if per_thread > 1:
                y_terms += (Term(OUTER_VAR, max(1, round(MAX_THREADS_PER_BLOCK / ow))),)
            tmap = ThreadMap(
                c_terms=(Term("bx", 1),),
                y_terms=y_terms,
                x_terms=(Term("lin_tid", 1, mod=ow),),
                outputs_per_thread=per_thread,
                active_threads_per_block=min(MAX_THREADS_PER_BLOCK, spatial),
            )
            plans.append(KernelPlan(node, node.name, (oc, 1, 1), (32, 32, 1), tmap))
        elif isinstance(layer, FC):
            tmap = ThreadMap(n_terms=(Term("lin_bid", 1),), active_threads_per_block=1)
            plans.append(
                KernelPlan(node, node.name, (layer.out_features, 1, 1), (1, 1, 1), tmap)
            )
        elif isinstance(layer, Softmax):
            classes = graph.out_shape(node.name)[0]
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),), active_threads_per_block=classes
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (classes, 1, 1), tmap))
        else:
            raise ValueError(f"resnet: unhandled layer {node.name}")
    return plans


# ----------------------------------------------------------------------
# style: VGGNet
# ----------------------------------------------------------------------
def _plan_vggnet(graph: NetworkGraph) -> list[KernelPlan]:
    plans: list[KernelPlan] = []
    for node in graph:
        layer = node.layer
        if _is_image_layer(node):
            oc, oh, ow = _image_out(graph, node)
            if oh not in _VGG_TILES:
                raise ValueError(f"vggnet: no tile entry for spatial size {oh}")
            g, b = _VGG_TILES[oh]
            tmap = ThreadMap(
                c_terms=(Term("bz", 1),),
                y_terms=(Term("by", b), Term("ty", 1)),
                x_terms=(Term("bx", b), Term("tx", 1)),
                active_threads_per_block=b * b,
            )
            plans.append(KernelPlan(node, node.name, (g, g, oc), (b, b, 1), tmap))
        elif isinstance(layer, FC):
            if layer.out_features == 4096:
                grid, block = (4, 4, 4), (8, 8, 1)
            else:
                grid, block = (1, 1, 10), (10, 10, 1)
            threads = block[0] * block[1]
            tmap = ThreadMap(
                n_terms=(Term("lin_bid", threads), Term("lin_tid", 1)),
                active_threads_per_block=threads,
            )
            plans.append(KernelPlan(node, node.name, grid, block, tmap))
        elif isinstance(layer, Softmax):
            tmap = ThreadMap(
                n_terms=(Term("lin_bid", 100), Term("lin_tid", 1)),
                active_threads_per_block=100,
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 10), (10, 10, 1), tmap))
        else:
            raise ValueError(f"vggnet: unhandled layer {node.name}")
    return plans


# ----------------------------------------------------------------------
# style: RNNs
# ----------------------------------------------------------------------
def _plan_rnn(graph: NetworkGraph) -> list[KernelPlan]:
    plans: list[KernelPlan] = []
    seq_len = graph.input_shape[0]
    for node in graph:
        layer = node.layer
        if isinstance(layer, GRUCell):
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),),
                active_threads_per_block=layer.hidden_size,
            )
            plans.append(
                KernelPlan(node, "GRU Layer", (1, 1, 1), (10, 10, 1), tmap, launches=seq_len)
            )
        elif isinstance(layer, LSTMCell):
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),),
                active_threads_per_block=layer.hidden_size,
            )
            plans.append(
                KernelPlan(
                    node, "LSTM Layer", (1, 1, 1), (100, 1, 1), tmap, launches=seq_len
                )
            )
        elif isinstance(layer, FC):
            width = max(32, math.ceil(layer.out_features / 32) * 32)
            tmap = ThreadMap(
                n_terms=(Term("lin_tid", 1),),
                active_threads_per_block=layer.out_features,
            )
            plans.append(KernelPlan(node, node.name, (1, 1, 1), (width, 1, 1), tmap))
        else:
            raise ValueError(f"rnn: unhandled layer {node.name}")
    return plans


_PLANNERS = {
    "cifarnet": _plan_cifarnet,
    "alexnet": _plan_alexnet,
    "squeezenet": _plan_squeezenet,
    "resnet": _plan_resnet,
    "vggnet": _plan_vggnet,
    "gru": _plan_rnn,
    "lstm": _plan_rnn,
    # MobileNet (extension) uses the ResNet block-per-channel style.
    "mobilenet": _plan_resnet,
}


def plan_network(graph: NetworkGraph) -> list[KernelPlan]:
    """Plan the kernel launches of *graph* in invocation order."""
    try:
        planner = _PLANNERS[graph.name]
    except KeyError:
        raise KeyError(f"no launch mapping style for network {graph.name!r}") from None
    return planner(graph)
