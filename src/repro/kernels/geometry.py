"""Thread-to-output geometry: how a kernel's threads cover neurons.

A :class:`ThreadMap` tells the program builders how one thread's output
coordinates are derived from its thread/block identifiers and the
per-thread outer loop, as symbolic :class:`~repro.kernels.addressing.Term`
lists.  The mapping styles themselves (CifarNet single-block kernels,
AlexNet block-per-channel, ...) live in :mod:`repro.kernels.mapping`;
this module only defines the shared vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.addressing import Term

#: Name of the per-thread outer loop variable (multiple outputs/thread).
OUTER_VAR = "outer"
#: Name of the inner reduction loop variable.
REDUCE_VAR = "rc"


def scale_terms(terms: tuple[Term, ...], k: int) -> tuple[Term, ...]:
    """Multiply every term's coefficient by *k* (dropping zeroed terms)."""
    if k == 0:
        return ()
    return tuple(Term(t.sym, t.coef * k, t.div, t.mod) for t in terms)


@dataclass(frozen=True)
class ThreadMap:
    """Symbolic map from (thread, block, outer-loop) ids to output coords.

    For image layers the output coordinate is ``(c, y, x)``; for vector
    layers (FC, RNN, softmax) it is a flat neuron index ``n``.  Each
    coordinate is the sum of its terms evaluated on the warp context.

    Attributes:
        c_terms / y_terms / x_terms: Channel / row / column of the output
            element this thread computes (image layers).
        n_terms: Flat output index (vector layers).
        outputs_per_thread: Trip count of the per-thread outer loop; 1
            means each thread produces a single output.
        active_threads_per_block: Threads per block doing real work
            (blocks may overhang the output extent).
    """

    c_terms: tuple[Term, ...] = ()
    y_terms: tuple[Term, ...] = ()
    x_terms: tuple[Term, ...] = ()
    n_terms: tuple[Term, ...] = ()
    outputs_per_thread: int = 1
    active_threads_per_block: int = 0

    def out_index_terms(self, out_shape: tuple[int, ...]) -> tuple[Term, ...]:
        """Terms of the flattened output element index.

        For CHW outputs the flat index is ``(c*H + y)*W + x``; for vector
        outputs it is ``n`` directly.
        """
        if self.n_terms:
            return self.n_terms
        if len(out_shape) != 3:
            raise ValueError(f"image mapping needs a CHW output, got {out_shape}")
        _, oh, ow = out_shape
        return (
            scale_terms(self.c_terms, oh * ow)
            + scale_terms(self.y_terms, ow)
            + self.x_terms
        )
