"""Canonical per-kernel global-memory layout.

Each kernel launch gets its own canonical address space: inputs,
weights and outputs are placed in fixed, widely-separated slots (256 MB
apart, 256-byte aligned).  Canonical placement makes two kernels with
identical shapes byte-identical to the simulator, which lets the
network simulator cache results across ResNet's many repeated
bottleneck kernels (see :meth:`repro.kernels.launch.KernelLaunch.signature`).

Cross-kernel cache reuse is not modelled (each kernel simulates against
a warm-ish hierarchy of its own traffic only); DESIGN.md section 6
records this approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.launch import MemRegion

#: Slot spacing: regions can never collide (max tensor ~550 MB < 1 GB gap).
_SLOT_STRIDE = 1 << 30
#: Region alignment in bytes.
_ALIGN = 256
#: Red-zone gap between consecutive regions of one slot.  Vectorized
#: unroll tails and stride-sweep outer loops legitimately over-read a
#: few KB past their tensor (real kernels do the same past a
#: cudaMalloc'd buffer); the guard keeps those bytes in empty canonical
#: space instead of aliasing the next tensor, so the static verifier
#: (:mod:`repro.analysis`) can report them as overhang notes rather
#: than cross-region errors.
_GUARD_BYTES = 1 << 20


@dataclass
class MemLayout:
    """Allocates canonical global-memory regions for one kernel."""

    _regions: list[MemRegion] = field(default_factory=list)
    _cursors: dict[str, int] = field(default_factory=dict)

    _SLOTS = {"input": 1, "weight": 2, "output": 3, "scratch": 4}

    def alloc(self, slot: str, name: str, size_bytes: int) -> int:
        """Allocate *size_bytes* in *slot*; returns the base address."""
        if slot not in self._SLOTS:
            raise ValueError(f"unknown memory slot {slot!r}")
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        base_of_slot = self._SLOTS[slot] * _SLOT_STRIDE
        cursor = self._cursors.get(slot, base_of_slot)
        aligned = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        self._cursors[slot] = aligned + size_bytes + _GUARD_BYTES
        region = MemRegion(name, aligned, size_bytes)
        self._regions.append(region)
        return aligned

    @property
    def regions(self) -> tuple[MemRegion, ...]:
        """All regions allocated so far, in allocation order."""
        return tuple(self._regions)

    def total_bytes(self) -> int:
        """Sum of all allocated region sizes."""
        return sum(r.size_bytes for r in self._regions)
