"""Kernel IR and compiler: from layer graphs to CUDA-like kernel launches.

The paper implements every layer as one or two CUDA/OpenCL kernels with
one thread per neuron, splitting layers that exceed the per-kernel
thread limit across multiple kernels (Table III).  This package performs
the same lowering symbolically:

* :mod:`repro.kernels.addressing` -- symbolic per-lane address
  expressions (affine in thread/block ids and loop variables, with
  div/mod decomposition of collapsed reduction indices).
* :mod:`repro.kernels.launch` -- the :class:`KernelLaunch` record: grid
  and block dimensions, register/shared/constant usage, the thread
  program and the tensors it touches.
* :mod:`repro.kernels.memory_layout` -- global-memory address assignment
  for activations and per-layer weight files.
* :mod:`repro.kernels.builders` -- thread-program emitters per layer
  type (conv, pool, FC, LRN, batchnorm, scale, relu, eltwise, softmax,
  concat, GRU/LSTM cells).
* :mod:`repro.kernels.mapping` -- per-network grid/block mapping styles
  reproducing Table III (CifarNet single-block kernels, AlexNet
  block-per-channel with 32x32/23-pixel tiling, SqueezeNet row kernels,
  ResNet (C,1,1)x(32,32,1), VGGNet 3-D grids, RNN single-block cells).
* :mod:`repro.kernels.compile` -- :func:`compile_network`, the driver.
"""

from repro.kernels.compile import compile_network
from repro.kernels.launch import KernelLaunch

__all__ = ["KernelLaunch", "compile_network"]
