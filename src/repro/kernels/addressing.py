"""Symbolic per-lane address expressions.

Every ``ld``/``st`` in a thread program carries an :class:`AddrExpr`
that the simulator evaluates, per warp, to a vector of 32 byte
addresses.  Expressions are affine combinations of

* *thread symbols* — ``tx``/``ty``/``tz`` (coordinates inside the block)
  and ``lin_tid`` (linearized thread id), which differ per lane and
  evaluate to length-32 vectors;
* *block symbols* — ``bx``/``by``/``bz``/``lin_bid``, scalar per warp;
* *loop variables* — scalars taken from the expanded instruction's loop
  environment.

Each term supports an optional ``// div % mod`` decomposition so a
single collapsed reduction loop variable (e.g. ``rc`` running over
``C*KH*KW``) can address multi-dimensional tensors exactly:
``c = rc // (KH*KW)``, ``kh = (rc // KW) % KH``, ``kw = rc % KW``.

The realism of the whole cache characterization (Figures 2, 13, 14)
rests here: convolution expressions make neighbouring threads touch
overlapping input windows and make all threads share filter taps, while
fully-connected expressions make each thread stream its own weight row —
reproducing the paper's high conv locality vs. ~10% FC L2 miss ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Thread-varying symbols (evaluate to a 32-vector per warp).
THREAD_SYMBOLS = ("tx", "ty", "tz", "lin_tid")
#: Block-level symbols (scalar per warp).  ``one`` always evaluates to 1,
#: letting mappings express constant offsets (tile origins, channel
#: splits) as ordinary terms.
BLOCK_SYMBOLS = ("bx", "by", "bz", "lin_bid", "one")


@dataclass(frozen=True, slots=True)
class Term:
    """One affine term: ``coef * (((sym * pre) // div) % mod)``.

    ``pre`` pre-scales the symbol before the div/mod decomposition; loop
    unrolling uses it (an unrolled-by-2 counter advances two elements
    per iteration).
    """

    sym: str
    coef: int
    div: int = 1
    mod: int | None = None
    pre: int = 1

    def apply(self, value):
        """Evaluate the term given the raw symbol value (scalar/vector)."""
        v = value
        if self.pre != 1:
            v = v * self.pre
        if self.div != 1:
            v = v // self.div
        if self.mod is not None:
            v = v % self.mod
        return v * self.coef

    def describe(self) -> str:
        """PTX-comment-like rendering, e.g. ``4*(rc*2//9%3)``."""
        inner = self.sym
        if self.pre != 1:
            inner += f"*{self.pre}"
        if self.div != 1:
            inner += f"//{self.div}"
        if self.mod is not None:
            inner += f"%{self.mod}"
        if self.pre != 1 or self.div != 1 or self.mod is not None:
            inner = f"({inner})"
        return inner if self.coef == 1 else f"{self.coef}*{inner}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class AddrExpr:
    """A full address expression: ``base + sum(terms)``."""

    base: int
    terms: tuple[Term, ...] = ()

    def __post_init__(self):
        # Pre-split terms by symbol class so evaluation does one pass of
        # scalars and one of vectors; stored via object.__setattr__
        # because the dataclass is frozen.
        thread_terms = tuple(t for t in self.terms if t.sym in THREAD_SYMBOLS)
        other_terms = tuple(t for t in self.terms if t.sym not in THREAD_SYMBOLS)
        object.__setattr__(self, "_thread_terms", thread_terms)
        object.__setattr__(self, "_other_terms", other_terms)

    def evaluate(self, warp, loop_env: dict[str, int]) -> np.ndarray:
        """Per-lane byte addresses for *warp* under *loop_env*.

        Args:
            warp: An object exposing ``lane_syms`` (dict of thread-symbol
                name -> int64 vector) and ``block_syms`` (dict of block
                symbol -> int).
            loop_env: Loop-variable values of the expanded instruction.

        Returns:
            int64 array of shape (warp_size,).
        """
        scalar = self.base
        for term in self._other_terms:
            if term.sym in loop_env:
                scalar += int(term.apply(loop_env[term.sym]))
            else:
                scalar += int(term.apply(warp.block_syms[term.sym]))
        if not self._thread_terms:
            return np.full(warp.width, scalar, dtype=np.int64)
        total = None
        for term in self._thread_terms:
            part = term.apply(warp.lane_syms[term.sym])
            total = part if total is None else total + part
        return total + scalar

    def shifted(self, offset: int) -> "AddrExpr":
        """A copy of this expression with *offset* added to the base."""
        return AddrExpr(self.base + offset, self.terms)

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``0x40000000 + 4*lin_tid + 16*rc``.

        Lint diagnostics embed this so a flagged access reads like the
        PTX it models; the base is rendered in hex because canonical
        region bases are large power-of-two slot addresses.
        """
        parts = [hex(self.base) if abs(self.base) >= 4096 else str(self.base)]
        parts.extend(t.describe() for t in self.terms)
        return " + ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def affine(base: int, **coefs: int) -> AddrExpr:
    """Convenience constructor: ``affine(b, tx=4, ty=128)``."""
    terms = tuple(Term(sym, coef) for sym, coef in coefs.items() if coef != 0)
    return AddrExpr(base, terms)
