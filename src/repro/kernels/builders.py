"""Per-layer thread-program builders.

Each ``build_*`` function lowers one layer (or one kernel slice of a
layer) to a :class:`~repro.isa.program.Program` plus its memory regions
and shared/constant usage, following the decomposition the paper
describes: one thread per neuron, an inner reduction loop over the
receptive field / input features, explicit index arithmetic, and plain
loads/stores against the per-layer weight files.

The emitted instruction sequences are the source of every instruction-
level statistic in the reproduction (Figures 8-10) and of the memory
address streams behind the cache figures (2, 13, 14):

* convolution threads share filter taps (broadcast loads) and overlap
  input windows -> high locality, <1% L2 miss ratio;
* fully-connected threads stream private weight rows -> no reuse, ~10%
  L2 miss ratio and MSHR pressure (``memory_throttle`` stalls);
* pooling's ``acc = max(acc, v)`` chain serializes on short-latency ops
  -> ``exec_dependency`` stalls;
* RNN cells keep the hidden state in shared memory and stream the
  recurrent matrices once -> insensitive to L1 size (Observation 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layers.defs import (
    FC,
    DepthwiseConv2D,
    LRN,
    BatchNorm,
    Concat,
    Conv2D,
    Eltwise,
    GRUCell,
    LSTMCell,
    Pool2D,
    ReLU,
    Scale,
    Softmax,
)
from repro.isa.dtypes import DType
from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.kernels.addressing import AddrExpr, Term
from repro.kernels.geometry import OUTER_VAR, REDUCE_VAR, ThreadMap, scale_terms
from repro.kernels.launch import MemRegion
from repro.kernels.memory_layout import MemLayout
from repro.kernels.program_builder import ProgramBuilder

F32 = DType.F32
U32 = DType.U32
U16 = DType.U16
S32 = DType.S32


@dataclass
class BuiltKernel:
    """Result of lowering one kernel: program + SRAM usage + regions."""

    program: Program
    smem_bytes: int
    cmem_bytes: int
    regions: tuple[MemRegion, ...]


def _cmem_bytes(n_pointers: int, n_scalars: int) -> int:
    """Constant-bank usage: parameter pointers plus dimension scalars."""
    return 8 * n_pointers + 4 * n_scalars


def _elem_expr(base: int, terms: tuple[Term, ...], elem_bytes: int = 4) -> AddrExpr:
    """Byte address expression from element-index terms."""
    return AddrExpr(base, scale_terms(terms, elem_bytes))


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------
def build_conv(
    layer: Conv2D,
    in_shape: tuple[int, int, int],
    out_shape: tuple[int, int, int],
    tmap: ThreadMap,
    channel_offset: int = 0,
) -> BuiltKernel:
    """Convolution kernel: inner reduction over ``C_in * kh * kw``.

    ``channel_offset`` supports Table III-style output-channel splits
    (AlexNet conv2 runs as two kernels of 128 channels each).
    """
    c_in, h, w = in_shape
    _, oh, ow = out_shape
    k, s, p = layer.kernel, layer.stride, layer.pad
    elems = c_in * k * k
    # nvcc unrolls the reduction loop; unroll-by-2 with paired loads is
    # what shapes the op mix (fewer bra/set per useful mad, Figure 9).
    # 1x1 convolutions reduce over a perfectly contiguous channel run,
    # so they vectorize further (float4 loads, unroll-by-4) — SqueezeNet
    # squeeze/conv10 and ResNet bottleneck 1x1s all compile this way.
    if k == 1 and c_in >= 64:
        unroll = 4
    elif elems >= 8:
        unroll = 2
    else:
        unroll = 1
    trips = (elems + unroll - 1) // unroll

    layout = MemLayout()
    in_base = layout.alloc("input", "in", 4 * c_in * h * w)
    w_base = layout.alloc("weight", "weight", 4 * layer.out_channels * elems)
    b_base = layout.alloc("weight", "bias", 4 * layer.out_channels) if layer.bias else 0
    out_base = layout.alloc("output", "out", 4 * int(np.prod(out_shape)))

    c_terms = tmap.c_terms
    # Input element: ((cin)*H + y*s + kh - p)*W + x*s + kw - p
    in_terms = (
        (Term(REDUCE_VAR, h * w, div=k * k, pre=unroll),)          # cin
        + scale_terms(tmap.y_terms, s * w)
        + (Term(REDUCE_VAR, w, div=k, mod=k, pre=unroll),)          # kh
        + scale_terms(tmap.x_terms, s)
        + (Term(REDUCE_VAR, 1, mod=k, pre=unroll),)                 # kw
    )
    # Padding makes border windows start before the tensor; the 1 GB slot
    # gaps in MemLayout keep those overhang addresses in empty space.
    in_expr = AddrExpr(in_base - 4 * (p * w + p), scale_terms(in_terms, 4))
    # Weight element: (oc + channel_offset)*elems + rc
    w_terms = scale_terms(c_terms, elems) + (Term(REDUCE_VAR, unroll),)
    w_expr = _elem_expr(w_base + 4 * channel_offset * elems, w_terms)
    out_terms = tmap.out_index_terms(out_shape)
    out_expr = _elem_expr(out_base, out_terms)

    pb = ProgramBuilder()
    ids = pb.thread_prologue()
    pb.guard(ids["lin"])
    xy = pb.alu(Op.MUL, U32, ids["tx"], ids["dim0"])
    xy = pb.alu(Op.ADD, U32, xy, ids["byte"])

    def body(outer_dep):
        acc = pb.alu(Op.MOV, F32)
        with pb.loop(REDUCE_VAR, trips) as rc:
            t0 = pb.alu(Op.MUL, U32, rc, ids["dim1"])
            t1 = pb.alu(Op.ADD, U32, t0, xy)
            wofs = pb.alu(Op.SHL, U32, rc)
            stage = pb.alu(Op.MAD24, U32, rc, ids["dim0"], xy)
            stage = pb.alu(Op.MOV, U32, stage, dst=stage)
            wv = pb.ld(
                F32, w_expr, deps=(wofs, outer_dep) if outer_dep else (wofs,),
                width=4 * unroll,
            )
            xv = pb.ld(F32, in_expr, deps=(t1,), width=4 * unroll)
            acc = pb.alu(Op.MAD, F32, wv, xv, acc, dst=acc)
            for _ in range(unroll - 1):
                acc = pb.alu(Op.MAD, F32, wv, xv, acc, dst=acc)
        if layer.bias:
            bias_expr = _elem_expr(b_base + 4 * channel_offset, c_terms)
            bv = pb.ld(F32, bias_expr)
            acc = pb.alu(Op.ADD, F32, acc, bv, dst=acc)
        if layer.relu:
            acc = pb.alu(Op.MAX, F32, acc, dst=acc)
        so = pb.alu(Op.SHL, U32, ids["lin"])
        pb.st(F32, acc, out_expr, deps=(so,))

    if tmap.outputs_per_thread > 1:
        with pb.loop(OUTER_VAR, tmap.outputs_per_thread) as oc:
            body(oc)
    else:
        body(None)

    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=56 if k > 1 else 40,
        cmem_bytes=_cmem_bytes(4, (k * k + 2) if k <= 7 else 51),
        regions=layout.regions,
    )


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------
def build_pool(
    layer: Pool2D,
    in_shape: tuple[int, ...],
    out_shape: tuple[int, ...],
    tmap: ThreadMap,
) -> BuiltKernel:
    """Pooling kernel: window scan with a serial max/avg chain."""
    c, h, w = in_shape
    layout = MemLayout()
    in_base = layout.alloc("input", "in", 4 * c * h * w)
    out_base = layout.alloc("output", "out", 4 * int(np.prod(out_shape)))

    if layer.global_pool:
        # One thread per channel reduces its whole feature map.
        trips = h * w
        in_terms = scale_terms(tmap.n_terms, h * w) + (Term(REDUCE_VAR, 1),)
        out_terms = tmap.n_terms
        k = 0
        s = p = 0
    else:
        k, s, p = layer.kernel, layer.stride, layer.pad
        trips = k * k
        in_terms = (
            scale_terms(tmap.c_terms, h * w)
            + scale_terms(tmap.y_terms, s * w)
            + (Term(REDUCE_VAR, w, div=k),)
            + scale_terms(tmap.x_terms, s)
            + (Term(REDUCE_VAR, 1, mod=k),)
        )
        out_terms = tmap.out_index_terms(out_shape)
    in_expr = AddrExpr(in_base - 4 * (p * w + p), scale_terms(in_terms, 4))
    out_expr = _elem_expr(out_base, out_terms)

    reduce_op = Op.MAX if layer.kind == "max" else Op.ADD

    pb = ProgramBuilder()
    ids = pb.thread_prologue()
    pb.guard(ids["lin"])

    def body(outer_dep):
        acc = pb.alu(Op.MOV, F32)
        with pb.loop(REDUCE_VAR, trips) as rc:
            idx = pb.alu(Op.MAD24, U32, rc, ids["dim0"], ids["byte"])
            idx = pb.alu(Op.ADD, U32, idx, ids["tx"])
            v = pb.ld(F32, in_expr, deps=(idx,))
            # Serial reduction chain: each max/add depends on the
            # freshly-loaded value AND the previous result -> the
            # exec/memory-dependency stalls pooling shows in Figure 7.
            acc = pb.alu(reduce_op, F32, acc, v, dst=acc)
        if layer.kind == "avg" or layer.global_pool:
            inv = pb.alu(Op.MOV, F32)
            acc = pb.alu(Op.MUL, F32, acc, inv, dst=acc)
        pb.st(F32, acc, out_expr)

    if tmap.outputs_per_thread > 1:
        with pb.loop(OUTER_VAR, tmap.outputs_per_thread) as oc:
            body(oc)
    else:
        body(None)

    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=60,
        cmem_bytes=_cmem_bytes(2, 5),
        regions=layout.regions,
    )


# ----------------------------------------------------------------------
# fully connected
# ----------------------------------------------------------------------
def build_fc(
    layer: FC,
    in_features: int,
    tmap: ThreadMap,
) -> BuiltKernel:
    """Fully-connected kernel: each thread streams one weight row.

    Per-thread weight rows are ``in_features`` apart, so a warp's lanes
    touch 32 distinct cache lines per iteration: no coalescing, no
    reuse.  This is what drives FC's high L2 miss ratio (Figure 14) and
    its memory_throttle stalls (Figure 7).
    """
    layout = MemLayout()
    in_base = layout.alloc("input", "in", 4 * in_features)
    w_base = layout.alloc("weight", "weight", 4 * layer.out_features * in_features)
    b_base = layout.alloc("weight", "bias", 4 * layer.out_features)
    out_base = layout.alloc("output", "out", 4 * layer.out_features)

    # nvcc unrolls the dot-product loop aggressively; unroll-by-4 with
    # 16-byte vector loads matches what it emits for contiguous rows.
    unroll = 4 if in_features >= 16 else 1
    trips = (in_features + unroll - 1) // unroll
    w_terms = scale_terms(tmap.n_terms, in_features) + (Term(REDUCE_VAR, unroll),)
    x_terms = (Term(REDUCE_VAR, unroll),)

    pb = ProgramBuilder()
    ids = pb.thread_prologue(two_d=len(tmap.n_terms) > 1)
    pb.guard(ids["lin"])
    wptr = pb.alu(Op.MAD24, U32, ids["lin"], ids["dim0"])
    xptr = pb.alu(Op.MOV, U32, ids["byte"]) if "byte" in ids else pb.alu(Op.MOV, U32)
    acc = pb.alu(Op.MOV, F32)
    with pb.loop(REDUCE_VAR, trips) as rc:
        wptr = pb.alu(Op.ADD, U32, wptr, dst=wptr)
        xptr = pb.alu(Op.ADD, U32, xptr, dst=xptr)
        wv = pb.ld(F32, _elem_expr(w_base, w_terms), deps=(wptr,), width=4 * unroll)
        xv = pb.ld(F32, _elem_expr(in_base, x_terms), deps=(xptr,), width=4 * unroll)
        acc = pb.alu(Op.MAD, F32, wv, xv, acc, dst=acc)
        for _ in range(unroll - 1):
            acc = pb.alu(Op.MAD, F32, wv, xv, acc, dst=acc)
    bv = pb.ld(F32, _elem_expr(b_base, tmap.n_terms))
    acc = pb.alu(Op.ADD, F32, acc, bv, dst=acc)
    if layer.relu:
        acc = pb.alu(Op.MAX, F32, acc, dst=acc)
    pb.st(F32, acc, _elem_expr(out_base, tmap.n_terms))
    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=58,
        cmem_bytes=_cmem_bytes(4, 2),
        regions=layout.regions,
    )


# ----------------------------------------------------------------------
# normalization / element-wise family
# ----------------------------------------------------------------------
def build_lrn(
    layer: LRN,
    in_shape: tuple[int, int, int],
    tmap: ThreadMap,
) -> BuiltKernel:
    """Local response normalization: cross-channel square-sum window."""
    c, h, w = in_shape
    layout = MemLayout()
    in_base = layout.alloc("input", "in", 4 * c * h * w)
    out_base = layout.alloc("output", "out", 4 * c * h * w)
    half = layer.local_size // 2

    neighbour_terms = (
        scale_terms(tmap.c_terms, h * w)
        + (Term(REDUCE_VAR, h * w),)
        + scale_terms(tmap.y_terms, w)
        + tmap.x_terms
    )
    in_expr = AddrExpr(in_base - 4 * half * h * w, scale_terms(neighbour_terms, 4))
    centre_expr = _elem_expr(in_base, tmap.out_index_terms(in_shape))
    out_expr = _elem_expr(out_base, tmap.out_index_terms(in_shape))

    pb = ProgramBuilder()
    ids = pb.thread_prologue()
    pb.guard(ids["lin"])

    def body(outer_dep):
        ssq = pb.alu(Op.MOV, F32)
        with pb.loop(REDUCE_VAR, layer.local_size) as rc:
            idx = pb.alu(Op.MUL, U32, rc, ids["dim0"])
            idx = pb.alu(Op.ADD, U32, idx, ids["byte"])
            v = pb.ld(F32, in_expr, deps=(idx,))
            ssq = pb.alu(Op.MAD, F32, v, v, ssq, dst=ssq)
        centre = pb.ld(F32, centre_expr)
        # x / (k + a*ssq)^0.75 via exp2/log-free SFU sequence.
        scaled = pb.alu(Op.MAD, F32, ssq, ssq, centre)
        powv = pb.alu(Op.EX2, F32, scaled)
        inv = pb.alu(Op.RCP, F32, powv)
        outv = pb.alu(Op.MUL, F32, centre, inv)
        pb.st(F32, outv, out_expr)

    if tmap.outputs_per_thread > 1:
        with pb.loop(OUTER_VAR, tmap.outputs_per_thread) as oc:
            body(oc)
    else:
        body(None)

    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=64,
        cmem_bytes=_cmem_bytes(2, 7) + 280,
        regions=layout.regions,
    )


def _build_elementwise(
    category: str,
    in_shape: tuple[int, int, int],
    tmap: ThreadMap,
    n_inputs: int = 1,
    channel_tensors: tuple[str, ...] = (),
    f32_ops: tuple[Op, ...] = (Op.MAX,),
) -> BuiltKernel:
    """Shared emitter for ReLU / BatchNorm / Scale / Eltwise / Concat.

    Loads each input element (plus any per-channel parameter tensors),
    applies a short f32 op chain, and stores the result.
    """
    c, h, w = in_shape
    layout = MemLayout()
    in_exprs = []
    for i in range(n_inputs):
        base = layout.alloc("input", f"in{i}", 4 * c * h * w)
        in_exprs.append(_elem_expr(base, tmap.out_index_terms(in_shape)))
    chan_exprs = []
    for name in channel_tensors:
        base = layout.alloc("weight", name, 4 * c)
        chan_exprs.append(_elem_expr(base, tmap.c_terms))
    out_base = layout.alloc("output", "out", 4 * c * h * w)
    out_expr = _elem_expr(out_base, tmap.out_index_terms(in_shape))

    pb = ProgramBuilder()
    ids = pb.thread_prologue()
    pb.guard(ids["lin"])

    def body(outer_dep):
        idx = pb.alu(Op.MUL, U32, ids["tx"], ids["dim0"])
        idx = pb.alu(Op.ADD, U32, idx, ids["byte"])
        vals = [pb.ld(F32, expr, deps=(idx,)) for expr in in_exprs]
        vals += [pb.ld(F32, expr) for expr in chan_exprs]
        acc = vals[0]
        for op in f32_ops:
            operand = vals[1] if len(vals) > 1 else acc
            acc = pb.alu(op, F32, acc, operand, dst=acc)
        ofs = pb.alu(Op.SHL, U32, ids["lin"])
        pb.st(F32, acc, out_expr, deps=(ofs,))

    if tmap.outputs_per_thread > 1:
        with pb.loop(OUTER_VAR, tmap.outputs_per_thread) as oc:
            body(oc)
    else:
        body(None)

    smem = {"Relu": 32, "Scale": 52, "Norm": 52, "Eltwise": 48, "Others": 40}
    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=smem.get(category, 40),
        cmem_bytes=_cmem_bytes(n_inputs + len(channel_tensors) + 1, 3),
        regions=layout.regions,
    )


def build_relu(in_shape, tmap) -> BuiltKernel:
    """Stand-alone ReLU kernel."""
    return _build_elementwise("Relu", in_shape, tmap, f32_ops=(Op.MAX,))


def build_batchnorm(in_shape, tmap) -> BuiltKernel:
    """BatchNorm kernel: per-channel (x - mean) * rsqrt(var)."""
    built = _build_elementwise(
        "Norm", in_shape, tmap, channel_tensors=("mean", "var"),
        f32_ops=(Op.ADD, Op.RSQRT, Op.MUL),
    )
    return built


def build_scale(in_shape, tmap) -> BuiltKernel:
    """Scale kernel: per-channel gamma * x + beta."""
    return _build_elementwise(
        "Scale", in_shape, tmap, channel_tensors=("gamma", "beta"),
        f32_ops=(Op.MAD,),
    )


def build_eltwise(in_shape, tmap) -> BuiltKernel:
    """Eltwise kernel: shortcut addition of two activations."""
    return _build_elementwise("Eltwise", in_shape, tmap, n_inputs=2, f32_ops=(Op.ADD,))


def build_concat(in_shape, tmap) -> BuiltKernel:
    """Concat kernel slice: a plain strided copy of one input."""
    return _build_elementwise("Others", in_shape, tmap, f32_ops=(Op.MOV,))


def build_softmax(classes: int, tmap: ThreadMap) -> BuiltKernel:
    """Softmax kernel: one thread per class, reduction over all classes."""
    layout = MemLayout()
    in_base = layout.alloc("input", "in", 4 * classes)
    out_base = layout.alloc("output", "out", 4 * classes)
    score_expr = _elem_expr(in_base, tmap.n_terms)
    other_expr = _elem_expr(in_base, (Term(REDUCE_VAR, 1),))
    out_expr = _elem_expr(out_base, tmap.n_terms)

    pb = ProgramBuilder()
    ids = pb.thread_prologue(two_d=False)
    pb.guard(ids["lin"])
    own = pb.ld(F32, score_expr)
    m = pb.alu(Op.MOV, F32)
    total = pb.alu(Op.MOV, F32)
    with pb.loop(REDUCE_VAR, classes) as rc:
        v = pb.ld(F32, other_expr, deps=(rc,))
        m = pb.alu(Op.MAX, F32, m, v, dst=m)
        e = pb.alu(Op.EX2, F32, v)
        total = pb.alu(Op.ADD, F32, total, e, dst=total)
    e_own = pb.alu(Op.EX2, F32, own)
    inv = pb.alu(Op.RCP, F32, total)
    outv = pb.alu(Op.MUL, F32, e_own, inv)
    pb.st(F32, outv, out_expr)
    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=40,
        cmem_bytes=_cmem_bytes(2, 1),
        regions=layout.regions,
    )


# ----------------------------------------------------------------------
# recurrent cells
# ----------------------------------------------------------------------
def build_rnn_cell(layer: GRUCell | LSTMCell) -> BuiltKernel:
    """GRU/LSTM cell kernel: one thread per hidden neuron, one timestep.

    The hidden state lives in shared memory (hence Table III's 504 B /
    936 B smem for GRU/LSTM); the recurrent matrices stream from global
    memory with no reuse, which is why RNNs gain nothing from a larger
    L1 (Figure 2).  Gate sigmoids/tanhs use the SFU (`ex2`, `rcp`), and
    LSTM's extra gate plus the ``c = f*c + i*g`` chain add the extra
    data-dependency stalls the paper notes versus GRU.
    """
    hidden = layer.hidden_size
    gates = ("z", "r", "h") if isinstance(layer, GRUCell) else ("i", "f", "o", "g")
    # The recurrent matrices are stored transposed with rows padded to a
    # cache-line multiple (the cudaMallocPitch layout, see below), so
    # each u_* tensor really occupies hidden * row_stride elements — the
    # static verifier flags the loads of the last rows as out-of-region
    # if only hidden * hidden are declared.
    row_stride = -(-hidden // 32) * 32
    layout = MemLayout()
    x_base = layout.alloc("input", "x", 4 * layer.input_size)
    u_bases = {g: layout.alloc("weight", f"u_{g}", 4 * hidden * row_stride) for g in gates}
    w_bases = {g: layout.alloc("weight", f"w_{g}", 4 * hidden * layer.input_size) for g in gates}
    b_bases = {g: layout.alloc("weight", f"b_{g}", 4 * hidden) for g in gates}
    out_base = layout.alloc("output", "h_out", 4 * hidden)

    n_terms = (Term("lin_tid", 1),)

    pb = ProgramBuilder()
    ids = pb.thread_prologue(two_d=isinstance(layer, GRUCell), warp_indexing=False)
    pb.guard(ids["lin"])
    xv = pb.ld(F32, _elem_expr(x_base, ()))
    # Shared temporaries reused across the gate mat-vecs keep the kernel
    # register count in the small range Table III reports for the RNNs.
    uptr = pb.alu(Op.MAD24, U32, ids["lin"], ids["dim0"])
    hptr = pb.alu(Op.MOV, U32, ids["lin"])
    uv = pb.ra.fresh()
    hv = pb.ra.fresh()
    wv = pb.ra.fresh()
    # The recurrent matrices are stored transposed (u[j][n]) with rows
    # padded to a cache-line multiple (the cudaMallocPitch layout), so
    # lane n's load at step j is coalesced with its neighbours and every
    # iteration touches fresh cache lines exactly once — which is why
    # RNNs are insensitive to L1 capacity (Figure 2 / Observation 2).
    u_terms = (Term(REDUCE_VAR, row_stride),) + n_terms

    def gate_epilogue(acc):
        """Bias + input contribution + exp2-based sigmoid/tanh."""
        pb.ld(F32, _elem_expr(w_bases[gates[0]], n_terms), dst=wv)
        acc = pb.alu(Op.MAD, F32, wv, xv, acc, dst=acc)
        pb.ld(F32, _elem_expr(b_bases[gates[0]], n_terms), dst=wv)
        acc = pb.alu(Op.ADD, F32, acc, wv, dst=acc)
        e = pb.alu(Op.EX2, F32, acc, dst=acc)
        e1 = pb.alu(Op.ADD, F32, e, dst=acc)
        return pb.alu(Op.RCP, F32, e1)

    gate_results = []
    if isinstance(layer, GRUCell):
        # The GRU kernel fuses the update and reset mat-vecs into one
        # loop — both gates read the same h and the same row index, and
        # neither depends on the other — giving the loop two independent
        # accumulator chains (more ILP, fewer dependency stalls than
        # LSTM's serial gate loops; the paper links LSTM's extra data
        # dependency to its extra gate).
        acc_z = pb.alu(Op.MOV, F32)
        acc_r = pb.alu(Op.MOV, F32)
        with pb.loop(REDUCE_VAR, hidden) as rc:
            uptr = pb.alu(Op.ADD, U32, uptr, dst=uptr)
            hptr = pb.alu(Op.ADD, U32, hptr, dst=hptr)
            pb.ld(F32, _elem_expr(u_bases["z"], u_terms), deps=(uptr,), dst=uv)
            pb.ld(F32, space=MemSpace.SHARED, deps=(hptr,), dst=hv)
            acc_z = pb.alu(Op.MAD, F32, uv, hv, acc_z, dst=acc_z)
            pb.ld(F32, _elem_expr(u_bases["r"], u_terms), deps=(uptr,), dst=uv)
            acc_r = pb.alu(Op.MAD, F32, uv, hv, acc_r, dst=acc_r)
        z = gate_epilogue(acc_z)
        r = gate_epilogue(acc_r)
        # Candidate mat-vec: u_h @ (r * h) — the r-gated product makes
        # this loop depend on the reset gate.
        acc_h = pb.alu(Op.MOV, F32)
        u_terms_h = (Term("rh", row_stride),) + n_terms
        with pb.loop("rh", hidden) as rc:
            uptr = pb.alu(Op.ADD, U32, uptr, dst=uptr)
            hptr = pb.alu(Op.ADD, U32, hptr, dst=hptr)
            pb.ld(F32, _elem_expr(u_bases["h"], u_terms_h), deps=(uptr,), dst=uv)
            pb.ld(F32, space=MemSpace.SHARED, deps=(hptr,), dst=hv)
            gated = pb.alu(Op.MUL, F32, r, hv)
            acc_h = pb.alu(Op.MAD, F32, uv, gated, acc_h, dst=acc_h)
        gate_results = [z, r, gate_epilogue(acc_h)]
    else:
        # LSTM: four gates, four serial mat-vec loops with a single
        # accumulator chain each.
        for g in gates:
            acc = pb.alu(Op.MOV, F32)
            with pb.loop(REDUCE_VAR, hidden) as rc:
                uptr = pb.alu(Op.ADD, U32, uptr, dst=uptr)
                hptr = pb.alu(Op.ADD, U32, hptr, dst=hptr)
                pb.ld(F32, _elem_expr(u_bases[g], u_terms), deps=(uptr,), dst=uv)
                pb.ld(F32, space=MemSpace.SHARED, deps=(hptr,), dst=hv)
                acc = pb.alu(Op.MAD, F32, uv, hv, acc, dst=acc)
            gate_results.append(gate_epilogue(acc))

    if isinstance(layer, GRUCell):
        z, r, hc = gate_results
        one_minus = pb.alu(Op.ADD, F32, z)
        old = pb.ld(F32, space=MemSpace.SHARED)
        keep = pb.alu(Op.MUL, F32, one_minus, old)
        new = pb.alu(Op.MAD, F32, z, hc, keep)
    else:
        i, f, o, g_ = gate_results
        c_old = pb.ld(F32, space=MemSpace.SHARED)
        fc = pb.alu(Op.MUL, F32, f, c_old)
        c_new = pb.alu(Op.MAD, F32, i, g_, fc)
        ec = pb.alu(Op.EX2, F32, c_new)
        tanh_c = pb.alu(Op.RCP, F32, ec)
        new = pb.alu(Op.MUL, F32, o, tanh_c)
        pb.st(F32, c_new, space=MemSpace.SHARED)
    pb.st(F32, new, space=MemSpace.SHARED)
    pb.emit(Instruction(Op.BAR, DType.NONE))
    pb.st(F32, new, _elem_expr(out_base, n_terms))

    smem = 936 if isinstance(layer, LSTMCell) else 504
    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=smem,
        cmem_bytes=_cmem_bytes(3 * len(gates) + 2, 2),
        regions=layout.regions,
    )


# ----------------------------------------------------------------------
# depthwise convolution (MobileNet extension)
# ----------------------------------------------------------------------
def build_depthwise_conv(
    layer: DepthwiseConv2D,
    in_shape: tuple[int, int, int],
    out_shape: tuple[int, int, int],
    tmap: ThreadMap,
) -> BuiltKernel:
    """Depthwise convolution kernel: per-channel k x k reduction.

    Unlike a full convolution, each output channel reads only its own
    input plane, so blocks do not share input data and the reduction is
    just ``k*k`` long — low arithmetic intensity, which is exactly why
    depthwise layers are memory-bound on GPUs.
    """
    c, h, w = in_shape
    _, oh, ow = out_shape
    k, s, p = layer.kernel, layer.stride, layer.pad
    trips = k * k

    layout = MemLayout()
    in_base = layout.alloc("input", "in", 4 * c * h * w)
    w_base = layout.alloc("weight", "weight", 4 * c * trips)
    b_base = layout.alloc("weight", "bias", 4 * c) if layer.bias else 0
    out_base = layout.alloc("output", "out", 4 * int(np.prod(out_shape)))

    in_terms = (
        scale_terms(tmap.c_terms, h * w)
        + scale_terms(tmap.y_terms, s * w)
        + (Term(REDUCE_VAR, w, div=k),)
        + scale_terms(tmap.x_terms, s)
        + (Term(REDUCE_VAR, 1, mod=k),)
    )
    in_expr = AddrExpr(in_base - 4 * (p * w + p), scale_terms(in_terms, 4))
    w_terms = scale_terms(tmap.c_terms, trips) + (Term(REDUCE_VAR, 1),)
    out_expr = _elem_expr(out_base, tmap.out_index_terms(out_shape))

    pb = ProgramBuilder()
    ids = pb.thread_prologue()
    pb.guard(ids["lin"])

    def body(outer_dep):
        acc = pb.alu(Op.MOV, F32)
        with pb.loop(REDUCE_VAR, trips) as rc:
            t0 = pb.alu(Op.MUL, U32, rc, ids["dim1"])
            t1 = pb.alu(Op.ADD, U32, t0, ids["byte"])
            wofs = pb.alu(Op.SHL, U32, rc)
            wv = pb.ld(F32, _elem_expr(w_base, w_terms), deps=(wofs,))
            xv = pb.ld(F32, in_expr, deps=(t1,))
            acc = pb.alu(Op.MAD, F32, wv, xv, acc, dst=acc)
        if layer.bias:
            bv = pb.ld(F32, _elem_expr(b_base, tmap.c_terms))
            acc = pb.alu(Op.ADD, F32, acc, bv, dst=acc)
        if layer.relu:
            acc = pb.alu(Op.MAX, F32, acc, dst=acc)
        so = pb.alu(Op.SHL, U32, ids["lin"])
        pb.st(F32, acc, out_expr, deps=(so,))

    if tmap.outputs_per_thread > 1:
        with pb.loop(OUTER_VAR, tmap.outputs_per_thread) as oc:
            body(oc)
    else:
        body(None)

    return BuiltKernel(
        program=pb.finish(),
        smem_bytes=56,
        cmem_bytes=_cmem_bytes(4, k * k + 2),
        regions=layout.regions,
    )
