"""Imperative builder for thread programs.

Wraps a :class:`~repro.isa.registers.RegisterAllocator` and a stack of
instruction lists so layer builders can emit PTX-like code naturally::

    pb = ProgramBuilder()
    ids = pb.thread_prologue()
    acc = pb.alu(Op.MOV, DType.F32)
    with pb.loop(REDUCE_VAR, trips) as rc:
        w = pb.ld(DType.F32, w_addr, deps=(rc,))
        x = pb.ld(DType.F32, in_addr, deps=(rc,))
        acc = pb.alu(Op.MAD, DType.F32, w, x, acc, dst=acc)
    pb.st(DType.F32, acc, out_addr)
    program = pb.finish()

The emitted sequences intentionally mirror what nvcc produces for the
paper's kernels: ``mov``/``cvt`` id reads, ``mad24`` linearization, the
warp-unit ``shl`` the paper calls out (Section IV-D.1), per-iteration
``add``/``set``/``bra`` loop bookkeeping, ``ssy`` at divergence points
and trailing ``nop`` padding — these are what make the operation-mix
figures (8 and 9) come out with the paper's add/mad/shl/mul-heavy shape.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.isa.dtypes import DType
from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op
from repro.isa.program import Loop, Program
from repro.isa.registers import Reg, RegisterAllocator


class ProgramBuilder:
    """Builds one thread program instruction by instruction."""

    def __init__(self) -> None:
        self.ra = RegisterAllocator()
        self._stack: list[list] = [[]]

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> None:
        """Append a fully-formed instruction."""
        self._stack[-1].append(instr)

    def special(self, name: str) -> Reg:
        """The named entry-live special register (%tid.x, pointers, ...)."""
        return self.ra.special(name)

    def alu(self, op: Op, dtype: DType, *srcs: Reg, dst: Reg | None = None) -> Reg:
        """Emit an ALU op; allocates a fresh destination unless given."""
        if dst is None:
            dst = self.ra.fresh()
        self.emit(Instruction(op, dtype, dst=dst, srcs=tuple(srcs)))
        return dst

    def ld(
        self,
        dtype: DType,
        addr=None,
        space: MemSpace = MemSpace.GLOBAL,
        deps: tuple[Reg, ...] = (),
        width: int = 4,
        dst: Reg | None = None,
    ) -> Reg:
        """Emit a load; returns the destination register."""
        if dst is None:
            dst = self.ra.fresh()
        self.emit(
            Instruction(
                Op.LD, dtype, dst=dst, srcs=tuple(deps), space=space, addr=addr,
                width_bytes=width,
            )
        )
        return dst

    def st(
        self,
        dtype: DType,
        value: Reg,
        addr=None,
        space: MemSpace = MemSpace.GLOBAL,
        deps: tuple[Reg, ...] = (),
        width: int = 4,
    ) -> None:
        """Emit a store of *value*."""
        self.emit(
            Instruction(
                Op.ST, dtype, dst=None, srcs=(value,) + tuple(deps), space=space,
                addr=addr, width_bytes=width,
            )
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @contextmanager
    def loop(self, var: str, trips: int):
        """A counted loop.

        Emits the surrounding bookkeeping the compiler would produce:
        ``ssy`` + counter ``mov`` before the loop; per-iteration counter
        ``add``, ``set`` on the bound and backward ``bra`` at the bottom;
        a ``nop`` pad after.  Yields the counter register so the body can
        express dependencies on it.
        """
        counter = self.ra.fresh()
        bound = self.ra.fresh()
        self.emit(Instruction(Op.SSY, DType.NONE))
        self.emit(Instruction(Op.MOV, DType.U32, dst=counter))
        self.emit(Instruction(Op.MOV, DType.U32, dst=bound))
        self._stack.append([])
        try:
            yield counter
        finally:
            pred = self.ra.fresh()
            body = self._stack.pop()
            body.append(Instruction(Op.ADD, DType.U32, dst=counter, srcs=(counter,)))
            body.append(
                Instruction(Op.SET, DType.U32, dst=pred, srcs=(counter, bound))
            )
            body.append(Instruction(Op.BRA, DType.NONE, srcs=(pred,)))
            self._stack[-1].append(Loop(var, trips, tuple(body)))
            self.emit(Instruction(Op.NOP, DType.NONE))

    # ------------------------------------------------------------------
    # canned sequences
    # ------------------------------------------------------------------
    def thread_prologue(self, two_d: bool = True, warp_indexing: bool = True) -> dict[str, Reg]:
        """Standard kernel entry: read ids, linearize, byte-scale.

        ``warp_indexing`` adds the ``shr``/``shl`` warp-unit index
        arithmetic the paper observes in CNN kernels; the RNN kernels
        (single small block) skip it, which is why the paper's Figure 8
        shows ``shl`` in CNNs but not RNNs.
        """
        regs: dict[str, Reg] = {}
        tid_x = self.special("%tid.x")
        ctaid_x = self.special("%ctaid.x")
        ntid_x = self.special("%ntid.x")
        tx = self.alu(Op.MOV, DType.U16, tid_x)
        tx32 = self.alu(Op.CVT, DType.U32, tx)
        regs["tx"] = tx32
        if two_d:
            tid_y = self.special("%tid.y")
            ty = self.alu(Op.MOV, DType.U16, tid_y)
            ty32 = self.alu(Op.CVT, DType.U32, ty)
            lin = self.alu(Op.MAD24, DType.U32, ty32, ntid_x, tx32)
            regs["ty"] = ty32
        else:
            lin = tx32
        bx = self.alu(Op.MOV, DType.U16, ctaid_x)
        bx32 = self.alu(Op.CVT, DType.U32, bx)
        regs["bx"] = bx32
        regs["lin"] = lin
        if warp_indexing:
            # Warp-unit data indexing: each warp runs 32 threads, so the
            # compiled code shifts by 5 to form warp-granular indices and
            # by 2 to form byte offsets (Observation in Section IV-D.1).
            regs["warp"] = self.alu(Op.SHR, DType.U32, lin)
            regs["byte"] = self.alu(Op.SHL, DType.U32, lin)
        # Kernel dimension parameters come from the constant bank.
        regs["dim0"] = self.ld(DType.U32, space=MemSpace.CONST)
        regs["dim1"] = self.ld(DType.U32, space=MemSpace.CONST)
        return regs

    def guard(self, on: Reg) -> Reg:
        """Bounds-check: ``set`` a predicate from *on* and branch on it."""
        pred = self.alu(Op.SET, DType.U32, on)
        self.emit(Instruction(Op.BRA, DType.NONE, srcs=(pred,)))
        return pred

    def finish(self) -> Program:
        """Close the program with ``exit`` and return it."""
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loop in program builder")
        self.emit(Instruction(Op.EXIT, DType.NONE))
        return Program(
            items=tuple(self._stack[0]),
            reg_count=self.ra.count,
            entry_regs=self.ra.specials,
        )


def build_guard_program() -> Program:
    """Tiny program run by fully-inactive warps: check bounds and exit.

    Blocks whose tile overhangs the layer's output extent carry warps in
    which every thread fails the bounds check; in the real kernels those
    warps execute only the prologue guard before exiting.
    """
    pb = ProgramBuilder()
    ids = pb.thread_prologue(two_d=False, warp_indexing=False)
    pb.guard(ids["lin"])
    return pb.finish()
