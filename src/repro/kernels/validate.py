"""Structural validation of compiled thread programs.

The cheapest class of kernel-IR defect — an address expression that
references a loop variable no enclosing loop binds — used to surface as
a ``KeyError`` deep inside the timing simulator's address evaluation,
long after the builder bug that caused it.  :func:`unbound_symbols`
finds these statically by walking the program structure, and
:func:`validate_launch_symbols` turns them into a
:class:`KernelValidationError` naming the kernel, the instruction and
the symbol.  :func:`repro.kernels.compile.compile_network` runs this on
every launch it produces, so a malformed program never reaches the
simulator; the fuller :mod:`repro.analysis` passes report the same
defect as an ``unbound-symbol`` diagnostic.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.program import Loop, Program, ProgramItem
from repro.kernels.addressing import BLOCK_SYMBOLS, THREAD_SYMBOLS

#: Symbols an address expression may always reference, independent of
#: any loop nest.
_AMBIENT_SYMBOLS = frozenset(THREAD_SYMBOLS) | frozenset(BLOCK_SYMBOLS)


class KernelValidationError(ValueError):
    """A compiled kernel's thread program is structurally malformed."""


def unbound_symbols(program: Program) -> list[tuple[Instruction, str]]:
    """Find address-expression symbols no enclosing loop binds.

    Returns ``(instruction, symbol)`` pairs in program order; a symbol
    is bound when it is a thread/block symbol or the variable of a loop
    enclosing the instruction that references it.
    """
    found: list[tuple[Instruction, str]] = []

    def walk(items: tuple[ProgramItem, ...], bound: frozenset[str]) -> None:
        for item in items:
            if isinstance(item, Loop):
                walk(item.body, bound | {item.var})
            elif item.addr is not None:
                for term in item.addr.terms:
                    if term.sym not in _AMBIENT_SYMBOLS and term.sym not in bound:
                        found.append((item, term.sym))

    walk(program.items, frozenset())
    return found


def validate_launch_symbols(kernel_name: str, program: Program) -> None:
    """Raise :class:`KernelValidationError` on any unbound address symbol."""
    bad = unbound_symbols(program)
    if bad:
        instr, sym = bad[0]
        raise KernelValidationError(
            f"kernel {kernel_name!r}: address of `{instr.describe()}` references "
            f"loop variable {sym!r} which no enclosing loop binds "
            f"({len(bad)} unbound reference(s) total)"
        )
