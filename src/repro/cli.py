"""The ``repro`` command-line interface.

Subcommands:

``repro lint [networks...]``
    Compile the named suite networks (default: all seven) and run the
    :mod:`repro.analysis` static verifier over every kernel launch,
    printing a per-kernel grouped diagnostics report.  ``--json`` emits
    the machine-readable form instead; ``--strict`` promotes warnings to
    the failure condition; ``--quiet`` hides note-severity diagnostics.
    Exit status: 0 when clean, 1 when the failure condition is met, 2 on
    usage errors (argparse's convention).

``repro networks``
    List the benchmark suite (paper networks plus extensions).

Also invocable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Severity, analyze_network
from repro.core.suite import BENCHMARK_INFO, EXTENSION_NETWORKS, NETWORK_ORDER


def _cmd_lint(args: argparse.Namespace) -> int:
    names = args.networks or list(NETWORK_ORDER)
    known = set(NETWORK_ORDER) | set(EXTENSION_NETWORKS)
    unknown = [n for n in names if n not in known]
    if unknown:
        print(
            f"unknown network(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2
    min_severity = Severity.WARNING if args.quiet else Severity.NOTE
    failed = False
    json_reports = []
    for name in names:
        report = analyze_network(name)
        failed |= report.has_errors or (
            args.strict and report.count(Severity.WARNING) > 0
        )
        if args.json:
            json_reports.append(report.to_json())
        else:
            print(report.format(min_severity=min_severity))
    if args.json:
        print("[" + ",\n".join(json_reports) + "]")
    return 1 if failed else 0


def _cmd_networks(args: argparse.Namespace) -> int:
    for name in NETWORK_ORDER + EXTENSION_NETWORKS:
        info = BENCHMARK_INFO[name]
        extra = " (extension)" if name in EXTENSION_NETWORKS else ""
        print(f"{name:12s} {info.display_name} [{info.kind}]{extra}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint",
        help="statically verify the compiled kernels of suite networks",
        description="Run the static kernel-IR verifier (def-use, address "
        "intervals, shared-memory races, lints) over compiled networks.",
    )
    lint.add_argument("networks", nargs="*",
                      help="network names (default: the paper's seven)")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as failures too")
    lint.add_argument("--quiet", action="store_true",
                      help="hide note-severity diagnostics in text output")
    lint.set_defaults(func=_cmd_lint)

    networks = sub.add_parser("networks", help="list the benchmark suite")
    networks.set_defaults(func=_cmd_networks)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
