"""The ``repro`` command-line interface.

Subcommands:

``repro lint [networks...]``
    Compile the named suite networks (default: all seven) and run the
    :mod:`repro.analysis` static verifier over every kernel launch,
    printing a per-kernel grouped diagnostics report.  ``--json`` emits
    the machine-readable form instead; ``--strict`` promotes warnings to
    the failure condition; ``--quiet`` hides note-severity diagnostics.
    Exit status: 0 when clean, 1 when the failure condition is met, 2 on
    usage errors (argparse's convention).

``repro simulate [networks...]``
    Run whole-network GPU simulations and print per-network cycle and
    time totals.  Results persist in the cross-run kernel cache
    (``.repro-cache/`` or ``$REPRO_CACHE_DIR``; ``--no-cache``
    disables).  ``--jobs N`` fans networks out across N worker
    processes; output order stays the input order.

``repro bench [networks...]``
    Time cold vs warm-cache simulations per network and write
    ``BENCH_sim.json`` (``--seed`` also times the frozen reference
    engine for speedup ratios).

``repro networks``
    List the benchmark suite (paper networks plus extensions).

Also invocable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Severity, analyze_network
from repro.core.suite import BENCHMARK_INFO, EXTENSION_NETWORKS, NETWORK_ORDER


def _check_networks(names: list[str]) -> int | None:
    """Exit code 2 and a message on unknown names, else None."""
    known = set(NETWORK_ORDER) | set(EXTENSION_NETWORKS)
    unknown = [n for n in names if n not in known]
    if unknown:
        print(
            f"unknown network(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    names = args.networks or list(NETWORK_ORDER)
    err = _check_networks(names)
    if err is not None:
        return err
    min_severity = Severity.WARNING if args.quiet else Severity.NOTE
    failed = False
    json_reports = []
    for name in names:
        report = analyze_network(name)
        failed |= report.has_errors or (
            args.strict and report.count(Severity.WARNING) > 0
        )
        if args.json:
            json_reports.append(report.to_json())
        else:
            print(report.format(min_severity=min_severity))
    if args.json:
        print("[" + ",\n".join(json_reports) + "]")
    return 1 if failed else 0


def _sim_options(args: argparse.Namespace):
    from repro.gpu.config import SimOptions

    options = SimOptions(scheduler=args.scheduler)
    if getattr(args, "light", False):
        options = options.light()
    return options


def _simulate_one(name: str, config, options, cache_dir):
    """Module-level (picklable) worker for ``repro simulate --jobs``."""
    from repro.gpu.simulator import simulate_network
    from repro.perf.cache import KernelResultCache

    cache = KernelResultCache(cache_dir) if cache_dir is not None else None
    result = simulate_network(name, config, options, cache=cache)
    return {
        "network": name,
        "platform": config.name,
        "kernels": len(result.kernels),
        "total_cycles": result.total_cycles,
        "total_time_ms": result.total_time_ms,
    }


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.perf.cache import default_cache_dir
    from repro.platforms import get_platform

    names = args.networks or list(NETWORK_ORDER)
    err = _check_networks(names)
    if err is not None:
        return err
    config = get_platform(args.platform)
    options = _sim_options(args)
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir if args.cache_dir else str(default_cache_dir())

    if args.jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(args.jobs, len(names))) as pool:
            futures = [
                pool.submit(_simulate_one, name, config, options, cache_dir)
                for name in names
            ]
            # Collect in submission order: deterministic output.
            rows = [future.result() for future in futures]
    else:
        rows = [_simulate_one(name, config, options, cache_dir) for name in names]

    if args.json:
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(f"{'network':12s} {'platform':8s} {'kernels':>7s} "
              f"{'cycles':>16s} {'time_ms':>10s}")
        for row in rows:
            print(f"{row['network']:12s} {row['platform']:8s} "
                  f"{row['kernels']:7d} {row['total_cycles']:16.0f} "
                  f"{row['total_time_ms']:10.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import run_bench, write_bench
    from repro.platforms import get_platform

    names = args.networks or list(NETWORK_ORDER)
    err = _check_networks(names)
    if err is not None:
        return err
    config = get_platform(args.platform)
    options = _sim_options(args)
    payload = run_bench(
        names,
        config,
        options,
        cache_dir=args.cache_dir,
        repeats=args.repeats,
        seed=args.seed,
    )
    write_bench(payload, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_networks(args: argparse.Namespace) -> int:
    for name in NETWORK_ORDER + EXTENSION_NETWORKS:
        info = BENCHMARK_INFO[name]
        extra = " (extension)" if name in EXTENSION_NETWORKS else ""
        print(f"{name:12s} {info.display_name} [{info.kind}]{extra}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint",
        help="statically verify the compiled kernels of suite networks",
        description="Run the static kernel-IR verifier (def-use, address "
        "intervals, shared-memory races, lints) over compiled networks.",
    )
    lint.add_argument("networks", nargs="*",
                      help="network names (default: the paper's seven)")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as failures too")
    lint.add_argument("--quiet", action="store_true",
                      help="hide note-severity diagnostics in text output")
    lint.set_defaults(func=_cmd_lint)

    simulate = sub.add_parser(
        "simulate",
        help="run whole-network GPU simulations (cached, parallelizable)",
        description="Simulate suite networks on a platform model, using "
        "the persistent cross-run kernel-result cache.",
    )
    simulate.add_argument("networks", nargs="*",
                          help="network names (default: the paper's seven)")
    _add_sim_args(simulate)
    simulate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="simulate networks across N worker processes")
    simulate.add_argument("--no-cache", action="store_true",
                          help="skip the persistent kernel-result cache")
    simulate.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="cache directory (default: $REPRO_CACHE_DIR "
                               "or .repro-cache)")
    simulate.add_argument("--json", action="store_true",
                          help="emit per-network results as JSON")
    simulate.set_defaults(func=_cmd_simulate)

    bench = sub.add_parser(
        "bench",
        help="time cold vs warm-cache simulations (writes BENCH_sim.json)",
        description="Benchmark the simulation engine per network and emit "
        "a JSON timing report.",
    )
    bench.add_argument("networks", nargs="*",
                       help="network names (default: the paper's seven)")
    _add_sim_args(bench)
    bench.add_argument("--output", default="BENCH_sim.json", metavar="PATH",
                       help="output JSON path (default: BENCH_sim.json)")
    bench.add_argument("--repeats", type=int, default=1, metavar="N",
                       help="best-of-N timing repeats (default: 1)")
    bench.add_argument("--seed", action="store_true",
                       help="also time the frozen reference engine")
    bench.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="warm-cache directory (default: a temp dir)")
    bench.set_defaults(func=_cmd_bench)

    networks = sub.add_parser("networks", help="list the benchmark suite")
    networks.set_defaults(func=_cmd_networks)
    return parser


def _add_sim_args(sub_parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``simulate`` and ``bench``."""
    sub_parser.add_argument("--platform", default="gp102",
                            help="platform model (default: gp102)")
    sub_parser.add_argument("--scheduler", default="gto",
                            choices=("gto", "lrr", "tlv"),
                            help="warp scheduler (default: gto)")
    sub_parser.add_argument("--light", action="store_true",
                            help="light sampling options (fast, for smoke "
                                 "tests; not comparable to default runs)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
