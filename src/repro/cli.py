"""The ``repro`` command-line interface.

Subcommands:

``repro lint [networks...]``
    Compile the named suite networks (default: all seven) and run the
    :mod:`repro.analysis` static verifier over every kernel launch,
    printing a per-kernel grouped diagnostics report.  ``--json`` emits
    the machine-readable form instead; ``--strict`` promotes warnings to
    the failure condition; ``--quiet`` hides note-severity diagnostics.
    Exit status: 0 when clean, 1 when the failure condition is met, 2 on
    usage errors (argparse's convention).

``repro simulate [networks...]``
    Run whole-network GPU simulations and print per-network cycle and
    time totals.  Results persist in the cross-run kernel cache
    (``.repro-cache/`` or ``$REPRO_CACHE_DIR``; ``--no-cache``
    disables).  ``--jobs N`` fans networks out across N worker
    processes; output order stays the input order.

``repro bench [networks...]``
    Time cold vs warm-cache simulations per network and write
    ``BENCH_sim.json`` (``--seed`` also times the frozen reference
    engine for speedup ratios).  ``--json`` also prints the payload.

``repro harness list`` / ``repro harness run [exp-ids...]``
    The paper-experiment harness: ``list`` prints every registered
    table/figure experiment with its planned run count; ``run`` plans
    the selected experiments' minimal run matrix, executes it against
    the unified result store (``--jobs N`` fans fresh simulations out),
    aggregates each experiment's series and evaluates the paper-claim
    checks.  Exit status 1 when any check fails.  ``--json`` prints all
    results as one JSON document, ``--json-dir DIR`` writes one file
    per experiment, ``--chart`` renders terminal bar charts.

``repro serve``
    Run the discrete-event inference-serving simulator over a fleet of
    simulated devices (``--devices gp102:2,tx1``): latency profiles are
    built per (network, device) through the same planner/executor the
    harness uses — a prior harness sweep makes ``repro serve`` start
    warm — then a workload (``--arrival poisson|bursty|trace|closed``)
    is scheduled across the fleet with dynamic batching, bounded queues
    and a choice of schedulers.  Reports latency tails, goodput, SLO
    violations and per-device utilization; ``--json`` and ``--report``
    emit machine- and markdown-readable forms.

``repro trace simulate [networks...]`` / ``repro trace serve``
    Record an execution trace (:mod:`repro.obs`) of a simulation or a
    serving run and write it as Chrome-trace-event JSON — load the file
    in https://ui.perfetto.dev.  ``trace simulate`` re-simulates the
    named networks (default: alexnet) so GPU kernel and warp-phase
    spans are always captured; ``trace serve`` accepts the full ``repro
    serve`` option set and additionally captures request/batch/queue
    spans.  ``--output PATH`` names the artifact, ``--no-warps`` drops
    the (voluminous) per-warp stall phases, ``--max-events N`` bounds
    trace memory (overflow is counted, never silent).

``repro campaign run|compare|list SPEC``
    Declarative design-space-exploration campaigns (see
    :mod:`repro.campaign`): ``list`` expands and dedupes the spec
    without simulating, ``run`` executes the campaign (resumable via
    the result store; ``--frontier-out`` writes the golden-frontier
    JSON, ``--output`` the full result document), ``compare`` re-runs
    and diffs the Pareto frontier against a committed golden file
    (``--golden``), exiting 1 on any regression — the QoR gate CI runs.

``repro cache``
    Inspect (``stats``) or empty (``clear``) the unified result store —
    kernel entries and whole-network run entries in one directory
    (plus any stale pre-unification ``.tango_cache/``).  ``cache
    stats`` breaks entries and bytes down by the engine version that
    wrote them; ``cache clear --engine VER`` prunes only that
    version's (e.g. stale) entries.

``repro networks``
    List the benchmark suite (paper networks plus extensions);
    ``--json`` emits machine-readable rows.

Shared flags behave identically everywhere they appear: ``--json``
(machine-readable stdout), ``--jobs N`` (worker processes),
``--cache-dir DIR`` / ``--no-cache`` (the unified result store) and
``--fidelity default|light`` (simulation sampling; ``--light`` is the
legacy spelling).

Also invocable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import Severity, analyze_network
from repro.core.suite import BENCHMARK_INFO, EXTENSION_NETWORKS, NETWORK_ORDER
from repro.perf.serve_bench import DEVICES as SERVE_BENCH_DEVICES
from repro.perf.serve_bench import REQUESTS as SERVE_BENCH_REQUESTS


def _check_networks(names: list[str]) -> int | None:
    """Exit code 2 and a message on unknown names, else None."""
    known = set(NETWORK_ORDER) | set(EXTENSION_NETWORKS)
    unknown = [n for n in names if n not in known]
    if unknown:
        print(
            f"unknown network(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    # Extension networks are first-class: the default lint sweep covers
    # the paper's seven plus every extension.
    names = args.networks or list(NETWORK_ORDER) + list(EXTENSION_NETWORKS)
    err = _check_networks(names)
    if err is not None:
        return err
    min_severity = Severity.WARNING if args.quiet else Severity.NOTE
    failed = False
    json_reports = []
    for name in names:
        if getattr(args, "netflow", False):
            from repro.analysis import analyze_network_flow

            report = analyze_network_flow(name)
        else:
            report = analyze_network(name)
        failed |= report.has_errors or (
            args.strict and report.count(Severity.WARNING) > 0
        )
        if args.json:
            json_reports.append(report.to_json())
        else:
            print(report.format(min_severity=min_severity))
    if args.json:
        print("[" + ",\n".join(json_reports) + "]")
    return 1 if failed else 0


def _light_requested(args: argparse.Namespace) -> bool:
    """Either spelling of the fast sampling mode: ``--fidelity light``
    or the legacy ``--light``."""
    return (
        getattr(args, "light", False)
        or getattr(args, "fidelity", "default") == "light"
    )


def _sim_options(args: argparse.Namespace):
    from repro.gpu import engine
    from repro.gpu.config import SimOptions

    engine.set_engine(getattr(args, "engine", None))
    options = SimOptions(scheduler=args.scheduler)
    if _light_requested(args):
        options = options.light()
    return options


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.platforms import make_config
    from repro.runs import Executor, ResultStore, RunSpec

    names = args.networks or list(NETWORK_ORDER)
    err = _check_networks(names)
    if err is not None:
        return err
    config = make_config(args.platform)
    options = _sim_options(args)
    store = None if args.no_cache else ResultStore(args.cache_dir)
    executor = Executor(store)
    specs = [RunSpec(name, config, options) for name in names]
    executor.execute(specs, jobs=args.jobs)
    rows = []
    for spec in specs:  # output order stays the input order
        result = executor.run(spec)
        rows.append({
            "network": spec.network,
            "platform": config.name,
            "kernels": len(result.kernels),
            "total_cycles": result.total_cycles,
            "total_time_ms": result.total_time_ms,
        })

    if args.json:
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(f"{'network':12s} {'platform':8s} {'kernels':>7s} "
              f"{'cycles':>16s} {'time_ms':>10s}")
        for row in rows:
            print(f"{row['network']:12s} {row['platform']:8s} "
                  f"{row['kernels']:7d} {row['total_cycles']:16.0f} "
                  f"{row['total_time_ms']:10.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import compare_bench, read_bench, run_bench, write_bench
    from repro.platforms import make_config

    if args.serve:
        return _cmd_bench_serve(args)
    names = args.networks or list(NETWORK_ORDER)
    err = _check_networks(names)
    if err is not None:
        return err
    config = make_config(args.platform)
    options = _sim_options(args)
    runs = args.runs if args.runs is not None else args.repeats
    payload = run_bench(
        names,
        config,
        options,
        cache_dir=args.cache_dir,
        runs=runs,
        seed=args.seed,
    )
    write_bench(payload, args.output)
    if args.json:
        import json

        print(json.dumps(payload, indent=2))
    else:
        print(f"wrote {args.output}")
    if args.compare is None:
        return 0
    report = compare_bench(
        read_bench(args.compare), payload,
        threshold=args.threshold, alpha=args.alpha,
    )
    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        for name, verdict in report["networks"].items():
            p = verdict["p"]
            detail = (f"p={p:.3f}" if p is not None
                      else f"{verdict['method']}")
            mark = "REGRESSION" if verdict["slower"] else "ok"
            print(f"{name:12s} {verdict['ratio']:6.2f}x vs baseline "
                  f"({detail}) {mark}")
        for name in report["skipped"]:
            print(f"{name:12s} skipped (missing from one side)")
    if report["regressions"]:
        print(f"bench: {len(report['regressions'])} network(s) "
              f"significantly slower than {args.compare}: "
              f"{', '.join(report['regressions'])}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """``repro bench --serve``: time both serving event loops."""
    import json

    from repro.perf.bench import compare_bench, read_bench, write_bench
    from repro.perf.serve_bench import gate_serve, run_serve_bench

    runs = args.runs if args.runs is not None else args.repeats
    output = args.output if args.output != "BENCH_sim.json" else "BENCH_serve.json"
    try:
        payload = run_serve_bench(
            requests=args.serve_requests,
            devices=args.serve_devices,
            runs=runs,
            verbose=not args.json,
        )
    except RuntimeError as exc:
        print(f"bench --serve: {exc}", file=sys.stderr)
        return 1
    write_bench(payload, output)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"wrote {output}")
    code = 0
    if args.gate:
        verdict = gate_serve(payload, threshold=args.threshold, alpha=args.alpha)
        p = verdict["p"]
        detail = f"p={p:.3f}" if p is not None else verdict["method"]
        mark = "REGRESSION" if verdict["slower"] else "ok"
        if not args.json:
            print(f"fast vs heap: {verdict['ratio']:.2f}x ({detail}) {mark}")
        if verdict["slower"]:
            print("bench --serve: fast loop significantly slower than "
                  "the heap loop", file=sys.stderr)
            code = 1
    if args.compare is not None:
        report = compare_bench(
            read_bench(args.compare), payload,
            threshold=args.threshold, alpha=args.alpha,
        )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            for name, verdict in report["networks"].items():
                p = verdict["p"]
                detail = f"p={p:.3f}" if p is not None else verdict["method"]
                mark = "REGRESSION" if verdict["slower"] else "ok"
                print(f"{name:12s} {verdict['ratio']:6.2f}x vs baseline "
                      f"({detail}) {mark}")
        if report["regressions"]:
            print(f"bench --serve: {len(report['regressions'])} loop(s) "
                  f"significantly slower than {args.compare}: "
                  f"{', '.join(report['regressions'])}", file=sys.stderr)
            code = 1
    return code


def _make_workload(args: argparse.Namespace, names: list[str]):
    from repro.serve.workload import (
        BurstyWorkload,
        ClosedLoopWorkload,
        PoissonWorkload,
        TraceWorkload,
    )

    if args.arrival == "poisson":
        return PoissonWorkload(args.rps, args.requests, names)
    if args.arrival == "bursty":
        return BurstyWorkload(
            args.rps, args.requests, names,
            on_ms=args.burst_on_ms, off_ms=args.burst_off_ms,
            off_factor=args.burst_off_factor,
        )
    if args.arrival == "closed":
        return ClosedLoopWorkload(
            args.clients, args.requests, names, think_ms=args.think_ms
        )
    if args.trace is None:
        print("--arrival trace requires --trace PATH", file=sys.stderr)
        return None
    return TraceWorkload.from_json(args.trace)


def _serve_prepare(
    args: argparse.Namespace, quiet: bool = False, refresh: bool = False
):
    """Validate serve arguments and build fleet, profiles and workload.

    Returns an int exit code on error, else the tuple ``(fleet,
    profiles, workload, schedulers, base_config, scenario)`` where
    ``scenario`` is the loaded :class:`~repro.serve.ServeScenario` for
    ``--scenario`` runs and None otherwise.  Shared by ``repro serve``
    and ``repro trace serve`` (which passes ``refresh=True`` so profile
    building re-simulates and the trace captures the GPU layer too).
    """
    from repro.gpu.config import SimOptions
    from repro.platforms import make_config
    from repro.serve import ServeConfig, build_fleet, build_profiles
    from repro.serve.schedulers import SCHEDULERS

    scenario = None
    if getattr(args, "scenario", None):
        from repro.serve import ScenarioError, load_scenario

        try:
            scenario = load_scenario(args.scenario)
        except ScenarioError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        names = list(scenario.networks)
        fleet = scenario.fleet()
        workload = scenario.workload()
        schedulers = [scenario.config.scheduler]
        base = scenario.config
    else:
        names = [name for name in args.networks.split(",") if name]
        err = _check_networks(names)
        if err is not None:
            return err
        schedulers = [name for name in args.scheduler.split(",") if name]
        unknown = [name for name in schedulers if name not in SCHEDULERS]
        if unknown:
            print(
                f"unknown scheduler(s): {', '.join(unknown)}; "
                f"available: {', '.join(SCHEDULERS)}",
                file=sys.stderr,
            )
            return 2
        try:
            fleet = build_fleet(args.devices)
        except (KeyError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        workload = _make_workload(args, names)
        if workload is None:
            return 2
        base = ServeConfig(
            slo_ms=args.slo_ms,
            max_batch=args.batch,
            batch_timeout_ms=args.batch_timeout_ms,
            max_queue=args.queue,
            seed=args.seed,
            admission=args.admission,
        )

    # Profiles use the simulator's default warp scheduler; ``--scheduler``
    # here names the *serving* policy, not the warp scheduler.  The
    # autoscaler template needs profiles too: scale-ups may add devices
    # of a platform absent from the initial fleet.
    platforms = [device.platform for device in fleet]
    if scenario is not None and scenario.autoscale is not None:
        platforms.append(make_config(scenario.autoscale.template))
    options = SimOptions(scheduler=args.sim_scheduler)
    if _light_requested(args):
        options = options.light()
    profiles, build_s, detail = _serve_profiles(args, names, platforms, options, refresh)
    if not quiet and not args.json:
        print(f"fleet: {' '.join(device.name for device in fleet)}")
        print(f"profiles: {len(profiles)} built in {build_s:.2f} s {detail}")

    return fleet, profiles, workload, schedulers, base, scenario


def _serve_profiles(args, names, platforms, options, refresh):
    """Build the latency-profile table, timing the build."""
    import time

    from repro.runs import Executor, ResultStore
    from repro.serve import build_profiles

    store = None if args.no_cache else ResultStore(args.cache_dir)
    executor = Executor(store)
    start = time.perf_counter()
    profiles = build_profiles(
        names, platforms, options,
        executor=executor, jobs=getattr(args, "jobs", 1), refresh=refresh,
    )
    build_s = time.perf_counter() - start
    detail = (
        f"(runs: {executor.fresh} fresh, {store.run_hits} cached)"
        if store is not None else "(uncached)"
    )
    return profiles, build_s, detail


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace

    from repro.serve import run_serve

    prep = _serve_prepare(args)
    if isinstance(prep, int):
        return prep
    fleet, profiles, workload, schedulers, base, scenario = prep
    if scenario is not None:
        configs = [(base, {"pipeline": scenario.pipeline(),
                           "loop": args.loop or scenario.loop})]
    else:
        configs = [
            (replace(base, scheduler=name), {"loop": args.loop})
            for name in schedulers
        ]
    runs = []
    run_metrics = []
    for config, kwargs in configs:
        if args.report:
            # capture the engine's histograms/gauges for the report,
            # one registry per run so schedulers don't merge
            from repro.obs import Tracer, set_tracer

            tracer = Tracer(warps=False)
            previous = set_tracer(tracer)
            try:
                stats = run_serve(fleet, profiles, workload, config, **kwargs)
            finally:
                set_tracer(previous)
            run_metrics.append(tracer.metrics.to_dict())
        else:
            stats = run_serve(fleet, profiles, workload, config, **kwargs)
        runs.append(stats)

    if args.json:
        payload = [stats.to_dict() for stats in runs]
        print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2))
    else:
        for stats in runs:
            print(f"\nscheduler={stats.scheduler} offered={stats.offered} "
                  f"completed={stats.completed} shed={stats.shed}")
            print(f"  latency ms: p50={stats.latency_p50_ms:.2f} "
                  f"p95={stats.latency_p95_ms:.2f} p99={stats.latency_p99_ms:.2f} "
                  f"mean={stats.latency_mean_ms:.2f} max={stats.latency_max_ms:.2f}")
            print(f"  slo {stats.slo_ms:g} ms: violations={stats.slo_violations} "
                  f"attainment={stats.slo_attainment:.4f}")
            print(f"  throughput={stats.throughput_rps:.1f} rps "
                  f"goodput={stats.goodput_rps:.1f} rps "
                  f"duration={stats.duration_ms / 1e3:.2f} s")
            if stats.shed_reasons:
                breakdown = " ".join(
                    f"{reason}={count}"
                    for reason, count in stats.shed_reasons.items()
                )
                print(f"  shed by reason: {breakdown}")
            if stats.energy:
                print(f"  energy: total={stats.energy.get('total_j', 0.0):.2f} J "
                      f"cost={stats.energy.get('cost_per_request_j', 0.0):.4f} "
                      f"J/request")
            if stats.autoscale:
                print(f"  autoscale: events={len(stats.autoscale.get('events', []))} "
                      f"peak={stats.autoscale.get('peak_devices')} "
                      f"final={stats.autoscale.get('final_devices')}")
            if len(stats.per_tenant) > 1:
                print(f"  {'tenant':12s} {'slo ms':>7s} {'offered':>8s} "
                      f"{'shed':>6s} {'p99 ms':>8s} {'attain':>7s} "
                      f"{'goodput':>7s} {'J/req':>8s}")
                for tenant in stats.per_tenant.values():
                    print(f"  {tenant.name:12s} {tenant.slo_ms:7g} "
                          f"{tenant.offered:8d} {tenant.shed:6d} "
                          f"{tenant.latency_p99_ms:8.2f} "
                          f"{tenant.slo_attainment:7.4f} "
                          f"{tenant.goodput_ratio:7.4f} "
                          f"{tenant.cost_per_request_j:8.4f}")
            print(f"  {'device':12s} {'platform':8s} {'util':>6s} {'reqs':>7s} "
                  f"{'batches':>7s} {'m.batch':>7s} {'shed':>6s}")
            for device in stats.devices:
                print(f"  {device.name:12s} {device.platform:8s} "
                      f"{device.utilization:6.3f} {device.requests:7d} "
                      f"{device.batches:7d} {device.mean_batch:7.2f} "
                      f"{device.shed:6d}")

    if args.report:
        from repro.serve.report import write_serve_report

        if scenario is not None:
            params = scenario.describe()
        else:
            params = {
                "networks": args.networks,
                "devices": args.devices,
                "arrival": args.arrival,
                "rps": args.rps,
                "requests": args.requests,
                "slo_ms": args.slo_ms,
                "max_batch": args.batch,
                "batch_timeout_ms": args.batch_timeout_ms,
                "max_queue": args.queue,
                "admission": args.admission,
                "seed": args.seed,
            }
        write_serve_report(args.report, runs, params, metrics=run_metrics)
        if not args.json:
            print(f"\nwrote {args.report}")
    return 0


def _trace_tracer(args: argparse.Namespace):
    from repro.obs import Tracer

    return Tracer(warps=not args.no_warps, max_events=args.max_events)


def _print_trace_outcome(args: argparse.Namespace, tracer, payload) -> None:
    if args.json:
        import json

        print(json.dumps(payload))
    else:
        dropped = f", {tracer.dropped} dropped" if tracer.dropped else ""
        print(f"wrote {args.output}: {len(tracer.spans)} spans, "
              f"{len(tracer.instants)} instants{dropped}")


def _cmd_trace_simulate(args: argparse.Namespace) -> int:
    from repro.obs import set_tracer, write_trace
    from repro.platforms import make_config
    from repro.runs import Executor, ResultStore, RunSpec

    names = args.networks or ["alexnet"]
    err = _check_networks(names)
    if err is not None:
        return err
    config = make_config(args.platform)
    options = _sim_options(args)
    store = None if args.no_cache else ResultStore(args.cache_dir)
    tracer = _trace_tracer(args)
    previous = set_tracer(tracer)
    try:
        executor = Executor(store)
        for name in names:
            # refresh=True: re-simulate even on a warm store so the
            # trace always contains live GPU spans.
            executor.run(RunSpec(name, config, options), refresh=True)
    finally:
        set_tracer(previous)
    payload = write_trace(tracer, args.output, meta={
        "command": "trace simulate",
        "networks": names,
        "platform": config.name,
        "scheduler": args.scheduler,
        "fidelity": "light" if _light_requested(args) else "default",
    })
    _print_trace_outcome(args, tracer, payload)
    return 0


def _cmd_trace_serve(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.obs import set_tracer, write_trace
    from repro.serve import run_serve

    tracer = _trace_tracer(args)
    previous = set_tracer(tracer)
    schedulers: list[str] = []
    scenario = None
    try:
        prep = _serve_prepare(args, quiet=True, refresh=True)
        if isinstance(prep, int):
            return prep
        fleet, profiles, workload, schedulers, base, scenario = prep
        if scenario is not None:
            run_serve(
                fleet, profiles, workload, base,
                pipeline=scenario.pipeline(),
                loop=args.loop or scenario.loop,
            )
        else:
            for name in schedulers:
                run_serve(
                    fleet, profiles, workload, replace(base, scheduler=name),
                    loop=args.loop,
                )
    finally:
        set_tracer(previous)
    payload = write_trace(tracer, args.output, meta={
        "command": "trace serve",
        "networks": ",".join(scenario.networks) if scenario else args.networks,
        "devices": scenario.fleet_spec if scenario else args.devices,
        "schedulers": ",".join(schedulers),
        "arrival": "scenario" if scenario else args.arrival,
    })
    _print_trace_outcome(args, tracer, payload)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.runs.store import cache_stats, clear_cache

    if args.action == "stats":
        stats = cache_stats(args.cache_dir)
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(f"cache dir: {stats['dir']}")
            print(f"entries:   {stats['entries']} "
                  f"({stats['kernel_entries']} kernel, {stats['run_entries']} run)")
            print(f"bytes:     {stats['bytes']}")
            print(f"engine:    {stats['engine_version']}")
            for engine, bucket in stats["by_engine"].items():
                stale = "" if engine == stats["engine_version"] else "  (stale)"
                print(f"  {engine}: {bucket['entries']} entries, "
                      f"{bucket['bytes']} bytes{stale}")
            dedup = stats["dedup"]
            if dedup["kernels_requested"]:
                print(f"dedup:     {dedup['kernels_simulated']} kernels "
                      f"simulated for {dedup['kernels_requested']} requested "
                      f"({dedup['replicated']} deduplicated)")
            if stats["legacy_tango_entries"]:
                print(f"legacy .tango_cache entries: "
                      f"{stats['legacy_tango_entries']} (run 'repro cache clear')")
    else:
        engine = getattr(args, "engine", None)
        removed = clear_cache(args.cache_dir, engine=engine)
        scope = f" for engine {engine}" if engine else ""
        print(f"removed {removed} cache file(s){scope}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import (
        CampaignError,
        compare_frontiers,
        format_campaign,
        format_compare,
        load_campaign,
        plan_campaign,
        run_campaign,
    )
    from repro.runs import ResultStore

    if args.action == "compare" and args.golden is None:
        print("error: campaign compare requires --golden PATH",
              file=sys.stderr)
        return 2
    try:
        spec = load_campaign(args.spec)
    except (CampaignError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "list":
        plan = plan_campaign(spec)
        if args.json:
            print(json.dumps({
                "campaign": spec.name,
                "description": spec.description,
                "mode": spec.mode,
                "axes": {axis: list(spec.axis(axis))
                         for axis in plan.points[0].axes()} if plan.points
                        else {},
                "points": plan.requested,
                "unique_runs": len(plan.specs),
                "deduped": plan.deduped,
                "objectives": list(spec.objective_labels()),
            }, indent=2))
        else:
            print(plan.describe())
            for axis, values in spec.axes.items():
                rendered = ", ".join("default" if v is None else str(v)
                                     for v in values)
                print(f"  {axis}: {rendered}")
            print(f"  objectives: {', '.join(spec.objective_labels())}")
        return 0

    store = None if args.no_cache else ResultStore(args.cache_dir)
    result = run_campaign(spec, store=store, jobs=args.jobs)

    if args.action == "run":
        if args.output is not None:
            Path(args.output).write_text(json.dumps(result.to_dict(), indent=2))
        if args.frontier_out is not None:
            Path(args.frontier_out).write_text(
                json.dumps(result.frontier_payload(), indent=2) + "\n")
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(format_campaign(result))
            print(result.summary())
        return 0 if result.ok else 1

    # compare: diff the just-computed frontier against the golden file.
    try:
        golden = json.loads(Path(args.golden).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read golden frontier {args.golden}: {exc}",
              file=sys.stderr)
        return 2
    report = compare_frontiers(
        golden, result.frontier_payload(), tolerance=args.tolerance
    )
    if args.json:
        print(json.dumps({
            "compare": report,
            "execution": result.report.to_dict(),
            "skipped": result.skipped,
        }, indent=2))
    else:
        for entry in result.skipped:
            print(f"[compare]   SKIPPED {entry['axes']}: {entry['error']}")
        print(format_compare(report))
    return 0 if report["ok"] and result.ok else 1


def _cmd_harness(args: argparse.Namespace) -> int:
    from repro.runs import PlanContext, build_plan
    from repro.runs.registry import all_experiments

    experiments = all_experiments()
    if args.action == "list":
        for exp_id, experiment in experiments.items():
            planned = len(experiment.plan(PlanContext()))
            runs = f"{planned} runs" if planned else "analytic"
            print(f"{exp_id:8s} {experiment.title} [{runs}]")
        return 0
    # action == "run"
    unknown = [exp_id for exp_id in args.experiments if exp_id not in experiments]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(experiments)}",
            file=sys.stderr,
        )
        return 2
    from repro.harness.suite import (
        DEFAULT_STORE,
        result_payload,
        run_all,
        write_json,
    )

    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir if args.cache_dir else DEFAULT_STORE
    results = run_all(
        ids=args.experiments or None,
        cache_dir=cache_dir,
        jobs=args.jobs,
        verbose=not args.json,
    )
    if args.chart and not args.json:
        from repro.harness.render import render_experiment

        for result in results:
            chart = render_experiment(result)
            if chart:
                print("\n" + chart)
    if args.json:
        import json

        print(json.dumps([result_payload(r) for r in results], indent=2))
    if args.json_dir:
        write_json(results, args.json_dir, verbose=not args.json)
    failed = [
        f"{r.exp_id}: {c.claim}" for r in results for c in r.checks if not c.passed
    ]
    if not args.json:
        print(f"\n{len(results)} experiments, "
              f"{sum(len(r.checks) for r in results)} checks, {len(failed)} failed")
        for line in failed:
            print(f"  FAIL {line}")
    return 1 if failed else 0


def _cmd_networks(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": name,
            "display_name": BENCHMARK_INFO[name].display_name,
            "kind": BENCHMARK_INFO[name].kind,
            "extension": name in EXTENSION_NETWORKS,
        }
        for name in NETWORK_ORDER + EXTENSION_NETWORKS
    ]
    if args.json:
        import json

        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            extra = " (extension)" if row["extension"] else ""
            print(f"{row['name']:12s} {row['display_name']} "
                  f"[{row['kind']}]{extra}")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.platforms import list_platforms, platform

    try:
        names = list_platforms(kind=args.kind)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = []
    for name in names:
        entry = platform(name)
        memory = entry.memory_budget()
        compute = entry.compute_budget()
        rows.append({
            "name": name,
            "display_name": entry.name,
            "kind": entry.kind,
            "tiles": memory.tiles,
            "tile_kb": memory.per_tile_bytes / 1024,
            "macs_per_cycle": compute.peak_macs_per_cycle,
            "clock_ghz": compute.clock_ghz,
            "peak_gmacs": compute.peak_gmacs_per_s,
            "dram_gb_per_s": memory.dram_gb_per_s,
        })
    if args.json:
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(f"{'name':10s} {'kind':5s} {'tiles':>5s} {'KB/tile':>8s} "
              f"{'MAC/cyc':>8s} {'GHz':>6s} {'GMAC/s':>8s} {'GB/s':>7s}")
        for row in rows:
            print(f"{row['name']:10s} {row['kind']:5s} {row['tiles']:5d} "
                  f"{row['tile_kb']:8.0f} {row['macs_per_cycle']:8d} "
                  f"{row['clock_ghz']:6.3f} {row['peak_gmacs']:8.1f} "
                  f"{row['dram_gb_per_s']:7.1f}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.mapping import MappingError, map_network
    from repro.platforms import make_config
    from repro.platforms.accel import AcceleratorConfig

    err = _check_networks([args.network])
    if err is not None:
        return err
    try:
        config = make_config(args.platform)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if not isinstance(config, AcceleratorConfig):
        print(f"error: {args.platform} is a GPU platform; the tiling "
              f"mapper targets fpga/npu platforms (see 'repro platforms')",
              file=sys.stderr)
        return 2
    try:
        plan = map_network(args.network, config)
    except MappingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(plan.to_dict(), indent=2))
    else:
        print(plan.describe())
    return 0


def _shared_parents() -> dict[str, argparse.ArgumentParser]:
    """Parent parsers for the flags that must behave identically across
    subcommands (one definition, shared help text)."""
    json_p = argparse.ArgumentParser(add_help=False)
    json_p.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON on stdout")
    jobs_p = argparse.ArgumentParser(add_help=False)
    jobs_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan fresh simulations out across N worker "
                             "processes (default: 1)")
    cache_dir_p = argparse.ArgumentParser(add_help=False)
    cache_dir_p.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="result-store directory (default: "
                                  "$REPRO_CACHE_DIR or .repro-cache)")
    no_cache_p = argparse.ArgumentParser(add_help=False)
    no_cache_p.add_argument("--no-cache", action="store_true",
                            help="skip the persistent result store")
    return {
        "json": json_p,
        "jobs": jobs_p,
        "cache_dir": cache_dir_p,
        "no_cache": no_cache_p,
    }


def _add_sim_args(sub_parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``simulate``, ``bench`` and ``trace simulate``."""
    sub_parser.add_argument("--platform", default="gp102",
                            help="platform model (default: gp102)")
    sub_parser.add_argument("--scheduler", default="gto",
                            choices=("gto", "lrr", "tlv"),
                            help="warp scheduler (default: gto)")
    sub_parser.add_argument("--engine", default=None,
                            choices=("seed", "fast", "vector"),
                            help="simulation engine (default: $REPRO_ENGINE "
                                 "or vector); all three are bit-identical")
    _add_fidelity_args(sub_parser)


def _add_fidelity_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--fidelity", default="default",
                            choices=("default", "light"),
                            help="simulation sampling fidelity: 'light' "
                                 "is fast for smoke tests but not "
                                 "comparable to default runs")
    sub_parser.add_argument("--light", action="store_true",
                            help="alias for --fidelity light")


def _add_serve_args(sub_parser: argparse.ArgumentParser) -> None:
    """Workload/fleet/policy arguments shared by ``serve`` and
    ``trace serve`` (store and output flags come from the parents)."""
    sub_parser.add_argument("--networks", default="alexnet,resnet",
                            metavar="A,B",
                            help="comma-separated networks to serve "
                                 "(default: alexnet,resnet; extensions like "
                                 "mobilenet are accepted)")
    sub_parser.add_argument("--devices", default="gp102:2,tx1", metavar="SPEC",
                            help="fleet spec, e.g. gp102:2,tx1 "
                                 "(default: gp102:2,tx1)")
    sub_parser.add_argument("--arrival", default="poisson",
                            choices=("poisson", "bursty", "trace", "closed"),
                            help="workload shape (default: poisson)")
    sub_parser.add_argument("--rps", type=float, default=100.0,
                            help="offered request rate for poisson/bursty "
                                 "(default: 100)")
    sub_parser.add_argument("--requests", type=int, default=10000, metavar="N",
                            help="number of requests (default: 10000)")
    sub_parser.add_argument("--slo-ms", type=float, default=50.0,
                            help="latency SLO in milliseconds (default: 50)")
    sub_parser.add_argument("--batch", type=int, default=8, metavar="B",
                            help="dynamic batcher max batch size (default: 8)")
    sub_parser.add_argument("--batch-timeout-ms", type=float, default=2.0,
                            help="max co-batching wait for a queued head "
                                 "request (default: 2)")
    sub_parser.add_argument("--queue", type=int, default=256, metavar="Q",
                            help="per-device admission queue bound; overflow "
                                 "is shed (default: 256)")
    sub_parser.add_argument("--scheduler", default="latency-aware",
                            metavar="NAME[,NAME]",
                            help="scheduling policies to run, comma-separated "
                                 "(round-robin, least-loaded, latency-aware; "
                                 "default: latency-aware)")
    sub_parser.add_argument("--admission", default="none",
                            choices=("none", "slo-aware"),
                            help="admission policy: 'slo-aware' sheds "
                                 "low-priority work under load and "
                                 "SLO-infeasible placements (default: none)")
    sub_parser.add_argument("--loop", default=None, choices=("fast", "heap"),
                            help="event loop: the slotted fast path or the "
                                 "reference heap; both are bit-identical "
                                 "(default: $REPRO_SERVE_LOOP or fast)")
    sub_parser.add_argument("--scenario", default=None, metavar="PATH",
                            help="TOML/JSON multi-tenant scenario file; "
                                 "overrides the workload/fleet/policy flags "
                                 "(see examples/day_in_the_life.toml)")
    sub_parser.add_argument("--seed", type=int, default=0,
                            help="workload/simulation seed (default: 0)")
    sub_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="JSON request log for --arrival trace")
    sub_parser.add_argument("--clients", type=int, default=32,
                            help="closed-loop client count (default: 32)")
    sub_parser.add_argument("--think-ms", type=float, default=10.0,
                            help="closed-loop mean think time (default: 10)")
    sub_parser.add_argument("--burst-on-ms", type=float, default=100.0,
                            help="bursty: burst window length (default: 100)")
    sub_parser.add_argument("--burst-off-ms", type=float, default=400.0,
                            help="bursty: quiet window length (default: 400)")
    sub_parser.add_argument("--burst-off-factor", type=float, default=0.1,
                            help="bursty: quiet-window rate factor "
                                 "(default: 0.1)")
    sub_parser.add_argument("--sim-scheduler", default="gto",
                            choices=("gto", "lrr", "tlv"),
                            help="warp scheduler used when building latency "
                                 "profiles (default: gto)")
    _add_fidelity_args(sub_parser)


def _add_trace_args(
    sub_parser: argparse.ArgumentParser, default_output: str
) -> None:
    """Output/volume arguments shared by the ``trace`` subcommands."""
    sub_parser.add_argument("--output", default=default_output, metavar="PATH",
                            help=f"Chrome-trace JSON artifact path "
                                 f"(default: {default_output})")
    sub_parser.add_argument("--no-warps", action="store_true",
                            help="skip per-warp stall-phase spans (much "
                                 "smaller traces)")
    sub_parser.add_argument("--max-events", type=int, default=2_000_000,
                            metavar="N",
                            help="cap on recorded events; overflow is "
                                 "counted in otherData.dropped_events "
                                 "(default: 2000000)")


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p = _shared_parents()

    lint = sub.add_parser(
        "lint",
        parents=[p["json"]],
        help="statically verify the compiled kernels of suite networks",
        description="Run the static kernel-IR verifier (def-use, address "
        "intervals, shared-memory races, lints) over compiled networks.",
    )
    lint.add_argument("networks", nargs="*",
                      help="network names (default: the paper's seven)")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as failures too")
    lint.add_argument("--netflow", action="store_true",
                      help="run the whole-network inter-kernel dataflow "
                           "verifier instead of the per-kernel passes")
    lint.add_argument("--quiet", action="store_true",
                      help="hide note-severity diagnostics in text output")
    lint.set_defaults(func=_cmd_lint)

    simulate = sub.add_parser(
        "simulate",
        parents=[p["json"], p["jobs"], p["cache_dir"], p["no_cache"]],
        help="run whole-network GPU simulations (cached, parallelizable)",
        description="Simulate suite networks on a platform model, using "
        "the persistent cross-run kernel-result cache.",
    )
    simulate.add_argument("networks", nargs="*",
                          help="network names (default: the paper's seven)")
    _add_sim_args(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    bench = sub.add_parser(
        "bench",
        parents=[p["json"], p["cache_dir"]],
        help="time cold vs warm-cache simulations (writes BENCH_sim.json)",
        description="Benchmark the simulation engine per network and emit "
        "a JSON timing report.",
    )
    bench.add_argument("networks", nargs="*",
                       help="network names (default: the paper's seven)")
    _add_sim_args(bench)
    bench.add_argument("--output", default="BENCH_sim.json", metavar="PATH",
                       help="output JSON path (default: BENCH_sim.json)")
    bench.add_argument("--runs", type=int, default=None, metavar="N",
                       help="timed runs per measurement; all samples are "
                            "kept for statistics (default: 1; use >= 5 "
                            "for significance testing)")
    bench.add_argument("--repeats", type=int, default=1, metavar="N",
                       help="deprecated alias for --runs")
    bench.add_argument("--compare", default=None, metavar="PATH",
                       help="compare against a baseline bench JSON and "
                            "exit 1 on a statistically significant "
                            "slowdown (same-machine baselines only)")
    bench.add_argument("--threshold", type=float, default=1.10,
                       metavar="RATIO",
                       help="mean-ratio floor a slowdown must exceed to "
                            "count as a regression (default: 1.10)")
    bench.add_argument("--alpha", type=float, default=0.05, metavar="P",
                       help="significance level for the Mann-Whitney "
                            "test (default: 0.05)")
    bench.add_argument("--serve", action="store_true",
                       help="benchmark the serving event loops on a "
                            "synthetic fleet instead of the simulator "
                            "(writes BENCH_serve.json; networks and "
                            "simulator flags are ignored)")
    bench.add_argument("--gate", action="store_true",
                       help="with --serve: fail if the fast loop is "
                            "statistically significantly slower than the "
                            "reference heap loop")
    bench.add_argument("--serve-requests", type=int,
                       default=SERVE_BENCH_REQUESTS, metavar="N",
                       help="with --serve: offered requests per timed run "
                            f"(default: {SERVE_BENCH_REQUESTS})")
    bench.add_argument("--serve-devices", type=int,
                       default=SERVE_BENCH_DEVICES, metavar="N",
                       help="with --serve: synthetic fleet size "
                            f"(default: {SERVE_BENCH_DEVICES})")
    bench.add_argument("--seed", action="store_true",
                       help="also time the frozen reference engine")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        parents=[p["json"], p["jobs"], p["cache_dir"], p["no_cache"]],
        help="simulate inference serving over a fleet of devices",
        description="Discrete-event serving simulation: per-(network, "
        "device) latency profiles from the GPU simulator (cached), a "
        "generated or replayed request stream, dynamic batching, "
        "bounded queues and pluggable schedulers.",
    )
    _add_serve_args(serve)
    serve.add_argument("--report", default=None, metavar="PATH",
                       help="also write a markdown report to PATH")
    serve.set_defaults(func=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="record a Chrome-trace (Perfetto) JSON of a run",
        description="Record spans and metrics through the GPU, "
        "run-orchestration and serving layers (repro.obs) and write "
        "Chrome-trace-event JSON, loadable in https://ui.perfetto.dev.",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_sim = trace_sub.add_parser(
        "simulate",
        parents=[p["json"], p["cache_dir"], p["no_cache"]],
        help="trace whole-network GPU simulations",
        description="Re-simulate the named networks (cache refreshed, "
        "never read) with the tracer installed and write the trace.",
    )
    trace_sim.add_argument("networks", nargs="*",
                           help="network names (default: alexnet)")
    _add_sim_args(trace_sim)
    _add_trace_args(trace_sim, "trace-simulate.json")
    trace_sim.set_defaults(func=_cmd_trace_simulate)
    trace_serve = trace_sub.add_parser(
        "serve",
        parents=[p["json"], p["cache_dir"], p["no_cache"]],
        help="trace an inference-serving run",
        description="Run the serving simulator (same options as 'repro "
        "serve') with the tracer installed — profile building included, "
        "so GPU and executor spans appear too — and write the trace.",
    )
    _add_serve_args(trace_serve)
    _add_trace_args(trace_serve, "trace-serve.json")
    trace_serve.set_defaults(func=_cmd_trace_serve)

    harness = sub.add_parser(
        "harness",
        parents=[p["json"], p["jobs"], p["cache_dir"], p["no_cache"]],
        help="plan and run the paper-experiment harness",
        description="List the registered table/figure experiments or "
        "run a selection: plan the minimal simulation matrix, execute "
        "it against the unified result store, aggregate each "
        "experiment's series and evaluate the paper-claim checks.",
    )
    harness.add_argument("action", choices=("list", "run"),
                         help="list experiments, or run a selection")
    harness.add_argument("experiments", nargs="*", metavar="EXP",
                         help="experiment ids for 'run' (default: all)")
    harness.add_argument("--json-dir", metavar="DIR", default=None,
                         help="write each experiment's series/checks as "
                              "JSON under DIR")
    harness.add_argument("--chart", action="store_true",
                         help="render series as terminal bar charts")
    harness.set_defaults(func=_cmd_harness)

    campaign = sub.add_parser(
        "campaign",
        parents=[p["json"], p["jobs"], p["cache_dir"], p["no_cache"]],
        help="run declarative design-space-exploration campaigns",
        description="Expand a declarative campaign spec (TOML/JSON) over "
        "its sweep axes, execute the deduplicated run matrix through the "
        "unified result store, aggregate per-axis QoR tables and the "
        "Pareto frontier, and optionally gate against a committed golden "
        "frontier.",
    )
    campaign.add_argument("action", choices=("run", "compare", "list"),
                          help="run the campaign, compare its frontier "
                               "against a golden file, or just expand "
                               "and count")
    campaign.add_argument("spec", metavar="SPEC",
                          help="campaign spec path (.toml or .json)")
    campaign.add_argument("--output", default=None, metavar="PATH",
                          help="run: also write the full campaign result "
                               "JSON to PATH")
    campaign.add_argument("--frontier-out", default=None, metavar="PATH",
                          help="run: write the frontier as golden-frontier "
                               "JSON to PATH (commit it to gate CI)")
    campaign.add_argument("--golden", default=None, metavar="PATH",
                          help="compare: committed golden frontier JSON "
                               "to diff against (required)")
    campaign.add_argument("--tolerance", type=float, default=None,
                          metavar="T",
                          help="compare: relative per-objective tolerance "
                               "(default: the golden file's own)")
    campaign.set_defaults(func=_cmd_campaign)

    cache = sub.add_parser(
        "cache",
        parents=[p["json"], p["cache_dir"]],
        help="inspect or clear the unified result store",
        description="Summarize (stats) or empty (clear) the cross-run "
        "result store shared by simulate/bench/serve/harness: kernel "
        "entries plus whole-network run entries.",
    )
    cache.add_argument("action", choices=("stats", "clear"),
                       help="what to do with the cache")
    cache.add_argument("--engine", default=None, metavar="VER",
                       help="clear only entries written by this engine "
                       "version (see 'cache stats' for versions present)")
    cache.set_defaults(func=_cmd_cache)

    networks = sub.add_parser(
        "networks",
        parents=[p["json"]],
        help="list the benchmark suite",
    )
    networks.set_defaults(func=_cmd_networks)

    platforms = sub.add_parser(
        "platforms",
        parents=[p["json"]],
        help="list registered platforms and their capability budgets",
        description="Enumerate the platform registry (GPU, FPGA and NPU "
        "backends) with each device's memory and compute budgets.",
    )
    platforms.add_argument("--kind", default=None,
                           help="filter by device kind (gpu, fpga, npu)")
    platforms.set_defaults(func=_cmd_platforms)

    map_cmd = sub.add_parser(
        "map",
        parents=[p["json"]],
        help="show the tiling mapper's plan for a network on a device",
        description="Run the compile-time tiling/partitioning mapper and "
        "print the per-layer plan (strategy, tiles, footprints, "
        "utilization).",
    )
    map_cmd.add_argument("network", help="suite network name")
    map_cmd.add_argument("--platform", default="s2npu",
                         help="accelerator platform (default: s2npu)")
    map_cmd.set_defaults(func=_cmd_map)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
