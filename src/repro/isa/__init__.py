"""PTX-like instruction set used by the Tango kernel models.

The paper's benchmark suite is written in CUDA C; when compiled, each
kernel becomes a stream of PTX instructions.  Tango's instruction-level
characterization (Figures 8-10) reports statistics over exactly that
stream: opcodes such as ``add``/``mad``/``shl`` and data types such as
``f32``/``u32``/``u16``.

This package defines the reduced PTX-like ISA that the kernel builders in
:mod:`repro.kernels` target and the GPU simulator in :mod:`repro.gpu`
executes:

* :mod:`repro.isa.dtypes` -- operand data types (``f32``, ``u32``, ...).
* :mod:`repro.isa.opcodes` -- the opcode set of Figure 8 plus pipeline
  classification (SP / SFU / LDST / control).
* :mod:`repro.isa.registers` -- virtual register file and allocator.
* :mod:`repro.isa.instruction` -- the :class:`Instruction` record.
* :mod:`repro.isa.program` -- structured thread programs (straight-line
  code and counted loops) plus loop-trip sampling expansion.
"""

from repro.isa.dtypes import DType
from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op, Pipe, op_pipe
from repro.isa.program import Loop, Program, expand_program
from repro.isa.registers import RegisterAllocator, Reg

__all__ = [
    "DType",
    "Instruction",
    "Loop",
    "MemSpace",
    "Op",
    "Pipe",
    "Program",
    "Reg",
    "RegisterAllocator",
    "expand_program",
    "op_pipe",
]
