"""Structured thread programs and sampled loop expansion.

A thread program is the code one CUDA thread executes: straight-line
:class:`~repro.isa.instruction.Instruction` items interleaved with
counted :class:`Loop` nodes (the reduction loops of convolution,
fully-connected and recurrent layers).

The timing simulator does not interpret the loop structure directly;
:func:`expand_program` flattens a program into a linear list of
:class:`ExpandedInstr` records.  Because fully unrolling the reduction
loop of, say, a 3x3x512 convolution would produce millions of records per
kernel, expansion supports *loop-trip sampling* (SMARTS-style periodic
sampling): only ``max_trips`` iterations are materialized, chosen as a
few contiguous chunks spread across the iteration space (contiguity
preserves the spatial locality of neighbouring filter taps; spreading
preserves coverage of the address range), and every sampled record
carries a ``weight`` equal to the number of real iterations it stands
for.  All simulator counters are accumulated weighted, so totals such as
instruction counts and L2 misses (Figures 8-9, 13) estimate the unsampled
run.  DESIGN.md section 6 documents the methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op, Pipe, op_latency, op_pipe

#: Number of contiguous chunks used when sampling a loop's trip space.
#: Two long chunks rather than many short ones: streaming loops touch a
#: 128-byte line once per 32 consecutive 4-byte iterations, so chunks
#: must be >= a line's worth of iterations to preserve the real
#: miss-per-iteration rate (the default 64-trip budget gives two
#: 32-iteration chunks).
_SAMPLE_CHUNKS = 2


@dataclass(frozen=True, slots=True)
class Loop:
    """A counted loop with a known trip count.

    Attributes:
        var: Name of the loop variable; address expressions inside the
            body may reference it (e.g. the collapsed ``(c, kh, kw)``
            reduction index of a convolution).
        trips: Total number of iterations the real kernel executes.
        body: Loop body, a sequence of instructions and nested loops.
    """

    var: str
    trips: int
    body: tuple["ProgramItem", ...]

    def __post_init__(self) -> None:
        if self.trips < 0:
            raise ValueError(f"loop {self.var!r} has negative trip count")


ProgramItem = Union[Instruction, Loop]


@dataclass
class Program:
    """A complete thread program plus its register metadata.

    Attributes:
        items: Top-level instructions and loops, in program order.
        reg_count: Registers the kernel allocates per thread (Table III).
        entry_regs: Registers live on entry (thread/block ids, parameter
            pointers); the simulator seeds the scoreboard with these.
    """

    items: tuple[ProgramItem, ...]
    reg_count: int = 0
    entry_regs: tuple = ()

    def static_count(self) -> int:
        """Number of static instructions (loop bodies counted once)."""

        def count(items: tuple[ProgramItem, ...]) -> int:
            total = 0
            for item in items:
                if isinstance(item, Loop):
                    total += count(item.body)
                else:
                    total += 1
            return total

        return count(self.items)

    def dynamic_count(self) -> int:
        """Exact dynamic instruction count of the unsampled program."""

        def count(items: tuple[ProgramItem, ...]) -> int:
            total = 0
            for item in items:
                if isinstance(item, Loop):
                    total += item.trips * count(item.body)
                else:
                    total += 1
            return total

        return count(self.items)


class ExpandedInstr:
    """One dynamic instruction record, pre-digested for the simulator.

    Fields are plain attributes (not properties) because the simulator
    touches millions of these in its inner loop.
    """

    __slots__ = (
        "op",
        "pipe",
        "dtype",
        "latency",
        "dst",
        "srcs",
        "is_mem",
        "is_load",
        "space",
        "addr",
        "width_bytes",
        "weight",
        "loop_env",
    )

    def __init__(self, instr: Instruction, weight: float, loop_env: dict[str, int]):
        self.op: Op = instr.op
        self.pipe: Pipe = op_pipe(instr.op)
        self.dtype = instr.dtype
        self.latency = op_latency(instr.op)
        self.dst = instr.dst
        self.srcs = instr.srcs
        self.is_mem = instr.is_mem
        self.is_load = instr.op is Op.LD
        self.space: MemSpace | None = instr.space
        self.addr = instr.addr
        self.width_bytes = instr.width_bytes
        self.weight = weight
        self.loop_env = loop_env

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExpandedInstr {self.op.value} w={self.weight:g} env={self.loop_env}>"


def sample_trips(trips: int, max_trips: int | None) -> list[tuple[int, float]]:
    """Choose which iterations of a ``trips``-long loop to materialize.

    Returns ``(iteration_index, weight)`` pairs.  When the loop fits in
    the budget every iteration is returned with weight 1.  Otherwise
    ``max_trips`` iterations are selected as up to ``_SAMPLE_CHUNKS``
    contiguous chunks evenly spread over ``[0, trips)`` and each carries
    weight ``trips / max_trips`` so that weighted totals are unbiased.
    """
    if max_trips is None or trips <= max_trips:
        return [(i, 1.0) for i in range(trips)]
    if max_trips <= 0:
        raise ValueError("max_trips must be positive")
    weight = trips / max_trips
    chunks = min(_SAMPLE_CHUNKS, max_trips)
    base, extra = divmod(max_trips, chunks)
    picked: list[tuple[int, float]] = []
    taken = 0
    for chunk in range(chunks):
        size = base + (1 if chunk < extra else 0)
        # Spread chunk starts so chunks cover the whole range without
        # overlapping:  start of chunk k is at k/chunks of the free space.
        start = round(chunk * (trips - max_trips) / max(1, chunks - 1)) + taken if chunks > 1 else 0
        start = min(start, trips - (max_trips - taken))
        for i in range(start, start + size):
            picked.append((i, weight))
        taken += size
    return picked


def _contains_loop(items: tuple[ProgramItem, ...]) -> bool:
    return any(isinstance(item, Loop) for item in items)


def expand_program(
    program: Program,
    max_trips: int | None = None,
    max_outer_trips: int | None = None,
) -> list[ExpandedInstr]:
    """Flatten *program* into dynamic instruction records.

    Loops longer than their budget are sampled (see :func:`sample_trips`);
    weights multiply across nested loops so the weighted record count
    estimates :meth:`Program.dynamic_count`.  Outer loops (those
    containing another loop) use ``max_outer_trips`` so a sampled nest
    stays small; inner loops use ``max_trips``.
    """
    if max_outer_trips is None:
        max_outer_trips = max_trips
    out: list[ExpandedInstr] = []

    def walk(items: tuple[ProgramItem, ...], weight: float, env: dict[str, int]) -> None:
        for item in items:
            if isinstance(item, Loop):
                if item.trips == 0:
                    # A zero-trip loop contributes no dynamic records;
                    # repro.analysis flags it (code ``zero-trip-loop``)
                    # because a builder almost never means to emit dead
                    # code, but expansion itself must stay total.
                    continue
                budget = max_outer_trips if _contains_loop(item.body) else max_trips
                for index, trip_weight in sample_trips(item.trips, budget):
                    inner = dict(env)
                    inner[item.var] = index
                    walk(item.body, weight * trip_weight, inner)
            else:
                out.append(ExpandedInstr(item, weight, env))

    walk(program.items, 1.0, {})
    return out


@dataclass
class LivenessResult:
    """Result of the liveness analysis over a program."""

    max_live: int
    entry_live: int = 0


def max_live_registers(program: Program) -> LivenessResult:
    """Compute the maximum number of simultaneously-live registers.

    A backward pass over the straight-line expansion (loops walked once,
    which is exact for loop-carried values because the loop body repeats)
    marks, for each register, the span between its first definition and
    last use; the maximum overlap is the live high-water mark reported in
    the paper's Figure 12 as ``Max Live Registers``.
    """
    linear: list[Instruction] = []

    def walk(items: tuple[ProgramItem, ...]) -> None:
        for item in items:
            if isinstance(item, Loop):
                # Walk the body twice so loop-carried values (defined in
                # iteration i, read in i+1) are seen as live across the
                # body.
                walk(item.body)
                walk(item.body)
            else:
                linear.append(item)

    walk(program.items)

    first_def: dict[int, int] = {}
    last_use: dict[int, int] = {}
    for reg in program.entry_regs:
        first_def[reg.index] = 0
    for pos, instr in enumerate(linear):
        for src in instr.srcs:
            last_use[src.index] = pos
            first_def.setdefault(src.index, 0)
        if instr.dst is not None:
            first_def.setdefault(instr.dst.index, pos)
            last_use.setdefault(instr.dst.index, pos)

    events: list[tuple[int, int]] = []
    for reg_index, start in first_def.items():
        end = last_use.get(reg_index, start)
        events.append((start, 1))
        events.append((end + 1, -1))
    events.sort()
    live = 0
    max_live = 0
    for _, delta in events:
        live += delta
        max_live = max(max_live, live)
    return LivenessResult(max_live=max_live, entry_live=len(program.entry_regs))
