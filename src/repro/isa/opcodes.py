"""Opcode set and pipeline classification.

The opcode list is taken verbatim from the legend of Figure 8 of the
paper ("Operation Type Breakdown"), which enumerates every PTX opcode
observed while running the seven networks: ``abs``, ``add``, ``and``,
``bar``, ``bra``, ``callp``, ``cvt``, ``ex2``, ``exit``, ``ld``, ``mad``,
``mad24``, ``max``, ``min``, ``mov``, ``mul``, ``nop``, ``or``, ``rcp``,
``retp``, ``rsqrt``, ``set``, ``shl``, ``shr``, ``ssy``, ``st``, ``xor``.

Each opcode is classified onto an execution pipeline, which the simulator
uses for issue-port contention (``pipe_busy`` stalls in Figure 7) and
which the power model uses to split SP/SFU/FPU energy (Figure 5):

* ``SP``   -- simple integer/float ALU operations.
* ``FPU``  -- floating-point multiply-add class operations.
* ``SFU``  -- special-function unit (reciprocal, rsqrt, exp2).
* ``LDST`` -- memory loads and stores.
* ``CTRL`` -- control flow, synchronization and no-ops.
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """PTX-like opcode, one per entry of the paper's Figure 8 legend."""

    ABS = "abs"
    ADD = "add"
    AND = "and"
    BAR = "bar"
    BRA = "bra"
    CALLP = "callp"
    CVT = "cvt"
    EX2 = "ex2"
    EXIT = "exit"
    LD = "ld"
    MAD = "mad"
    MAD24 = "mad24"
    MAX = "max"
    MIN = "min"
    MOV = "mov"
    MUL = "mul"
    NOP = "nop"
    OR = "or"
    RCP = "rcp"
    RETP = "retp"
    RSQRT = "rsqrt"
    SET = "set"
    SHL = "shl"
    SHR = "shr"
    SSY = "ssy"
    ST = "st"
    XOR = "xor"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Pipe(enum.Enum):
    """Execution pipeline an opcode issues to."""

    SP = "sp"
    FPU = "fpu"
    SFU = "sfu"
    LDST = "ldst"
    CTRL = "ctrl"


_PIPE_OF: dict[Op, Pipe] = {
    Op.ABS: Pipe.SP,
    Op.ADD: Pipe.SP,
    Op.AND: Pipe.SP,
    Op.BAR: Pipe.CTRL,
    Op.BRA: Pipe.CTRL,
    Op.CALLP: Pipe.CTRL,
    Op.CVT: Pipe.SP,
    Op.EX2: Pipe.SFU,
    Op.EXIT: Pipe.CTRL,
    Op.LD: Pipe.LDST,
    Op.MAD: Pipe.FPU,
    Op.MAD24: Pipe.SP,
    Op.MAX: Pipe.SP,
    Op.MIN: Pipe.SP,
    Op.MOV: Pipe.SP,
    Op.MUL: Pipe.FPU,
    Op.NOP: Pipe.CTRL,
    Op.OR: Pipe.SP,
    Op.RCP: Pipe.SFU,
    Op.RETP: Pipe.CTRL,
    Op.RSQRT: Pipe.SFU,
    Op.SET: Pipe.SP,
    Op.SHL: Pipe.SP,
    Op.SHR: Pipe.SP,
    Op.SSY: Pipe.CTRL,
    Op.ST: Pipe.LDST,
    Op.XOR: Pipe.SP,
}

#: Default execution latency, in cycles, per opcode class.  Values follow
#: the GPGPU-Sim Pascal configuration order of magnitude: simple ALU ops
#: complete in a handful of cycles, FPU multiply-add slightly more, SFU
#: transcendentals take tens of cycles.  Memory latency is decided by the
#: cache hierarchy, not this table.
_LATENCY_OF: dict[Pipe, int] = {
    Pipe.SP: 4,
    Pipe.FPU: 6,
    Pipe.SFU: 20,
    Pipe.LDST: 0,  # resolved by the memory hierarchy
    Pipe.CTRL: 1,
}


def op_pipe(op: Op) -> Pipe:
    """Return the execution pipeline *op* issues to."""
    return _PIPE_OF[op]


def op_latency(op: Op) -> int:
    """Return the default result latency of *op*, in cycles.

    Loads and stores return 0 here; their latency is produced by the
    memory hierarchy at simulation time.
    """
    return _LATENCY_OF[_PIPE_OF[op]]


#: Opcodes whose result a dependent instruction waits on via the
#: scoreboard.  Control-flow opcodes produce no register result.
RESULT_PRODUCING_PIPES = (Pipe.SP, Pipe.FPU, Pipe.SFU, Pipe.LDST)
