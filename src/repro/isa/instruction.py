"""The instruction record executed by the GPU timing simulator.

An :class:`Instruction` is one static PTX-like operation inside a thread
program: opcode, data type, destination/source virtual registers, and —
for loads and stores — the memory space plus a symbolic address
expression that the simulator evaluates per warp to a vector of 32 lane
addresses (see :mod:`repro.kernels.addressing`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.isa.dtypes import DType
from repro.isa.opcodes import Op


class MemSpace(enum.Enum):
    """Memory space of a load/store, as in PTX ``ld.<space>``.

    The space determines which storage the access exercises: ``GLOBAL``
    goes through L1D/L2/DRAM, ``SHARED`` hits the per-SM scratchpad,
    ``CONST`` hits the constant cache (and produces the paper's
    ``constant_memory_dependency`` stalls on a miss), ``PARAM`` reads the
    kernel parameter bank, and ``LOCAL`` behaves like global memory.
    """

    GLOBAL = "global"
    SHARED = "shared"
    CONST = "const"
    PARAM = "param"
    LOCAL = "local"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction of a thread program.

    Attributes:
        op: Opcode (one of the paper's Figure 8 opcodes).
        dtype: Data type, as reported in the paper's Figure 10.
        dst: Destination register, or ``None`` for stores/control flow.
        srcs: Source registers the instruction reads.
        space: Memory space for ``ld``/``st``; ``None`` otherwise.
        addr: Symbolic address expression (``repro.kernels.addressing``)
            for ``ld``/``st`` on global/local memory; ``None`` otherwise.
        width_bytes: Access width per lane for memory operations.
    """

    op: Op
    dtype: DType = DType.NONE
    dst: Any = None
    srcs: tuple = ()
    space: MemSpace | None = None
    addr: Any = None
    width_bytes: int = 4

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.op in (Op.LD, Op.ST)

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.op is Op.LD

    def describe(self) -> str:
        """PTX-like rendering, e.g. ``ld.global.f32 r3, [0x40000000 + 4*lin_tid]``.

        Lint diagnostics and debugging output embed this; memory
        operations render their symbolic address in brackets (with a
        ``.vN`` vector suffix for multi-element accesses).
        """
        parts = [self.op.value]
        if self.space is not None:
            parts.append(self.space.value)
        if self.is_mem and self.width_bytes not in (0, 4):
            lanes = max(1, self.width_bytes // 4)
            if lanes > 1:
                parts.append(f"v{lanes}")
        if self.dtype is not DType.NONE:
            parts.append(self.dtype.value)
        head = ".".join(parts)
        ops = []
        if self.dst is not None:
            ops.append(str(self.dst))
        ops.extend(str(s) for s in self.srcs)
        if self.is_mem:
            addr = self.addr.describe() if hasattr(self.addr, "describe") else "implicit"
            ops.append(f"[{addr}]")
        return f"{head} {', '.join(ops)}".strip()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def __repr__(self) -> str:
        return f"<Instruction {self.describe()}>"
