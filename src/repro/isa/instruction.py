"""The instruction record executed by the GPU timing simulator.

An :class:`Instruction` is one static PTX-like operation inside a thread
program: opcode, data type, destination/source virtual registers, and —
for loads and stores — the memory space plus a symbolic address
expression that the simulator evaluates per warp to a vector of 32 lane
addresses (see :mod:`repro.kernels.addressing`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.isa.dtypes import DType
from repro.isa.opcodes import Op


class MemSpace(enum.Enum):
    """Memory space of a load/store, as in PTX ``ld.<space>``.

    The space determines which storage the access exercises: ``GLOBAL``
    goes through L1D/L2/DRAM, ``SHARED`` hits the per-SM scratchpad,
    ``CONST`` hits the constant cache (and produces the paper's
    ``constant_memory_dependency`` stalls on a miss), ``PARAM`` reads the
    kernel parameter bank, and ``LOCAL`` behaves like global memory.
    """

    GLOBAL = "global"
    SHARED = "shared"
    CONST = "const"
    PARAM = "param"
    LOCAL = "local"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction of a thread program.

    Attributes:
        op: Opcode (one of the paper's Figure 8 opcodes).
        dtype: Data type, as reported in the paper's Figure 10.
        dst: Destination register, or ``None`` for stores/control flow.
        srcs: Source registers the instruction reads.
        space: Memory space for ``ld``/``st``; ``None`` otherwise.
        addr: Symbolic address expression (``repro.kernels.addressing``)
            for ``ld``/``st`` on global/local memory; ``None`` otherwise.
        width_bytes: Access width per lane for memory operations.
    """

    op: Op
    dtype: DType = DType.NONE
    dst: Any = None
    srcs: tuple = ()
    space: MemSpace | None = None
    addr: Any = None
    width_bytes: int = 4

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.op in (Op.LD, Op.ST)

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.op is Op.LD

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.op.value]
        if self.space is not None:
            parts.append(self.space.value)
        if self.dtype is not DType.NONE:
            parts.append(self.dtype.value)
        head = ".".join(parts)
        ops = []
        if self.dst is not None:
            ops.append(str(self.dst))
        ops.extend(str(s) for s in self.srcs)
        return f"{head} {', '.join(ops)}".strip()
