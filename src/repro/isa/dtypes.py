"""Operand data types of the Tango ISA.

Figure 10 of the paper breaks instructions down by data type: 32-bit
floats carry the neural-network arithmetic, while unsigned 32/16-bit and
signed 32/16-bit integers carry address and index arithmetic.  The paper
observes that even without quantization the integer types dominate
(Observation 8), because of index calculation and ReLU-zeroed data.
"""

from __future__ import annotations

import enum


class DType(enum.Enum):
    """Instruction data type, named exactly as in the paper's Figure 10."""

    F32 = "f32"
    U32 = "u32"
    U16 = "u16"
    S32 = "s32"
    S16 = "s16"
    PRED = "pred"
    NONE = "none"

    @property
    def bits(self) -> int:
        """Width of the type in bits (predicates count as 1)."""
        return _BITS[self]

    @property
    def is_float(self) -> bool:
        """True for floating-point types."""
        return self is DType.F32

    @property
    def is_integer(self) -> bool:
        """True for the integer index/address types."""
        return self in (DType.U32, DType.U16, DType.S32, DType.S16)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_BITS = {
    DType.F32: 32,
    DType.U32: 32,
    DType.U16: 16,
    DType.S32: 32,
    DType.S16: 16,
    DType.PRED: 1,
    DType.NONE: 0,
}
