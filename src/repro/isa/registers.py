"""Virtual registers and per-kernel register allocation.

The paper's Table III reports the per-thread register count of every
kernel (8-31 registers), and Figure 12 compares the *maximum allocated*
register-file footprint against the *maximum live* register count.  To
reproduce both, kernel builders allocate virtual registers through
:class:`RegisterAllocator`; the allocator records the high-water mark
(allocated registers, what the compiler would reserve) while a separate
liveness pass over the emitted program computes the live maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Reg:
    """A virtual register operand.

    Registers are identified by a small integer index; special
    pre-initialized registers (thread/block identifiers, parameter
    pointers) carry a descriptive name and are live on kernel entry.
    """

    index: int
    name: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"r{self.index}"


@dataclass
class RegisterAllocator:
    """Allocates virtual registers for one kernel's thread program.

    ``fresh()`` hands out a new register; ``special()`` hands out a named
    register that is considered ready at kernel start (e.g. ``%tid.x``).
    ``count`` is the total number of registers the kernel uses, which maps
    to Table III's ``regs`` column.
    """

    _next: int = 0
    _specials: dict[str, Reg] = field(default_factory=dict)

    def fresh(self, name: str = "") -> Reg:
        """Allocate and return a new virtual register."""
        reg = Reg(self._next, name)
        self._next += 1
        return reg

    def special(self, name: str) -> Reg:
        """Return the named special register, allocating it on first use.

        Special registers (thread id, block id, parameter base pointers)
        are ready at kernel entry; the simulator seeds the scoreboard with
        them.
        """
        if name not in self._specials:
            self._specials[name] = self.fresh(name)
        return self._specials[name]

    @property
    def count(self) -> int:
        """Total registers allocated (the compiler's reservation)."""
        return self._next

    @property
    def specials(self) -> tuple[Reg, ...]:
        """All special (entry-live) registers allocated so far."""
        return tuple(self._specials.values())
