"""Profiling containers and profiler front-ends.

* :mod:`repro.profiling.stall` -- the nvprof stall-reason taxonomy of the
  paper's Figure 7.
* :mod:`repro.profiling.stats` -- weighted counter containers produced by
  the simulator, per kernel and aggregated per layer type / network.
* :mod:`repro.profiling.nvprof` -- an nvprof-like front-end reporting
  stall breakdowns on a chosen platform.
* :mod:`repro.profiling.memfootprint` -- device-memory footprint
  analysis (Figure 11).
"""

from repro.profiling.stall import StallReason
from repro.profiling.stats import KernelStats

__all__ = ["KernelStats", "StallReason"]
