"""nvprof-like stall profiler (Figure 7's measurement front-end).

The paper collects stall-cycle breakdowns by running nvprof on a GK210.
This module provides the same view over the simulator: per-layer-type
and per-network stall-reason fractions for any platform configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.simulator import NetworkResult, simulate_network
from repro.profiling.stall import FIGURE7_ORDER, StallReason


@dataclass(frozen=True)
class StallProfile:
    """Stall-reason fractions for one profiling scope (layer or net)."""

    scope: str
    fractions: dict[StallReason, float]

    def fraction(self, reason: StallReason) -> float:
        """Share of stall cycles attributed to *reason*."""
        return self.fractions.get(reason, 0.0)

    def top_reason(self) -> StallReason:
        """The dominant stall reason."""
        return max(self.fractions, key=lambda r: self.fractions[r])


def profile_network(
    name: str, config: GpuConfig, options: SimOptions | None = None
) -> tuple[list[StallProfile], StallProfile]:
    """Profile one network: per-layer-type profiles plus the summary.

    Returns ``(per_category, whole_network)`` where categories appear in
    kernel invocation order, as the paper's Figure 7 lays them out.
    """
    result = simulate_network(name, config, options)
    return profiles_from_result(result)


def profiles_from_result(result: NetworkResult) -> tuple[list[StallProfile], StallProfile]:
    """Build stall profiles from an existing simulation result."""
    per_category: list[StallProfile] = []
    for category, stats in result.stats_by_category().items():
        fractions = stats.stall_fractions()
        if fractions:
            per_category.append(StallProfile(category, fractions))
    summary = StallProfile(result.network, result.aggregate().stall_fractions())
    return per_category, summary


def format_profile(profile: StallProfile) -> str:
    """One-line rendering in Figure 7 legend order."""
    parts = [
        f"{reason.value}={profile.fractions.get(reason, 0.0) * 100:5.1f}%"
        for reason in FIGURE7_ORDER
        if profile.fractions.get(reason, 0.0) >= 0.005
    ]
    return f"{profile.scope:16s} " + "  ".join(parts)
