"""The nvprof stall-reason taxonomy (Figure 7 legend).

The paper collects stall cycles with nvprof on a GK210 and breaks them
into: ``not_selected``, ``memory_throttle``,
``constant_memory_dependency``, ``pipe_busy``, ``other``, ``sync``,
``texture``, ``memory_dependency``, ``exec_dependency`` and
``inst_fetch``.  The simulator attributes every non-issue warp-cycle to
one of these.
"""

from __future__ import annotations

import enum


class StallReason(enum.Enum):
    """Why a resident warp did not issue in a given cycle."""

    INST_FETCH = "inst_fetch"
    EXEC_DEPENDENCY = "exec_dependency"
    MEMORY_DEPENDENCY = "memory_dependency"
    TEXTURE = "texture"
    SYNC = "sync"
    OTHER = "other"
    PIPE_BUSY = "pipe_busy"
    CONSTANT_MEMORY_DEPENDENCY = "constant_memory_dependency"
    MEMORY_THROTTLE = "memory_throttle"
    NOT_SELECTED = "not_selected"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Plot/legend order used by the paper's Figure 7 (bottom to top).
FIGURE7_ORDER = (
    StallReason.INST_FETCH,
    StallReason.EXEC_DEPENDENCY,
    StallReason.MEMORY_DEPENDENCY,
    StallReason.TEXTURE,
    StallReason.SYNC,
    StallReason.OTHER,
    StallReason.PIPE_BUSY,
    StallReason.CONSTANT_MEMORY_DEPENDENCY,
    StallReason.MEMORY_THROTTLE,
    StallReason.NOT_SELECTED,
)
