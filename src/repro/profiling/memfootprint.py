"""Device-memory footprint analysis (Figure 11, measured on TX1).

The paper measures the maximum device memory in use while executing all
layers of each network with nvprof on the TX1.  In Tango's allocation
scheme the whole pre-trained model (every per-layer weight file) plus
the live activations reside on the device, so the maximum footprint is
model weights + the largest concurrent activation working set — which is
why the measured footprint tracks pre-trained model size (Observation 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import INPUT, NetworkGraph
from repro.core.suite import get_network


@dataclass(frozen=True)
class FootprintReport:
    """Device-memory usage of one network.

    The whole pre-trained model (every per-layer weight file) resides on
    the device for the full run, while layer activations are freed once
    consumed, so the maximum in-use footprint is weights plus the peak
    of simultaneously-live activations — which is why the measurement
    tracks model size (Observation 9).  ``all_activation_bytes`` also
    reports what an allocate-everything-up-front scheme would need.
    """

    network: str
    weight_bytes: int
    all_activation_bytes: int
    peak_activation_bytes: int

    @property
    def total_bytes(self) -> int:
        """Maximum device memory in use."""
        return self.weight_bytes + self.peak_activation_bytes

    @property
    def total_kb(self) -> float:
        """Footprint in KB, the unit of Figure 11's log axis."""
        return self.total_bytes / 1024.0


def _activation_bytes(graph: NetworkGraph, name: str) -> int:
    return 4 * int(np.prod(graph.out_shape(name)))


def peak_activation_bytes(graph: NetworkGraph) -> int:
    """Largest sum of simultaneously-live activations.

    Walks the layer sequence tracking which producer outputs are still
    needed by later consumers (ResNet shortcuts keep an extra tensor
    alive across a whole bottleneck body).
    """
    last_use: dict[str, int] = {}
    for index, node in enumerate(graph.nodes):
        for src in node.inputs:
            last_use[src] = index
    live: set[str] = {INPUT}
    peak = 0
    for index, node in enumerate(graph.nodes):
        live.add(node.name)
        current = sum(
            _activation_bytes(graph, name) if name != INPUT else
            4 * int(np.prod(graph.input_shape))
            for name in live
        )
        peak = max(peak, current)
        live = {name for name in live if last_use.get(name, -1) > index}
        live.add(node.name)
    return peak


def all_activation_bytes(graph: NetworkGraph) -> int:
    """Sum of every layer's output buffer plus the input buffer."""
    total = 4 * int(np.prod(graph.input_shape))
    for node in graph.nodes:
        total += _activation_bytes(graph, node.name)
    return total


def footprint(name: str) -> FootprintReport:
    """Figure 11 entry for the named network."""
    graph = get_network(name)
    return FootprintReport(
        network=name,
        weight_bytes=graph.total_weight_bytes(),
        all_activation_bytes=all_activation_bytes(graph),
        peak_activation_bytes=peak_activation_bytes(graph),
    )
