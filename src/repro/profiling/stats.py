"""Weighted counter containers emitted by the simulator.

A :class:`KernelStats` accumulates everything one kernel run produces:
cycles, issued instructions by pipe and data type, stall cycles by
reason, cache and DRAM traffic, register-file activity.  All counters
are floats because sampled instructions carry fractional weights; the
``scale`` method applies the block-sampling factor so totals estimate
the full chip (DESIGN.md section 6).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.opcodes import Pipe
from repro.profiling.stall import StallReason


@dataclass
class KernelStats:
    """Counters for one kernel launch (or an aggregate of several)."""

    cycles: float = 0.0
    #: Cycles of one simulated wave before wave scaling (diagnostics).
    wave_cycles: float = 0.0
    waves: int = 1
    issued: float = 0.0
    issued_by_pipe: Counter = field(default_factory=Counter)
    stalls: Counter = field(default_factory=Counter)
    l1_accesses: float = 0.0
    l1_misses: float = 0.0
    l2_accesses: float = 0.0
    l2_misses: float = 0.0
    dram_bytes: float = 0.0
    load_transactions: float = 0.0
    store_transactions: float = 0.0
    shared_accesses: float = 0.0
    const_accesses: float = 0.0
    rf_reads: float = 0.0
    rf_writes: float = 0.0
    #: SMs concurrently busy during this kernel (drives chip power).
    active_sms: int = 1
    #: Resident warps per SM (drives idle-lane / scheduler energy).
    resident_warps: int = 0

    # ------------------------------------------------------------------
    def count_issue(self, pipe: Pipe, weight: float) -> None:
        """Record one issued instruction of *pipe* with sampling weight."""
        self.issued += weight
        self.issued_by_pipe[pipe] += weight

    def count_stall(self, reason: StallReason, weight: float) -> None:
        """Record stall cycles attributed to *reason*."""
        self.stalls[reason] += weight

    def scale_events(self, factor: float) -> None:
        """Scale every event counter (not cycles) by the sampling factor."""
        self.issued *= factor
        for key in self.issued_by_pipe:
            self.issued_by_pipe[key] *= factor
        for key in self.stalls:
            self.stalls[key] *= factor
        self.l1_accesses *= factor
        self.l1_misses *= factor
        self.l2_accesses *= factor
        self.l2_misses *= factor
        self.dram_bytes *= factor
        self.load_transactions *= factor
        self.store_transactions *= factor
        self.shared_accesses *= factor
        self.const_accesses *= factor
        self.rf_reads *= factor
        self.rf_writes *= factor

    def merge(self, other: "KernelStats") -> None:
        """Accumulate *other* into this aggregate."""
        self.cycles += other.cycles
        self.issued += other.issued
        self.issued_by_pipe.update(other.issued_by_pipe)
        self.stalls.update(other.stalls)
        self.l1_accesses += other.l1_accesses
        self.l1_misses += other.l1_misses
        self.l2_accesses += other.l2_accesses
        self.l2_misses += other.l2_misses
        self.dram_bytes += other.dram_bytes
        self.load_transactions += other.load_transactions
        self.store_transactions += other.store_transactions
        self.shared_accesses += other.shared_accesses
        self.const_accesses += other.const_accesses
        self.rf_reads += other.rf_reads
        self.rf_writes += other.rf_writes
        self.active_sms = max(self.active_sms, other.active_sms)
        self.resident_warps = max(self.resident_warps, other.resident_warps)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (enum-keyed counters become value-keyed)."""
        return {
            "cycles": self.cycles,
            "wave_cycles": self.wave_cycles,
            "waves": self.waves,
            "issued": self.issued,
            "issued_by_pipe": {p.value: v for p, v in self.issued_by_pipe.items()},
            "stalls": {r.value: v for r, v in self.stalls.items()},
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "dram_bytes": self.dram_bytes,
            "load_transactions": self.load_transactions,
            "store_transactions": self.store_transactions,
            "shared_accesses": self.shared_accesses,
            "const_accesses": self.const_accesses,
            "rf_reads": self.rf_reads,
            "rf_writes": self.rf_writes,
            "active_sms": self.active_sms,
            "resident_warps": self.resident_warps,
        }

    _SCALAR_FIELDS = (
        "cycles", "wave_cycles", "waves", "issued", "l1_accesses", "l1_misses",
        "l2_accesses", "l2_misses", "dram_bytes", "load_transactions",
        "store_transactions", "shared_accesses", "const_accesses", "rf_reads",
        "rf_writes", "active_sms", "resident_warps",
    )

    @classmethod
    def from_dict(cls, data: dict) -> "KernelStats":
        """Inverse of :meth:`to_dict`; raises on malformed input."""
        stats = cls()
        for key in cls._SCALAR_FIELDS:
            setattr(stats, key, data[key])
        for pipe_name, value in data["issued_by_pipe"].items():
            stats.issued_by_pipe[Pipe(pipe_name)] = value
        for reason_name, value in data["stalls"].items():
            stats.stalls[StallReason(reason_name)] = value
        return stats

    def summary(self) -> str:
        """One-line rendering (the :class:`repro.stats.Stats` protocol)."""
        return (
            f"cycles={self.cycles:.0f} issued={self.issued:.0f} "
            f"stalls={self.total_stalls:.0f} "
            f"l1={self.l1_miss_ratio:.1%} l2={self.l2_miss_ratio:.1%} "
            f"dram={self.dram_bytes:.0f}B"
        )

    # ------------------------------------------------------------------
    @property
    def l1_miss_ratio(self) -> float:
        """L1D miss ratio (0 when no accesses)."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        """L2 miss ratio (0 when no accesses)."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def total_stalls(self) -> float:
        """Total attributed stall warp-cycles."""
        return sum(self.stalls.values())

    def stall_fractions(self) -> dict[StallReason, float]:
        """Stall breakdown normalized to fractions (empty dict if none)."""
        total = self.total_stalls
        if not total:
            return {}
        return {reason: count / total for reason, count in self.stalls.items()}
