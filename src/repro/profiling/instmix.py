"""Analytic instruction-mix statistics (Figures 8-10).

The operation-type and data-type breakdowns are exact properties of the
compiled kernels — no timing simulation needed — so this module walks
the program trees directly, multiplying loop trip counts, and scales by
each kernel's active thread count.  This keeps the instruction figures
free of sampling noise.
"""

from __future__ import annotations

import math
from collections import Counter
from functools import lru_cache

from repro.isa.dtypes import DType
from repro.isa.opcodes import Op
from repro.isa.program import Loop, Program
from repro.kernels.compile import compiled_network
from repro.kernels.launch import KernelLaunch


def program_histogram(program: Program) -> Counter:
    """Exact dynamic (opcode, dtype) histogram of one thread's program."""
    counts: Counter = Counter()

    def walk(items, weight: float) -> None:
        for item in items:
            if isinstance(item, Loop):
                walk(item.body, weight * item.trips)
            else:
                counts[(item.op, item.dtype)] += weight

    walk(program.items, 1.0)
    return counts


def kernel_histogram(kernel: KernelLaunch) -> Counter:
    """Dynamic histogram of a whole launch (all active threads)."""
    per_thread = program_histogram(kernel.program)
    threads = kernel.active_threads * kernel.total_blocks
    return Counter({key: value * threads for key, value in per_thread.items()})


@lru_cache(maxsize=None)
def network_histogram(name: str) -> Counter:
    """Dynamic histogram of every kernel of the named network."""
    total: Counter = Counter()
    for kernel in compiled_network(name):
        total.update(kernel_histogram(kernel))
    return total


def opcode_mix(name: str) -> dict[str, float]:
    """Figure 8: fraction of dynamic instructions per opcode."""
    hist = network_histogram(name)
    total = sum(hist.values())
    mix: dict[str, float] = {}
    for (op, _dtype), count in hist.items():
        mix[op.value] = mix.get(op.value, 0.0) + count / total
    return mix


def top_ops(names: tuple[str, ...], n: int = 10) -> list[tuple[str, float]]:
    """Figure 9: the top-*n* opcodes pooled over *names*, with shares."""
    pooled: Counter = Counter()
    for name in names:
        hist = network_histogram(name)
        total = sum(hist.values())
        # Pool network *fractions* so small networks are not drowned out,
        # matching the paper's equal-weight treatment.
        for (op, _dtype), count in hist.items():
            pooled[op.value] += count / total / len(names)
    return pooled.most_common(n)


def dtype_mix_per_kernel(name: str) -> list[tuple[str, dict[str, float]]]:
    """Figure 10: per-kernel data-type fractions, in invocation order.

    Returns ``(kernel_name, {dtype: fraction})`` for every kernel of the
    network; control instructions with no data type are excluded, as in
    the paper's plot.
    """
    out: list[tuple[str, dict[str, float]]] = []
    for kernel in compiled_network(name):
        hist = program_histogram(kernel.program)
        typed = {
            (op, dtype): count
            for (op, dtype), count in hist.items()
            if dtype is not DType.NONE
        }
        total = sum(typed.values())
        mix: dict[str, float] = {}
        if total:
            for (_op, dtype), count in typed.items():
                mix[dtype.value] = mix.get(dtype.value, 0.0) + count / total
        out.append((kernel.name, mix))
    return out


def f32_fraction(name: str) -> float:
    """Share of typed dynamic instructions that are 32-bit float."""
    hist = network_histogram(name)
    typed = {k: v for k, v in hist.items() if k[1] is not DType.NONE}
    total = sum(typed.values())
    if not total:
        return 0.0
    return sum(v for (op, dtype), v in typed.items() if dtype is DType.F32) / total
