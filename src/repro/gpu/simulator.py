"""Kernel- and network-level simulation drivers.

:func:`simulate_kernel` runs one resident wave of a kernel on one SM
(:mod:`repro.gpu.sm`) and rescales the outcome to the full launch:

* event counters scale by ``total_blocks / simulated_blocks``;
* wave cycles scale by the instruction-sampling factor (dynamic /
  sampled instructions) and by the number of waves the launch needs
  across all SMs (``ceil(blocks / (resident * num_sms))``);
* a fixed launch overhead is added per kernel, which is what keeps the
  tiny RNN kernels launch-bound (and scheduler-insensitive, Figure 15).

:func:`simulate_network` drives a compiled network kernel-by-kernel,
reusing results across signature-identical kernels (ResNet repeats its
bottleneck shapes dozens of times) and returning per-kernel and
per-layer-type aggregates.  Reuse happens at two levels, both keyed by
the canonical identities of :mod:`repro.analysis.canonical`:

* **launch level** — equal :meth:`~repro.kernels.launch.KernelLaunch.signature`
  launches share one scaled :class:`KernelResult` (stats copied per
  occurrence so aggregation stays independent);
* **wave level** — launches in the same :func:`~repro.analysis.canonical.wave_class`
  (same program and block geometry, *any* grid) share one expensive
  :class:`~repro.gpu.sm.SmWave` run and redo only the cheap per-launch
  scaling, e.g. an element-wise kernel over two different map sizes.

``dedup=False`` disables both levels (every launch simulates from
scratch); ``tests/test_engine_equivalence.py`` pins that the two modes
are bit-identical on every suite network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gpu import engine as engine_registry
from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.decode import decode_program
from repro.gpu.occupancy import Occupancy, compute_occupancy
from repro.isa.program import expand_program
from repro.kernels.compile import compiled_network
from repro.kernels.launch import KernelLaunch
from repro.kernels.program_builder import build_guard_program
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.tracer import CYCLES, get_tracer
from repro.profiling.stats import KernelStats

#: Guard program shared by all kernels (fully-inactive warps),
#: expanded and decoded once at module scope (the seed engine
#: re-expanded it on every simulate_kernel call).  Sharing one decoded
#: guard across kernels is safe because it contains no addressed
#: global/local accesses, so no per-kernel-geometry state is cached on it.
_GUARD_PROGRAM = build_guard_program()
_GUARD_EXPANDED = expand_program(_GUARD_PROGRAM)
_GUARD_DECODED = decode_program(_GUARD_EXPANDED)


@dataclass
class KernelResult:
    """Scaled simulation outcome of one kernel launch."""

    kernel: KernelLaunch
    stats: KernelStats
    occupancy: Occupancy
    #: dynamic / simulated instruction ratio (per-warp sampling factor).
    sample_factor: float
    #: total_blocks / simulated_blocks (block sampling factor).
    block_factor: float

    @property
    def cycles(self) -> float:
        """Estimated full-launch cycles including launch overhead."""
        return self.stats.cycles

    @property
    def category(self) -> str:
        """Layer-type category of the kernel."""
        return self.kernel.category


@dataclass
class NetworkResult:
    """Simulation outcome of a whole network's kernel sequence."""

    network: str
    config: GpuConfig
    options: SimOptions
    kernels: list[KernelResult] = field(default_factory=list)
    #: Distinct canonical signatures among the launches (dedup collapses
    #: the launch list to this many simulations on a cold run).
    unique_kernels: int = 0

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles (kernels run back-to-back, as in Tango)."""
        return sum(k.stats.cycles for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        """End-to-end time in milliseconds at the config's core clock."""
        return self.total_cycles / (self.config.clock_ghz * 1e6)

    def cycles_by_category(self) -> dict[str, float]:
        """Execution cycles aggregated per layer-type category (Fig 1)."""
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.category] = out.get(k.category, 0.0) + k.stats.cycles
        return out

    def stats_by_category(self) -> dict[str, KernelStats]:
        """Merged counters per layer-type category (Figs 4, 7, 13, 14)."""
        out: dict[str, KernelStats] = {}
        for k in self.kernels:
            agg = out.setdefault(k.category, KernelStats())
            agg.merge(k.stats)
        return out

    def aggregate(self) -> KernelStats:
        """Whole-network merged counters."""
        total = KernelStats()
        for k in self.kernels:
            total.merge(k.stats)
        return total


def _make_hierarchy(config: GpuConfig) -> MemoryHierarchy:
    """Fresh per-kernel memory hierarchy for one simulated SM.

    The simulated SM sees the *full* L2: the L2 is physically shared and
    in these workloads the other SMs run sibling blocks of the same
    kernel touching the same weights/feature maps, so cross-SM sharing
    keeps their lines resident rather than evicting ours.  DRAM
    bandwidth, by contrast, is genuinely divided among SMs, so the
    channel model gets a 1/num_sms share.
    """
    return MemoryHierarchy(
        l1_size=config.l1_size,
        l2_size=config.l2_size,
        mshr_entries=config.mshr_entries,
        dram_latency=config.dram_latency,
        dram_bytes_per_cycle=config.dram_bytes_per_cycle_per_sm,
    )


#: Address range of the canonical "input" slot (repro.kernels.memory_layout);
#: decode.WARM_LO/WARM_HI mirror it (padded convolutions shift their base
#: a little below the slot start).
_INPUT_SLOT = (1 << 30, 2 << 30)


class _WaveRun:
    """Unscaled outcome of one resident-wave simulation.

    Holds everything the per-launch scaling step reads: the raw wave
    statistics plus the hierarchy counters of the wave's private memory
    system.  Instances are immutable by convention — scaling always
    operates on a copy — so one ``_WaveRun`` can back every launch of a
    :func:`~repro.analysis.canonical.wave_class`.
    """

    __slots__ = (
        "stats", "n_expanded",
        "l1_accesses", "l1_misses", "l2_accesses", "l2_misses",
        "dram_bytes", "load_transactions", "store_transactions",
        "shared_accesses", "const_accesses",
    )

    def __init__(self, stats: KernelStats, n_expanded: int, hierarchy: MemoryHierarchy):
        self.stats = stats
        self.n_expanded = n_expanded
        self.l1_accesses = hierarchy.l1.stats.accesses
        self.l1_misses = hierarchy.l1.stats.misses
        self.l2_accesses = hierarchy.l2.stats.accesses
        self.l2_misses = hierarchy.l2.stats.misses
        self.dram_bytes = hierarchy.dram.bytes_served
        self.load_transactions = hierarchy.load_transactions
        self.store_transactions = hierarchy.store_transactions
        self.shared_accesses = hierarchy.shared_accesses
        self.const_accesses = hierarchy.const_accesses


def _run_wave(
    kernel: KernelLaunch, config: GpuConfig, options: SimOptions, sim_blocks: int
) -> _WaveRun:
    """Expand, decode and execute one resident wave on one SM.

    The wave class comes from the engine registry
    (:func:`repro.gpu.engine.wave_class`): ``SmWave`` for the fast
    engine, ``VectorWave`` for the vector engine.  The seed engine never
    reaches here — :func:`simulate_kernel` delegates to its frozen
    driver wholesale.
    """
    expanded = expand_program(kernel.program, options.max_trips, options.max_outer_trips)
    decoded = decode_program(expanded)
    hierarchy = _make_hierarchy(config)
    wave_cls = engine_registry.wave_class()
    wave = wave_cls(kernel, decoded, _GUARD_DECODED, sim_blocks, config, options, hierarchy)
    if kernel.shared_input and kernel.total_blocks > sim_blocks:
        wave.warm_shared_input()
    stats = wave.run()
    return _WaveRun(stats, len(expanded), hierarchy)


def simulate_kernel(
    kernel: KernelLaunch,
    config: GpuConfig,
    options: SimOptions | None = None,
    _wave_cache: dict | None = None,
) -> KernelResult:
    """Simulate one kernel launch and scale to the full grid.

    *_wave_cache* (internal, used by :func:`simulate_network`) maps
    :func:`~repro.analysis.canonical.wave_class` keys to :class:`_WaveRun`
    records so launches in the same class run the SM issue loop once.
    The cache is only valid for a fixed ``(config, options)`` pair —
    callers own that scoping.

    When the seed engine is active (``REPRO_ENGINE=seed`` or
    ``--engine seed``), the call delegates to the frozen seed driver
    wholesale — no wave-class dedup, no pluggable wave class.
    """
    if engine_registry.get_engine() == "seed":
        from repro.gpu import seed_engine

        return seed_engine.simulate_kernel(kernel, config, options)
    options = options or SimOptions()
    occupancy = compute_occupancy(kernel, config)
    sim_blocks = occupancy.blocks
    if options.max_sim_blocks is not None:
        sim_blocks = max(1, min(sim_blocks, options.max_sim_blocks))

    run = None
    wave_key = None
    if _wave_cache is not None:
        from repro.analysis.canonical import wave_class

        warm = kernel.shared_input and kernel.total_blocks > sim_blocks
        wave_key = wave_class(kernel, sim_blocks, warm)
        run = _wave_cache.get(wave_key)
    if run is None:
        run = _run_wave(kernel, config, options, sim_blocks)
        if _wave_cache is not None:
            _wave_cache[wave_key] = run

    # --- scaling ------------------------------------------------------
    # Always scale a copy: the cached wave stats stay pristine for the
    # next launch of the class (copying is exact, so the dedup-off path
    # produces bit-identical numbers).
    stats = _copy_stats(run.stats)
    dynamic = kernel.program.dynamic_count()
    sample_factor = dynamic / max(1, run.n_expanded)
    block_factor = kernel.total_blocks / sim_blocks
    waves = math.ceil(kernel.total_blocks / (occupancy.blocks * config.num_sms))

    stats.waves = waves
    stats.cycles = (
        stats.wave_cycles * sample_factor * waves + config.launch_overhead_cycles
    )
    stats.scale_events(block_factor)
    # Stall samples count warp-cycles of the sampled wave; scale by the
    # instruction-sampling factor (block scaling was applied above) so
    # kernels weight correctly in per-layer aggregates.
    for reason in stats.stalls:
        stats.stalls[reason] *= sample_factor
    stats.l1_accesses = run.l1_accesses * block_factor
    stats.l1_misses = run.l1_misses * block_factor
    stats.l2_accesses = run.l2_accesses * block_factor
    stats.l2_misses = run.l2_misses * block_factor
    stats.dram_bytes = run.dram_bytes * block_factor
    stats.load_transactions = run.load_transactions * block_factor
    stats.store_transactions = run.store_transactions * block_factor
    stats.shared_accesses = run.shared_accesses * block_factor
    stats.const_accesses = run.const_accesses * block_factor
    stats.active_sms = min(
        config.num_sms, math.ceil(kernel.total_blocks / occupancy.blocks)
    )
    stats.resident_warps = occupancy.warps

    return KernelResult(
        kernel=kernel,
        stats=stats,
        occupancy=occupancy,
        sample_factor=sample_factor,
        block_factor=block_factor,
    )


def simulate_network(
    name: str,
    config: GpuConfig,
    options: SimOptions | None = None,
    cache=None,
    dedup: bool = True,
) -> NetworkResult:
    """Simulate every kernel of the named suite network, in order.

    With *dedup* (the default), signature-identical kernels (same
    canonical form, :mod:`repro.analysis.canonical`) reuse one
    simulation and launches sharing a wave class reuse one SM issue-loop
    run; each occurrence still contributes its own entry — and its own
    launch overhead — to the result.  ``dedup=False`` simulates every
    launch from scratch; the two modes are bit-identical by construction
    and by test.

    *cache*, when given, is a
    :class:`repro.runs.store.KernelResultCache`: unique-signature
    kernels are looked up there before simulating and stored after.
    The default (no persistent cache) leaves library behaviour
    unchanged; the ``repro simulate`` CLI and the run pipeline opt in.

    When the seed engine is active the call delegates wholesale to
    :func:`repro.gpu.seed_engine.simulate_network` (which ignores
    *cache* and *dedup* — the frozen driver predates both and always
    applies its own signature-level reuse).
    """
    if engine_registry.get_engine() == "seed":
        from repro.gpu import seed_engine

        return seed_engine.simulate_network(name, config, options)
    options = options or SimOptions()
    tracer = get_tracer()
    result = NetworkResult(network=name, config=config, options=options)
    local: dict[str, KernelResult] = {}
    wave_cache: dict | None = {} if dedup else None
    seen: set[str] = set()
    requested = 0
    offset = 0.0  # back-to-back network timeline position, in cycles
    for kernel in compiled_network(name):
        requested += 1
        signature = kernel.signature()
        seen.add(signature)
        hit = local.get(signature) if dedup else None
        if hit is None:
            entry = cache.get(signature, config, options) if cache is not None else None
            if entry is not None:
                source = "cache"
                hit = KernelResult(
                    kernel=kernel,
                    stats=entry.stats,
                    occupancy=entry.occupancy,
                    sample_factor=entry.sample_factor,
                    block_factor=entry.block_factor,
                )
            else:
                source = "fresh"
                hit = simulate_kernel(kernel, config, options, _wave_cache=wave_cache)
                if cache is not None:
                    cache.put(
                        signature, config, options,
                        hit.stats, hit.occupancy,
                        hit.sample_factor, hit.block_factor,
                    )
            if dedup:
                local[signature] = hit
        else:
            source = "local"
            hit = KernelResult(
                kernel=kernel,
                stats=_copy_stats(hit.stats),
                occupancy=hit.occupancy,
                sample_factor=hit.sample_factor,
                block_factor=hit.block_factor,
            )
        result.kernels.append(hit)
        if tracer.enabled:
            tracer.span(
                kernel.name, "kernel", CYCLES, offset, hit.stats.cycles,
                process="gpu.network", thread=f"{name}@{config.name}",
                args={"category": hit.category, "source": source},
            )
            tracer.metrics.counter(f"gpu.kernel_{source}").inc()
            offset += hit.stats.cycles
    result.unique_kernels = len(seen)
    if tracer.enabled:
        tracer.metrics.counter("analysis.dedup.requested").inc(requested)
        tracer.metrics.counter("analysis.dedup.unique").inc(len(seen))
        tracer.metrics.counter("analysis.dedup.replicated").inc(requested - len(seen))
    return result


def _copy_stats(stats: KernelStats) -> KernelStats:
    """Deep-enough copy so repeated kernels aggregate independently."""
    clone = KernelStats()
    clone.merge(stats)
    clone.cycles = stats.cycles
    clone.wave_cycles = stats.wave_cycles
    clone.waves = stats.waves
    return clone
