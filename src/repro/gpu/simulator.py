"""Kernel- and network-level simulation drivers.

:func:`simulate_kernel` runs one resident wave of a kernel on one SM
(:mod:`repro.gpu.sm`) and rescales the outcome to the full launch:

* event counters scale by ``total_blocks / simulated_blocks``;
* wave cycles scale by the instruction-sampling factor (dynamic /
  sampled instructions) and by the number of waves the launch needs
  across all SMs (``ceil(blocks / (resident * num_sms))``);
* a fixed launch overhead is added per kernel, which is what keeps the
  tiny RNN kernels launch-bound (and scheduler-insensitive, Figure 15).

:func:`simulate_network` drives a compiled network kernel-by-kernel,
reusing results across signature-identical kernels (ResNet repeats its
bottleneck shapes dozens of times) and returning per-kernel and
per-layer-type aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.decode import decode_program
from repro.gpu.occupancy import Occupancy, compute_occupancy
from repro.gpu.sm import SmWave
from repro.isa.program import expand_program
from repro.kernels.compile import compiled_network
from repro.kernels.launch import KernelLaunch
from repro.kernels.program_builder import build_guard_program
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.tracer import CYCLES, get_tracer
from repro.profiling.stats import KernelStats

#: Guard program shared by all kernels (fully-inactive warps),
#: expanded and decoded once at module scope (the seed engine
#: re-expanded it on every simulate_kernel call).  Sharing one decoded
#: guard across kernels is safe because it contains no addressed
#: global/local accesses, so no per-kernel-geometry state is cached on it.
_GUARD_PROGRAM = build_guard_program()
_GUARD_EXPANDED = expand_program(_GUARD_PROGRAM)
_GUARD_DECODED = decode_program(_GUARD_EXPANDED)


@dataclass
class KernelResult:
    """Scaled simulation outcome of one kernel launch."""

    kernel: KernelLaunch
    stats: KernelStats
    occupancy: Occupancy
    #: dynamic / simulated instruction ratio (per-warp sampling factor).
    sample_factor: float
    #: total_blocks / simulated_blocks (block sampling factor).
    block_factor: float

    @property
    def cycles(self) -> float:
        """Estimated full-launch cycles including launch overhead."""
        return self.stats.cycles

    @property
    def category(self) -> str:
        """Layer-type category of the kernel."""
        return self.kernel.category


@dataclass
class NetworkResult:
    """Simulation outcome of a whole network's kernel sequence."""

    network: str
    config: GpuConfig
    options: SimOptions
    kernels: list[KernelResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles (kernels run back-to-back, as in Tango)."""
        return sum(k.stats.cycles for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        """End-to-end time in milliseconds at the config's core clock."""
        return self.total_cycles / (self.config.clock_ghz * 1e6)

    def cycles_by_category(self) -> dict[str, float]:
        """Execution cycles aggregated per layer-type category (Fig 1)."""
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.category] = out.get(k.category, 0.0) + k.stats.cycles
        return out

    def stats_by_category(self) -> dict[str, KernelStats]:
        """Merged counters per layer-type category (Figs 4, 7, 13, 14)."""
        out: dict[str, KernelStats] = {}
        for k in self.kernels:
            agg = out.setdefault(k.category, KernelStats())
            agg.merge(k.stats)
        return out

    def aggregate(self) -> KernelStats:
        """Whole-network merged counters."""
        total = KernelStats()
        for k in self.kernels:
            total.merge(k.stats)
        return total


def _make_hierarchy(config: GpuConfig) -> MemoryHierarchy:
    """Fresh per-kernel memory hierarchy for one simulated SM.

    The simulated SM sees the *full* L2: the L2 is physically shared and
    in these workloads the other SMs run sibling blocks of the same
    kernel touching the same weights/feature maps, so cross-SM sharing
    keeps their lines resident rather than evicting ours.  DRAM
    bandwidth, by contrast, is genuinely divided among SMs, so the
    channel model gets a 1/num_sms share.
    """
    return MemoryHierarchy(
        l1_size=config.l1_size,
        l2_size=config.l2_size,
        mshr_entries=config.mshr_entries,
        dram_latency=config.dram_latency,
        dram_bytes_per_cycle=config.dram_bytes_per_cycle_per_sm,
    )


#: Address range of the canonical "input" slot (repro.kernels.memory_layout);
#: decode.WARM_LO/WARM_HI mirror it (padded convolutions shift their base
#: a little below the slot start).
_INPUT_SLOT = (1 << 30, 2 << 30)


def simulate_kernel(
    kernel: KernelLaunch, config: GpuConfig, options: SimOptions | None = None
) -> KernelResult:
    """Simulate one kernel launch and scale to the full grid."""
    options = options or SimOptions()
    occupancy = compute_occupancy(kernel, config)
    sim_blocks = occupancy.blocks
    if options.max_sim_blocks is not None:
        sim_blocks = max(1, min(sim_blocks, options.max_sim_blocks))

    expanded = expand_program(kernel.program, options.max_trips, options.max_outer_trips)
    decoded = decode_program(expanded)
    hierarchy = _make_hierarchy(config)
    wave = SmWave(kernel, decoded, _GUARD_DECODED, sim_blocks, config, options, hierarchy)
    if kernel.shared_input and kernel.total_blocks > sim_blocks:
        wave.warm_shared_input()
    stats = wave.run()

    # --- scaling ------------------------------------------------------
    dynamic = kernel.program.dynamic_count()
    sample_factor = dynamic / max(1, len(expanded))
    block_factor = kernel.total_blocks / sim_blocks
    waves = math.ceil(kernel.total_blocks / (occupancy.blocks * config.num_sms))

    stats.waves = waves
    stats.cycles = (
        stats.wave_cycles * sample_factor * waves + config.launch_overhead_cycles
    )
    stats.scale_events(block_factor)
    # Stall samples count warp-cycles of the sampled wave; scale by the
    # instruction-sampling factor (block scaling was applied above) so
    # kernels weight correctly in per-layer aggregates.
    for reason in stats.stalls:
        stats.stalls[reason] *= sample_factor
    stats.l1_accesses = hierarchy.l1.stats.accesses * block_factor
    stats.l1_misses = hierarchy.l1.stats.misses * block_factor
    stats.l2_accesses = hierarchy.l2.stats.accesses * block_factor
    stats.l2_misses = hierarchy.l2.stats.misses * block_factor
    stats.dram_bytes = hierarchy.dram.bytes_served * block_factor
    stats.load_transactions = hierarchy.load_transactions * block_factor
    stats.store_transactions = hierarchy.store_transactions * block_factor
    stats.shared_accesses = hierarchy.shared_accesses * block_factor
    stats.const_accesses = hierarchy.const_accesses * block_factor
    stats.active_sms = min(
        config.num_sms, math.ceil(kernel.total_blocks / occupancy.blocks)
    )
    stats.resident_warps = occupancy.warps

    return KernelResult(
        kernel=kernel,
        stats=stats,
        occupancy=occupancy,
        sample_factor=sample_factor,
        block_factor=block_factor,
    )


def simulate_network(
    name: str,
    config: GpuConfig,
    options: SimOptions | None = None,
    cache=None,
) -> NetworkResult:
    """Simulate every kernel of the named suite network, in order.

    Signature-identical kernels (same program shape and launch geometry,
    canonical addresses) reuse one simulation; each occurrence still
    contributes its own entry — and its own launch overhead — to the
    result.

    *cache*, when given, is a
    :class:`repro.runs.store.KernelResultCache`: unique-signature
    kernels are looked up there before simulating and stored after.
    The default (no persistent cache) leaves library behaviour
    unchanged; the ``repro simulate`` CLI and the run pipeline opt in.
    """
    options = options or SimOptions()
    tracer = get_tracer()
    result = NetworkResult(network=name, config=config, options=options)
    local: dict[str, KernelResult] = {}
    offset = 0.0  # back-to-back network timeline position, in cycles
    for kernel in compiled_network(name):
        signature = kernel.signature()
        hit = local.get(signature)
        if hit is None:
            entry = cache.get(signature, config, options) if cache is not None else None
            if entry is not None:
                source = "cache"
                hit = KernelResult(
                    kernel=kernel,
                    stats=entry.stats,
                    occupancy=entry.occupancy,
                    sample_factor=entry.sample_factor,
                    block_factor=entry.block_factor,
                )
            else:
                source = "fresh"
                hit = simulate_kernel(kernel, config, options)
                if cache is not None:
                    cache.put(
                        signature, config, options,
                        hit.stats, hit.occupancy,
                        hit.sample_factor, hit.block_factor,
                    )
            local[signature] = hit
        else:
            source = "local"
            hit = KernelResult(
                kernel=kernel,
                stats=_copy_stats(hit.stats),
                occupancy=hit.occupancy,
                sample_factor=hit.sample_factor,
                block_factor=hit.block_factor,
            )
        result.kernels.append(hit)
        if tracer.enabled:
            tracer.span(
                kernel.name, "kernel", CYCLES, offset, hit.stats.cycles,
                process="gpu.network", thread=f"{name}@{config.name}",
                args={"category": hit.category, "source": source},
            )
            tracer.metrics.counter(f"gpu.kernel_{source}").inc()
            offset += hit.stats.cycles
    return result


def _copy_stats(stats: KernelStats) -> KernelStats:
    """Deep-enough copy so repeated kernels aggregate independently."""
    clone = KernelStats()
    clone.merge(stats)
    clone.cycles = stats.cycles
    clone.wave_cycles = stats.wave_cycles
    clone.waves = stats.waves
    return clone
