"""Simulation-engine registry and selection.

Three engines can drive a resident-wave simulation, all bit-identical
by construction and by test (``tests/test_engine_equivalence.py``):

* ``seed`` — the frozen reference implementation in
  :mod:`repro.gpu.seed_engine` (per-cycle ``O(warps)`` scans;
  deliberately slow, the equivalence oracle);
* ``fast`` — the event-heap loop in :mod:`repro.gpu.sm`
  (``ENGINE_VERSION = "fast-2.1"``);
* ``vector`` — the default: :mod:`repro.gpu.vector`, the fast loop plus
  structure-of-arrays decode, numpy-precomputed coalesced transactions,
  a vectorized L2 warm front and a solo-warp batch issue loop
  (``ENGINE_VERSION = "fast-3"``).

Selection, in precedence order: :func:`set_engine` (the ``--engine``
CLI flag), the ``REPRO_ENGINE`` environment variable, then
:data:`DEFAULT_ENGINE`.  :func:`engine_version` resolves the *active*
engine's version string; both persistent result-store layers
(:mod:`repro.runs.store`, :mod:`repro.runs.spec`) fold it into their
content keys, so switching engines never aliases cached numbers.
"""

from __future__ import annotations

import os

#: Recognized engine names, in oracle -> fastest order.
ENGINES = ("seed", "fast", "vector")

#: Engine used when neither :func:`set_engine` nor ``$REPRO_ENGINE``
#: chose one.
DEFAULT_ENGINE = "vector"

#: Environment variable consulted by :func:`get_engine`.
ENGINE_ENV = "REPRO_ENGINE"

_forced: str | None = None


def _validate(name: str, source: str) -> str:
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r} (from {source}); "
            f"expected one of {', '.join(ENGINES)}"
        )
    return name


def set_engine(name: str | None) -> None:
    """Force the active engine for this process (``None`` resets to the
    environment/default resolution)."""
    global _forced
    _forced = None if name is None else _validate(name, "set_engine")


def get_engine() -> str:
    """Name of the active engine (set_engine > $REPRO_ENGINE > default)."""
    if _forced is not None:
        return _forced
    env = os.environ.get(ENGINE_ENV)
    if env:
        return _validate(env, ENGINE_ENV)
    return DEFAULT_ENGINE


def engine_version(name: str | None = None) -> str:
    """Result-cache version string of *name* (default: active engine).

    Reads the owning module's ``ENGINE_VERSION`` attribute at call time,
    so tests can monkeypatch a version to exercise cache invalidation.
    """
    name = _validate(name, "engine_version") if name is not None else get_engine()
    if name == "seed":
        from repro.gpu import seed_engine

        return seed_engine.ENGINE_VERSION
    if name == "fast":
        from repro.gpu import sm

        return sm.ENGINE_VERSION
    from repro.gpu import vector

    return vector.ENGINE_VERSION


def wave_class(name: str | None = None):
    """The resident-wave class the simulator drivers should construct.

    Only the fast/vector engines plug into
    :func:`repro.gpu.simulator._run_wave`; the seed engine keeps its own
    frozen drivers, and :func:`repro.gpu.simulator.simulate_network`
    delegates to them wholesale when ``seed`` is active.
    """
    name = _validate(name, "wave_class") if name is not None else get_engine()
    if name == "vector":
        from repro.gpu.vector import VectorWave

        return VectorWave
    if name == "fast":
        from repro.gpu.sm import SmWave

        return SmWave
    raise ValueError("the seed engine has no pluggable wave class")
