"""CUDA occupancy calculation.

Determines how many blocks of a kernel can be resident on one SM given
the machine's thread, block, register-file and shared-memory limits —
the quantity behind wave counting, latency-hiding capacity, and the
register-file footprint of Figure 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.kernels.launch import KernelLaunch, WARP_SIZE


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel on one SM."""

    blocks: int
    warps: int
    threads: int
    limiter: str
    allocated_register_bytes: int


def compute_occupancy(kernel: KernelLaunch, config: GpuConfig) -> Occupancy:
    """Blocks of *kernel* resident on one SM of *config*.

    Registers are allocated with warp granularity (whole warps' worth of
    registers are reserved even for partially-full warps), matching the
    allocation the paper's Figure 12 measures as ``Max Allocated``.
    """
    threads = kernel.threads_per_block
    warps = kernel.warps_per_block

    limits: dict[str, int] = {}
    limits["blocks"] = config.max_blocks_per_sm
    limits["threads"] = config.max_threads_per_sm // threads
    regs_per_block = kernel.regs * warps * WARP_SIZE
    if regs_per_block > 0:
        limits["registers"] = config.registers_per_sm // regs_per_block
    if kernel.smem_bytes > 0:
        limits["shared_memory"] = config.shared_mem_per_sm // kernel.smem_bytes

    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(1, min(limits.values()))
    # Cap by the grid: blocks spread across every SM, so a kernel with a
    # small grid (SqueezeNet's 111 row-blocks over 28 SMs) leaves each SM
    # only a few resident blocks regardless of the resource limits.
    grid_share = max(1, math.ceil(kernel.total_blocks / config.num_sms))
    if grid_share < blocks:
        limiter = "grid"
        blocks = grid_share
    return Occupancy(
        blocks=blocks,
        warps=blocks * warps,
        threads=blocks * threads,
        limiter=limiter,
        allocated_register_bytes=blocks * regs_per_block * 4,
    )
