"""Machine descriptions and simulation options.

:class:`GpuConfig` captures the architecture parameters of Table II
(CUDA core counts, register file, shared/L1 sizes, clocks) plus the
memory-system parameters GPGPU-Sim would read from its config file.
Concrete instances for GK210, TX1 and the Pascal GP102 simulator target
live in :mod:`repro.platforms`.

:class:`SimOptions` holds the knobs of one simulation run: the warp
scheduler (Figures 15-16), the L1D size override (Figure 2's sweep),
and the sampling factors of DESIGN.md section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class GpuConfig:
    """One GPU's architecture parameters."""

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    #: Architectural register file per SM, in 32-bit registers.
    registers_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int
    #: Default L1 data cache per SM in bytes (0 = no L1).
    l1_size: int
    #: Total chip L2 in bytes (the simulator uses a 1/num_sms slice).
    l2_size: int
    dram_gb_per_s: float
    dram_latency: int = 350
    mshr_entries: int = 32
    #: Board-level power envelope, used by the Wattsup device model.
    tdp_watts: float = 250.0
    idle_watts: float = 35.0
    #: Kernel launch overhead in core cycles.
    launch_overhead_cycles: int = 3500

    @property
    def total_cuda_cores(self) -> int:
        """Total CUDA cores (Table II's ``# CUDA cores``)."""
        return self.num_sms * self.cores_per_sm

    @property
    def register_file_bytes_per_sm(self) -> int:
        """Register file capacity per SM in bytes."""
        return self.registers_per_sm * 4

    @property
    def l2_slice_size(self) -> int:
        """L2 capacity divided per SM (reported for reference; the
        simulator models the shared L2 at full size — see
        ``repro.gpu.simulator._make_hierarchy``)."""
        return max(0, self.l2_size // self.num_sms)

    @property
    def dram_bytes_per_cycle_per_sm(self) -> float:
        """DRAM bandwidth share of one SM, in bytes per core cycle."""
        total_bpc = self.dram_gb_per_s * 1e9 / (self.clock_ghz * 1e9)
        return total_bpc / self.num_sms

    def with_l1(self, l1_size: int) -> "GpuConfig":
        """A copy with a different L1D size (the Figure 2 sweep)."""
        return replace(self, l1_size=l1_size)


@dataclass(frozen=True)
class SimOptions:
    """Knobs of one simulation run."""

    #: Warp scheduler: "gto" (default, as GPGPU-Sim), "lrr" or "tlv".
    scheduler: str = "gto"
    #: Inner-loop trip sampling budget (None = unsampled).  64 gives two
    #: contiguous 32-iteration chunks, long enough to preserve per-line
    #: reuse in streaming loops (see ``repro.isa.program``).
    max_trips: int | None = 64
    #: Outer (per-thread output) loop sampling budget.
    max_outer_trips: int | None = 2
    #: Cap on resident blocks simulated per SM (None = full residency).
    max_sim_blocks: int | None = None
    #: Stall attribution sampling interval in cycles (nvprof-style).
    stall_sample: int = 4
    #: Scheduler queue-management bubble per memory issue (cycles);
    #: applied by GTO/TLV, not LRR — the mechanism of Observation 12.
    queue_penalty: int = 1
    #: TLV active fetch-group size.
    tlv_group: int = 8

    def light(self) -> "SimOptions":
        """A cheap variant for tests: heavier sampling, same behaviour."""
        return replace(self, max_trips=6, max_outer_trips=1, max_sim_blocks=2)


def expand_budget(options: SimOptions, has_nested_loop: bool) -> int | None:
    """Trip budget for a loop: outer loops get the smaller budget."""
    return options.max_outer_trips if has_nested_loop else options.max_trips
