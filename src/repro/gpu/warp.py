"""Resident warp state.

A :class:`Warp` is one SIMT execution context: 32 lanes of one block,
an in-order program counter over the expanded instruction list, a
scoreboard of register readiness, and the lane/block symbol values the
address expressions evaluate against.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.launch import WARP_SIZE

#: Register-producer kinds, used for stall attribution.
KIND_ALU = 0
KIND_MEM = 1
KIND_CONST = 2


class Warp:
    """One resident warp executing an expanded thread program."""

    __slots__ = (
        "warp_id",
        "block",
        "instrs",
        "pc",
        "reg_ready",
        "reg_kind",
        "wake",
        "reason",
        "done",
        "at_barrier",
        "lane_syms",
        "block_syms",
        "active_lanes",
        "width",
        "issued_count",
        "fetch_pc",
    )

    def __init__(
        self,
        warp_id: int,
        block,
        instrs: list,
        lane_start: int,
        block_dims: tuple[int, int, int],
        block_coords: tuple[int, int, int],
        grid_dims: tuple[int, int, int],
        active_threads: int,
        entry_regs,
    ) -> None:
        self.warp_id = warp_id
        self.block = block
        self.instrs = instrs
        self.pc = 0
        self.reg_ready: dict[int, int] = {r.index: 0 for r in entry_regs}
        self.reg_kind: dict[int, int] = {r.index: KIND_ALU for r in entry_regs}
        self.wake = 0
        self.reason = None
        self.done = not instrs
        self.at_barrier = False
        self.issued_count = 0.0
        self.width = WARP_SIZE
        self.fetch_pc = -1

        bx_dim, by_dim, _ = block_dims
        lanes = np.arange(lane_start, lane_start + WARP_SIZE, dtype=np.int64)
        threads_per_block = block_dims[0] * block_dims[1] * block_dims[2]
        in_block = lanes < threads_per_block
        active = lanes < min(active_threads, threads_per_block)
        self.active_lanes = active
        # Clip out-of-block lanes to the last valid thread so address
        # evaluation stays in range; they are masked from memory anyway.
        clipped = np.minimum(lanes, threads_per_block - 1)
        tx = clipped % bx_dim
        ty = (clipped // bx_dim) % by_dim
        tz = clipped // (bx_dim * by_dim)
        self.lane_syms = {"tx": tx, "ty": ty, "tz": tz, "lin_tid": clipped}
        gx, gy, _ = grid_dims
        cx, cy, cz = block_coords
        self.block_syms = {
            "bx": cx,
            "by": cy,
            "bz": cz,
            "lin_bid": (cz * gy + cy) * gx + cx,
            "one": 1,
        }

    @property
    def active_count(self) -> int:
        """Number of lanes doing real work."""
        return int(self.active_lanes.sum())

    def current(self):
        """The instruction at the program counter (None when done)."""
        if self.pc >= len(self.instrs):
            return None
        return self.instrs[self.pc]

    def set_reg(self, reg, ready_cycle: int, kind: int) -> None:
        """Scoreboard update for a produced register."""
        self.reg_ready[reg.index] = ready_cycle
        self.reg_kind[reg.index] = kind

    def src_block(self, now: int, srcs) -> tuple[int, int] | None:
        """Latest unready source: (ready_cycle, producer kind) or None."""
        worst_cycle = now
        worst_kind = KIND_ALU
        blocked = False
        ready = self.reg_ready
        kinds = self.reg_kind
        for reg in srcs:
            cycle = ready.get(reg.index, 0)
            if cycle > worst_cycle:
                worst_cycle = cycle
                worst_kind = kinds.get(reg.index, KIND_ALU)
                blocked = True
        if not blocked:
            return None
        return worst_cycle, worst_kind

    def advance(self) -> None:
        """Move past the current instruction; mark done at the end."""
        self.pc += 1
        if self.pc >= len(self.instrs):
            self.done = True
