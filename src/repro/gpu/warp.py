"""Resident warp state.

A :class:`Warp` is one SIMT execution context: 32 lanes of one block,
an in-order program counter over a decoded instruction list
(:mod:`repro.gpu.decode`), a scoreboard of register readiness, and the
lane/block symbol values address expressions evaluate against.

The scoreboard is two flat lists indexed by register number (ready
cycle and producer kind) rather than dicts: register indices are small
and dense, and the issue loop probes the scoreboard millions of times
per kernel.  Unwritten registers read as ready-at-0 with an ALU
producer, exactly matching the seed engine's ``dict.get(index, 0)``
semantics (entry registers are ready at cycle 0 as well).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.launch import WARP_SIZE

#: Register-producer kinds, used for stall attribution.
KIND_ALU = 0
KIND_MEM = 1
KIND_CONST = 2


class Warp:
    """One resident warp executing a decoded thread program."""

    __slots__ = (
        "warp_id",
        "block",
        "dprog",
        "dec",
        "n",
        "pc",
        "reg_ready",
        "reg_kind",
        "wake",
        "done",
        "at_barrier",
        "lane_syms",
        "block_syms",
        "active_lanes",
        "width",
        "fetch_pc",
        "lane_start",
        "n_active",
        "chk",
        "civ",
        "cpi",
        "bucket",
        "cm",
        "ctxs",
        "ptx",
        "bok",
    )

    def __init__(
        self,
        warp_id: int,
        block,
        dprog,
        lane_start: int,
        block_dims: tuple[int, int, int],
        block_coords: tuple[int, int, int],
        grid_dims: tuple[int, int, int],
        active_threads: int,
    ) -> None:
        self.warp_id = warp_id
        self.block = block
        self.dprog = dprog
        self.dec = dprog.instrs
        self.n = dprog.n
        self.pc = 0
        self.reg_ready = [0] * dprog.nregs
        self.reg_kind = [0] * dprog.nregs
        self.wake = 0
        self.done = dprog.n == 0
        self.at_barrier = False
        self.width = WARP_SIZE
        self.fetch_pc = -1
        self.lane_start = lane_start
        #: Program position whose fetch/scoreboard checks already passed
        #: (both are monotonic while the warp sleeps, so a retry can skip
        #: straight to the pipe-port gate).  ``civ``/``cpi`` cache that
        #: instruction's issue interval and pipe index so a replayed
        #: pipe-gate check never re-reads the decoded tuple.
        self.chk = -1
        self.civ = 0
        self.cpi = 0
        #: Stall-reason index while asleep (-1 when awake/issued); the
        #: sampled attribution sweep reads per-reason counts instead of
        #: scanning warps.
        self.bucket = -1
        #: Pipe index whose issue-port mask (``SmWave.run``'s ``cmask``)
        #: this warp is registered in, -1 when unregistered.  Valid
        #: while the warp sits at the current pc with checks passed;
        #: cleared on issue (the only event that moves the pc).
        self.cm = -1
        #: Coalesced transactions of the current pc's global access,
        #: cached across MSHR-throttle replays (False when not cached —
        #: a real transaction list is never empty).  Deterministic per
        #: (warp, pc), so reuse is exact; cleared when the access
        #: completes.
        self.ctxs = False
        #: Vector-engine attachments (:mod:`repro.gpu.vector`): the
        #: warp's precomputed pc -> coalesced-transaction table and its
        #: program's ``batch_ok`` byte array.  Unused by the fast engine.
        self.ptx = None
        self.bok = None

        bx_dim, by_dim, _ = block_dims
        lanes = np.arange(lane_start, lane_start + WARP_SIZE, dtype=np.int64)
        threads_per_block = block_dims[0] * block_dims[1] * block_dims[2]
        active = lanes < min(active_threads, threads_per_block)
        self.active_lanes = active
        self.n_active = int(active.sum())
        # Clip out-of-block lanes to the last valid thread so address
        # evaluation stays in range; they are masked from memory anyway.
        clipped = np.minimum(lanes, threads_per_block - 1)
        tx = clipped % bx_dim
        ty = (clipped // bx_dim) % by_dim
        tz = clipped // (bx_dim * by_dim)
        self.lane_syms = {"tx": tx, "ty": ty, "tz": tz, "lin_tid": clipped}
        gx, gy, _ = grid_dims
        cx, cy, cz = block_coords
        self.block_syms = {
            "bx": cx,
            "by": cy,
            "bz": cz,
            "lin_bid": (cz * gy + cy) * gx + cx,
            "one": 1,
        }

    @property
    def active_count(self) -> int:
        """Number of lanes doing real work."""
        return self.n_active

    def current(self):
        """The decoded tuple at the program counter (None when done)."""
        if self.pc >= self.n:
            return None
        return self.dec[self.pc]

    def set_reg(self, index: int, ready_cycle: int, kind: int) -> None:
        """Scoreboard update for a produced register."""
        self.reg_ready[index] = ready_cycle
        self.reg_kind[index] = kind

    def src_block(self, now: int, srcs) -> tuple[int, int] | None:
        """Latest unready source: (ready_cycle, producer kind) or None.

        First-maximum-wins tie semantics (strict ``>``), as the seed
        engine's dict-based scoreboard implemented it.
        """
        worst_cycle = now
        worst_kind = KIND_ALU
        blocked = False
        ready = self.reg_ready
        kinds = self.reg_kind
        for index in srcs:
            cycle = ready[index]
            if cycle > worst_cycle:
                worst_cycle = cycle
                worst_kind = kinds[index]
                blocked = True
        if not blocked:
            return None
        return worst_cycle, worst_kind

    def advance(self) -> None:
        """Move past the current instruction; mark done at the end."""
        self.pc += 1
        if self.pc >= self.n:
            self.done = True
