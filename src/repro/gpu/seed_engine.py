"""Frozen reference copy of the original (seed) simulation engine.

The fast engine in :mod:`repro.gpu.sm` is a performance rewrite that is
required to be *bit-identical* to the engine this repository started
with: same issue order, same cycle counts, same weighted counters.  To
make that contract testable forever, this module preserves the seed
implementation verbatim — the per-cycle ``O(warps)`` scans, the
dict-based scoreboard, the straightforward ``_try_issue`` — behind the
same ``simulate_kernel`` / ``simulate_network`` signatures.

``tests/test_engine_equivalence.py`` runs both engines over suite
networks and asserts the resulting :class:`KernelStats` match exactly.
Nothing outside the tests (and ``repro bench --compare-seed``) should
import this module; it is deliberately slow.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.occupancy import Occupancy, compute_occupancy
from repro.gpu.scheduler import make_scheduler
from repro.isa.instruction import MemSpace
from repro.isa.opcodes import Op, Pipe
from repro.isa.program import expand_program
from repro.kernels.compile import compiled_network
from repro.kernels.launch import KernelLaunch, WARP_SIZE
from repro.kernels.program_builder import build_guard_program
from repro.memory.coalescer import coalesce
from repro.memory.hierarchy import MemoryHierarchy
from repro.profiling.stall import StallReason
from repro.profiling.stats import KernelStats

#: Result-cache version string of the seed engine (see
#: :func:`repro.gpu.engine.engine_version`).  The seed is frozen, so
#: this should never change; it exists so runs executed under
#: ``REPRO_ENGINE=seed`` key the result stores distinctly.
ENGINE_VERSION = "seed-1"

#: Register-producer kinds, used for stall attribution.
KIND_ALU = 0
KIND_MEM = 1
KIND_CONST = 2

#: Instruction-buffer refill period (instructions per fetch bubble).
_FETCH_PERIOD = 32
_FETCH_BUBBLE = 2

#: Issue interval per pipeline (cycles between issues to the same port).
_PIPE_INTERVAL = {Pipe.SP: 1, Pipe.FPU: 1, Pipe.SFU: 4, Pipe.LDST: 1, Pipe.CTRL: 0}

#: Instructions the SM front-end can issue per cycle.
_ISSUE_WIDTH = 4

_KIND_REASON = {
    KIND_ALU: StallReason.EXEC_DEPENDENCY,
    KIND_MEM: StallReason.MEMORY_DEPENDENCY,
    KIND_CONST: StallReason.CONSTANT_MEMORY_DEPENDENCY,
}

#: Wake value for warps parked at a barrier (released explicitly).
_FAR_FUTURE = 1 << 40

#: Safety valve: a wave longer than this indicates a simulator bug.
_MAX_CYCLES = 50_000_000

#: Guard program shared by all kernels (fully-inactive warps).
_GUARD_PROGRAM = build_guard_program()


class _SeedWarp:
    """One resident warp, exactly as the seed engine modelled it."""

    __slots__ = (
        "warp_id",
        "block",
        "instrs",
        "pc",
        "reg_ready",
        "reg_kind",
        "wake",
        "reason",
        "done",
        "at_barrier",
        "lane_syms",
        "block_syms",
        "active_lanes",
        "width",
        "issued_count",
        "fetch_pc",
    )

    def __init__(
        self,
        warp_id: int,
        block,
        instrs: list,
        lane_start: int,
        block_dims: tuple[int, int, int],
        block_coords: tuple[int, int, int],
        grid_dims: tuple[int, int, int],
        active_threads: int,
        entry_regs,
    ) -> None:
        self.warp_id = warp_id
        self.block = block
        self.instrs = instrs
        self.pc = 0
        self.reg_ready: dict[int, int] = {r.index: 0 for r in entry_regs}
        self.reg_kind: dict[int, int] = {r.index: KIND_ALU for r in entry_regs}
        self.wake = 0
        self.reason = None
        self.done = not instrs
        self.at_barrier = False
        self.issued_count = 0.0
        self.width = WARP_SIZE
        self.fetch_pc = -1

        bx_dim, by_dim, _ = block_dims
        lanes = np.arange(lane_start, lane_start + WARP_SIZE, dtype=np.int64)
        threads_per_block = block_dims[0] * block_dims[1] * block_dims[2]
        active = lanes < min(active_threads, threads_per_block)
        self.active_lanes = active
        clipped = np.minimum(lanes, threads_per_block - 1)
        tx = clipped % bx_dim
        ty = (clipped // bx_dim) % by_dim
        tz = clipped // (bx_dim * by_dim)
        self.lane_syms = {"tx": tx, "ty": ty, "tz": tz, "lin_tid": clipped}
        gx, gy, _ = grid_dims
        cx, cy, cz = block_coords
        self.block_syms = {
            "bx": cx,
            "by": cy,
            "bz": cz,
            "lin_bid": (cz * gy + cy) * gx + cx,
            "one": 1,
        }

    def current(self):
        """The instruction at the program counter (None when done)."""
        if self.pc >= len(self.instrs):
            return None
        return self.instrs[self.pc]

    def set_reg(self, reg, ready_cycle: int, kind: int) -> None:
        """Scoreboard update for a produced register."""
        self.reg_ready[reg.index] = ready_cycle
        self.reg_kind[reg.index] = kind

    def src_block(self, now: int, srcs) -> tuple[int, int] | None:
        """Latest unready source: (ready_cycle, producer kind) or None."""
        worst_cycle = now
        worst_kind = KIND_ALU
        blocked = False
        ready = self.reg_ready
        kinds = self.reg_kind
        for reg in srcs:
            cycle = ready.get(reg.index, 0)
            if cycle > worst_cycle:
                worst_cycle = cycle
                worst_kind = kinds.get(reg.index, KIND_ALU)
                blocked = True
        if not blocked:
            return None
        return worst_cycle, worst_kind

    def advance(self) -> None:
        """Move past the current instruction; mark done at the end."""
        self.pc += 1
        if self.pc >= len(self.instrs):
            self.done = True


class _SeedBlockCtx:
    """Barrier bookkeeping for one resident block."""

    __slots__ = ("arrived", "expected", "warps")

    def __init__(self) -> None:
        self.arrived = 0
        self.expected = 0
        self.warps: list[_SeedWarp] = []


class SeedSmWave:
    """One SM executing one resident wave — the seed issue loop."""

    def __init__(
        self,
        kernel: KernelLaunch,
        expanded: list,
        guard_expanded: list,
        sim_blocks: int,
        config: GpuConfig,
        options: SimOptions,
        hierarchy: MemoryHierarchy,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.options = options
        self.hier = hierarchy
        self.stats = KernelStats()
        self.warps: list[_SeedWarp] = []
        self.blocks: list[_SeedBlockCtx] = []

        gx, gy, gz = kernel.grid
        warps_per_block = kernel.warps_per_block
        has_barrier = any(e.op is Op.BAR for e in expanded)
        for block_index in range(sim_blocks):
            coords = (block_index % gx, (block_index // gx) % gy, block_index // (gx * gy))
            block = _SeedBlockCtx()
            self.blocks.append(block)
            for w in range(warps_per_block):
                lane_start = w * WARP_SIZE
                fully_inactive = lane_start >= kernel.active_threads
                warp = _SeedWarp(
                    warp_id=len(self.warps),
                    block=block,
                    instrs=guard_expanded if fully_inactive else expanded,
                    lane_start=lane_start,
                    block_dims=kernel.block,
                    block_coords=coords,
                    grid_dims=kernel.grid,
                    active_threads=kernel.active_threads,
                    entry_regs=kernel.program.entry_regs,
                )
                block.warps.append(warp)
                self.warps.append(warp)
                if has_barrier and not fully_inactive:
                    block.expected += 1

    # ------------------------------------------------------------------
    def run(self) -> KernelStats:
        """Execute the wave to completion; returns unscaled wave stats."""
        warps = self.warps
        live = sum(1 for w in warps if not w.done)
        if live == 0:
            self.stats.wave_cycles = 0
            return self.stats
        scheduler = make_scheduler(self.options.scheduler, warps, self.options.tlv_group)
        pipe_free = {pipe: 0 for pipe in _PIPE_INTERVAL}
        queue_penalty = self.options.queue_penalty if scheduler.manages_queues else 0
        sample = max(1, self.options.stall_sample)
        stalls = self.stats.stalls
        cycle = 0
        next_sample = 0
        bubble_until = 0

        while live > 0:
            if cycle > _MAX_CYCLES:
                raise RuntimeError(
                    f"{self.kernel.name}: wave exceeded {_MAX_CYCLES} cycles"
                )
            issued: list[_SeedWarp] = []
            if cycle >= bubble_until:
                for warp in scheduler.order(cycle):
                    if warp.done or warp.wake > cycle or warp in issued:
                        continue
                    result = self._try_issue(warp, cycle, pipe_free)
                    if result:
                        issued.append(warp)
                        scheduler.notify_issue(warp)
                        if warp.done:
                            live -= 1
                        if queue_penalty and result == "mem" and bubble_until <= cycle:
                            bubble_until = cycle + 1 + queue_penalty
                        if len(issued) >= _ISSUE_WIDTH:
                            break

            if cycle >= next_sample:
                for warp in warps:
                    if warp.done or warp in issued:
                        continue
                    if warp.wake > cycle and warp.reason is not None:
                        reason = warp.reason
                    else:
                        reason = StallReason.NOT_SELECTED
                    stalls[reason] += sample
                next_sample = cycle + sample

            if issued:
                cycle += 1
                continue
            next_wake = None
            ready_now = False
            for warp in warps:
                if warp.done:
                    continue
                if warp.wake <= cycle:
                    ready_now = True
                elif next_wake is None or warp.wake < next_wake:
                    next_wake = warp.wake
            if ready_now and bubble_until > cycle:
                cycle = bubble_until
            elif next_wake is not None:
                cycle = max(cycle + 1, next_wake)
            else:
                cycle += 1

        self.stats.wave_cycles = cycle
        self.stats.resident_warps = len(warps)
        return self.stats

    # ------------------------------------------------------------------
    def _try_issue(self, warp: _SeedWarp, now: int, pipe_free: dict) -> str | None:
        """Attempt to issue *warp*'s next instruction at cycle *now*."""
        instr = warp.current()
        stats = self.stats

        if warp.at_barrier:
            warp.reason = StallReason.SYNC
            warp.wake = _FAR_FUTURE
            return None
        if instr.op is Op.BAR:
            block = warp.block
            stats.count_issue(instr.pipe, instr.weight)
            warp.advance()
            block.arrived += 1
            if block.arrived >= block.expected:
                for other in block.warps:
                    if other.at_barrier:
                        other.at_barrier = False
                        other.wake = now + 1
                block.arrived = 0
                warp.wake = now + 1
            else:
                warp.at_barrier = True
                warp.reason = StallReason.SYNC
                warp.wake = _FAR_FUTURE
            return "ctrl"

        if warp.pc != warp.fetch_pc and warp.pc % _FETCH_PERIOD == 0 and warp.pc:
            warp.fetch_pc = warp.pc
            warp.reason = StallReason.INST_FETCH
            warp.wake = now + _FETCH_BUBBLE
            return None

        blocked = warp.src_block(now, instr.srcs)
        if blocked is not None:
            ready_cycle, kind = blocked
            warp.reason = _KIND_REASON[kind]
            warp.wake = ready_cycle
            return None

        pipe = instr.pipe
        interval = _PIPE_INTERVAL[pipe]
        if interval and pipe_free[pipe] > now:
            warp.reason = StallReason.PIPE_BUSY
            warp.wake = pipe_free[pipe]
            return None

        weight = instr.weight
        issued_kind = "alu"
        if instr.is_mem:
            issued_kind = "mem"
            space = instr.space
            if space in (MemSpace.GLOBAL, MemSpace.LOCAL) and instr.addr is not None:
                addrs = instr.addr.evaluate(warp, instr.loop_env)
                addrs = addrs[warp.active_lanes]
                if addrs.size:
                    txs = coalesce(addrs, instr.width_bytes)
                    if instr.is_load:
                        ready_cycle = self.hier.load(now, txs, weight)
                        if ready_cycle is None:
                            warp.reason = StallReason.MEMORY_THROTTLE
                            release = self.hier.mshr.next_release()
                            warp.wake = max(
                                now + 1, release if release is not None else now + 8
                            )
                            return None
                        warp.set_reg(instr.dst, ready_cycle, KIND_MEM)
                    else:
                        self.hier.store(now, txs, weight)
            elif space is MemSpace.SHARED:
                ready = self.hier.shared(now, weight)
                if instr.is_load:
                    warp.set_reg(instr.dst, ready, KIND_MEM)
            elif space in (MemSpace.CONST, MemSpace.PARAM):
                ready, _missed = self.hier.const(now, weight)
                if instr.is_load:
                    warp.set_reg(instr.dst, ready, KIND_CONST)
            elif instr.is_load and instr.dst is not None:
                warp.set_reg(instr.dst, now + self.hier.lat_l1, KIND_MEM)
        elif instr.dst is not None:
            warp.set_reg(instr.dst, now + instr.latency, KIND_ALU)
            issued_kind = "alu"
        else:
            issued_kind = "ctrl"

        if interval:
            pipe_free[pipe] = now + interval
        stats.count_issue(pipe, weight)
        stats.rf_reads += len(instr.srcs) * weight
        if instr.dst is not None:
            stats.rf_writes += weight
        warp.issued_count += weight
        warp.advance()
        warp.reason = None
        warp.wake = now + 1
        return issued_kind


# ----------------------------------------------------------------------
# Kernel/network drivers, as the seed simulator.py drove them.
# ----------------------------------------------------------------------
def _make_hierarchy(config: GpuConfig) -> MemoryHierarchy:
    return MemoryHierarchy(
        l1_size=config.l1_size,
        l2_size=config.l2_size,
        mshr_entries=config.mshr_entries,
        dram_latency=config.dram_latency,
        dram_bytes_per_cycle=config.dram_bytes_per_cycle_per_sm,
    )


_INPUT_SLOT = (1 << 30, 2 << 30)


def _warm_shared_input(wave: SeedSmWave, hierarchy: MemoryHierarchy) -> None:
    lo, hi = _INPUT_SLOT[0] - (1 << 24), _INPUT_SLOT[1]
    for warp in wave.warps:
        for instr in warp.instrs:
            if not (instr.is_load and instr.addr is not None):
                continue
            if not (lo <= instr.addr.base < hi):
                continue
            addrs = instr.addr.evaluate(warp, instr.loop_env)
            addrs = addrs[warp.active_lanes]
            if addrs.size:
                for tx in coalesce(addrs, instr.width_bytes):
                    hierarchy.l2.access(int(tx), weight=0.0)


def simulate_kernel(
    kernel: KernelLaunch, config: GpuConfig, options: SimOptions | None = None
):
    """Seed-engine twin of :func:`repro.gpu.simulator.simulate_kernel`."""
    from repro.gpu.simulator import KernelResult

    options = options or SimOptions()
    occupancy = compute_occupancy(kernel, config)
    sim_blocks = occupancy.blocks
    if options.max_sim_blocks is not None:
        sim_blocks = max(1, min(sim_blocks, options.max_sim_blocks))

    expanded = expand_program(kernel.program, options.max_trips, options.max_outer_trips)
    guard_expanded = expand_program(_GUARD_PROGRAM)
    hierarchy = _make_hierarchy(config)
    wave = SeedSmWave(kernel, expanded, guard_expanded, sim_blocks, config, options, hierarchy)
    if kernel.shared_input and kernel.total_blocks > sim_blocks:
        _warm_shared_input(wave, hierarchy)
    stats = wave.run()

    dynamic = kernel.program.dynamic_count()
    sample_factor = dynamic / max(1, len(expanded))
    block_factor = kernel.total_blocks / sim_blocks
    waves = math.ceil(kernel.total_blocks / (occupancy.blocks * config.num_sms))

    stats.waves = waves
    stats.cycles = (
        stats.wave_cycles * sample_factor * waves + config.launch_overhead_cycles
    )
    stats.scale_events(block_factor)
    for reason in stats.stalls:
        stats.stalls[reason] *= sample_factor
    stats.l1_accesses = hierarchy.l1.stats.accesses * block_factor
    stats.l1_misses = hierarchy.l1.stats.misses * block_factor
    stats.l2_accesses = hierarchy.l2.stats.accesses * block_factor
    stats.l2_misses = hierarchy.l2.stats.misses * block_factor
    stats.dram_bytes = hierarchy.dram.bytes_served * block_factor
    stats.load_transactions = hierarchy.load_transactions * block_factor
    stats.store_transactions = hierarchy.store_transactions * block_factor
    stats.shared_accesses = hierarchy.shared_accesses * block_factor
    stats.const_accesses = hierarchy.const_accesses * block_factor
    stats.active_sms = min(
        config.num_sms, math.ceil(kernel.total_blocks / occupancy.blocks)
    )
    stats.resident_warps = occupancy.warps

    return KernelResult(
        kernel=kernel,
        stats=stats,
        occupancy=occupancy,
        sample_factor=sample_factor,
        block_factor=block_factor,
    )


def simulate_network(
    name: str, config: GpuConfig, options: SimOptions | None = None
):
    """Seed-engine twin of :func:`repro.gpu.simulator.simulate_network`."""
    from repro.gpu.simulator import KernelResult, NetworkResult, _copy_stats

    options = options or SimOptions()
    result = NetworkResult(network=name, config=config, options=options)
    cache: dict[str, object] = {}
    for kernel in compiled_network(name):
        signature = kernel.signature()
        hit = cache.get(signature)
        if hit is None:
            hit = simulate_kernel(kernel, config, options)
            cache[signature] = hit
        else:
            hit = KernelResult(
                kernel=kernel,
                stats=_copy_stats(hit.stats),
                occupancy=hit.occupancy,
                sample_factor=hit.sample_factor,
                block_factor=hit.block_factor,
            )
        result.kernels.append(hit)
    return result
