"""Warp schedulers: GTO, LRR and TLV (Figures 15-16).

The paper evaluates three GPGPU-Sim schedulers:

* **GTO** (greedy-then-oldest): keep issuing from the same warp until it
  stalls, then fall back to the oldest ready warp.  GPGPU-Sim's default.
* **LRR** (loose round-robin): rotate through resident warps.
* **TLV** (two-level): a small active fetch group is scheduled
  round-robin; warps that stall on long-latency operations are swapped
  out to a pending pool.

GTO and TLV manage ready/pending queues; the paper attributes LRR's win
on convolution-heavy networks to avoiding that queue movement when data
comes back quickly from the caches (Observation 12).  The queue cost is
modelled as a per-memory-issue scheduler bubble (``SimOptions.queue_penalty``)
charged by GTO/TLV only.

A note on the ``order`` generators: they re-read scheduler state
(``_current``, ``_next``, ``_rr``, the TLV queues) *live*, per yield,
while ``notify_issue`` mutates that state mid-consumption.  Those
interleavings are part of the modelled policies and the fast engine in
:mod:`repro.gpu.sm` depends on reproducing them exactly — it inlines
GTO (whose interleaving provably reduces to "current first, then oldest
ready") as bitmask iteration, and drives LRR/TLV through these
generators unchanged.  Do not "simplify" the generators into
pre-materialized lists; that changes issue order.
"""

from __future__ import annotations

from typing import Iterator

from repro.gpu.warp import Warp


class Scheduler:
    """Base scheduler interface over a fixed list of resident warps."""

    #: Whether this policy manages ready/pending queues (pays the
    #: per-memory-issue bookkeeping bubble).
    manages_queues = False

    def __init__(self, warps: list[Warp]) -> None:
        self.warps = warps

    def order(self, now: int) -> Iterator[Warp]:
        """Warps in the order the policy would consider them."""
        raise NotImplementedError

    def notify_issue(self, warp: Warp) -> None:
        """Called after *warp* issues one instruction."""


class GtoScheduler(Scheduler):
    """Greedy-then-oldest: stick with the last warp, else oldest first."""

    manages_queues = True

    def __init__(self, warps: list[Warp]) -> None:
        super().__init__(warps)
        self._current: Warp | None = None

    def order(self, now: int) -> Iterator[Warp]:
        if self._current is not None and not self._current.done:
            yield self._current
        for warp in self.warps:  # warp_id order == age order
            if warp is not self._current:
                yield warp

    def notify_issue(self, warp: Warp) -> None:
        self._current = warp


class LrrScheduler(Scheduler):
    """Loose round-robin: continue from just past the last issuer."""

    def __init__(self, warps: list[Warp]) -> None:
        super().__init__(warps)
        self._next = 0

    def order(self, now: int) -> Iterator[Warp]:
        n = len(self.warps)
        for offset in range(n):
            yield self.warps[(self._next + offset) % n]

    def notify_issue(self, warp: Warp) -> None:
        self._next = (self.warps.index(warp) + 1) % len(self.warps)


class TlvScheduler(Scheduler):
    """Two-level: round-robin inside a small active fetch group.

    A warp that cannot issue is rotated out of the active group and a
    pending warp promoted; like GTO this queue movement pays the
    bookkeeping bubble on memory issues.
    """

    manages_queues = True

    def __init__(self, warps: list[Warp], group_size: int = 8) -> None:
        super().__init__(warps)
        self.group_size = max(1, group_size)
        self._active = list(range(min(self.group_size, len(warps))))
        self._pending = list(range(len(self._active), len(warps)))
        self._rr = 0

    def order(self, now: int) -> Iterator[Warp]:
        # Drop finished warps from the active group, promote pending.
        self._active = [i for i in self._active if not self.warps[i].done]
        while len(self._active) < self.group_size and self._pending:
            candidate = self._pending.pop(0)
            if not self.warps[candidate].done:
                self._active.append(candidate)
        n = len(self._active)
        for offset in range(n):
            index = self._active[(self._rr + offset) % n]
            yield self.warps[index]
        # Second level: pending warps considered after the active group.
        for index in self._pending:
            warp = self.warps[index]
            if not warp.done:
                yield warp

    def notify_issue(self, warp: Warp) -> None:
        index = self.warps.index(warp)
        if index in self._active:
            self._rr = (self._active.index(index) + 1) % max(1, len(self._active))
        else:
            # Promoted from pending: swap with the head of the group.
            self._pending.remove(index)
            if self._active:
                demoted = self._active.pop(0)
                self._pending.append(demoted)
            self._active.append(index)


def make_scheduler(name: str, warps: list[Warp], tlv_group: int = 8) -> Scheduler:
    """Instantiate the named scheduler over *warps*."""
    name = name.lower()
    if name == "gto":
        return GtoScheduler(warps)
    if name == "lrr":
        return LrrScheduler(warps)
    if name == "tlv":
        return TlvScheduler(warps, tlv_group)
    raise ValueError(f"unknown scheduler {name!r} (expected gto, lrr or tlv)")
