"""The streaming-multiprocessor issue loop (fast engine).

Simulates one SM running one resident wave of a kernel: warps issue in
scheduler order through scoreboard, pipeline-port and memory-system
checks, and every non-issue warp-cycle is attributed to an nvprof stall
reason (Figure 7).  The loop is event-driven — when no warp can issue it
jumps to the next wake-up — and stall attribution is sampled every
``SimOptions.stall_sample`` cycles, exactly as nvprof itself samples.

This is a performance rewrite of the original loop (kept verbatim in
:mod:`repro.gpu.seed_engine`) and is **bit-identical** to it:

* The per-cycle ``for warp in warps`` wake/stall sweeps are replaced by
  an incremental ready set (a bitmask over warp ids), a ``nxt`` list for
  warps waking exactly one cycle out (the overwhelmingly common case)
  and a min-heap of ``(wake, warp_id)`` events for longer sleeps.
  Barrier-parked warps live in none of these; the releasing arrival
  re-inserts them.  Heap entries are never stale: a sleeping warp's wake
  can only be rewritten by its own issue or by a barrier release, and
  parked warps are never pushed.
* Instructions come pre-decoded (:mod:`repro.gpu.decode`) as flat
  tuples, so an issue attempt does no attribute/enum/dict lookups.
* The sampled stall sweep reads per-reason counts of sleeping warps
  (``bcnt``) plus the ready-set population instead of scanning warps.
* The GTO policy (current warp first, then oldest ready) is inlined as
  bitmask iteration.  LRR/TLV keep the seed scheduler objects: their
  generators' lazy consumption and live state reads are part of the
  modelled policy, and they only run in the Fig 15/16 sweeps.
* Fetch and scoreboard checks are skipped on replay (``Warp.chk``):
  programs are straight-line and a warp's scoreboard only changes on
  its own issues, so both checks are monotonic while the warp sleeps.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.decode import (
    DecodedProgram,
    K_ALU,
    K_CMEM,
    K_CTRL,
    K_GMEM,
    K_MEMLOAD,
    K_SMEM,
    PIPES,
)
from repro.gpu.scheduler import GtoScheduler, make_scheduler
from repro.gpu.warp import Warp
from repro.kernels.launch import KernelLaunch, WARP_SIZE
from repro.memory.coalescer import TRANSACTION_BYTES
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.tracer import CYCLES, get_tracer
from repro.profiling.stall import StallReason
from repro.profiling.stats import KernelStats

#: Bumped whenever an engine change could alter simulated numbers; part
#: of the persistent result-cache key (:mod:`repro.runs.store`).
#: "fast-2.1": canonical signatures + simulation dedup (PR 6) — numbers
#: are bit-identical to "fast-2" but signatures changed meaning, so old
#: store entries must not alias the new keys.
ENGINE_VERSION = "fast-2.1"

#: Cycles lost to an instruction-buffer refill.
_FETCH_BUBBLE = 2

#: Instructions the SM front-end can issue per cycle.
_ISSUE_WIDTH = 4

#: Wake value for warps parked at a barrier (released explicitly).
_FAR_FUTURE = 1 << 40

#: Safety valve: a wave longer than this indicates a simulator bug.
_MAX_CYCLES = 50_000_000

#: log2 of the coalescing granularity (128-byte transactions -> 7).
_TX_SHIFT = TRANSACTION_BYTES.bit_length() - 1

_REASONS = tuple(StallReason)
_RI = {reason: i for i, reason in enumerate(_REASONS)}
_R_INST_FETCH = _RI[StallReason.INST_FETCH]
_R_SYNC = _RI[StallReason.SYNC]
_R_PIPE_BUSY = _RI[StallReason.PIPE_BUSY]
_R_THROTTLE = _RI[StallReason.MEMORY_THROTTLE]
_R_NOT_SELECTED = _RI[StallReason.NOT_SELECTED]
#: Scoreboard producer kind (KIND_ALU/KIND_MEM/KIND_CONST) -> reason index.
_KIND_REASON_I = (
    _RI[StallReason.EXEC_DEPENDENCY],
    _RI[StallReason.MEMORY_DEPENDENCY],
    _RI[StallReason.CONSTANT_MEMORY_DEPENDENCY],
)


class _BlockCtx:
    """Barrier bookkeeping for one resident block."""

    __slots__ = ("arrived", "expected", "warps")

    def __init__(self) -> None:
        self.arrived = 0
        self.expected = 0
        self.warps: list[Warp] = []


def _gmem_txs(warp: Warp, pc: int, gmem) -> "list[int] | tuple | None":
    """Coalesced transaction addresses for one global/local access.

    Pure-int reimplementation of ``AddrExpr.evaluate`` +
    ``coalesce``: the decode-time constant plus the per-warp scalar
    terms gives one scalar; the cached, deduplicated thread parts give
    the lane spread; line numbers are collected as a set (union of
    first and straddle-last lines, exactly the coalescer's unique of
    concatenated first/last arrays) and returned sorted.  ``None`` when
    the warp has no active lanes (the seed skipped memory entirely but
    still issued the instruction).
    """
    if warp.n_active == 0:
        return None
    scalar = gmem.const
    for term in gmem.bterms:
        scalar += int(term.apply(warp.block_syms[term.sym]))
    w1 = gmem.w1
    if gmem.tterms:
        # Line sets are translation-invariant in whole lines: resolve
        # the cached relative pattern for scalar's in-line offset, then
        # translate by the whole-line part.
        q = scalar >> _TX_SHIFT
        rem = scalar - (q << _TX_SHIFT)
        dprog = warp.dprog
        lines = dprog._tlines.get((pc, warp.lane_start, rem))
        if lines is None:
            lines = dprog.tx_lines(pc, gmem, warp, rem)
        if q:
            base = q << _TX_SHIFT
            return [line + base for line in lines]
        # The cached tuple is already in bytes; callers only read it.
        return lines
    first = scalar >> _TX_SHIFT
    if w1:
        last = (scalar + w1) >> _TX_SHIFT
        if last != first:
            return [first << _TX_SHIFT, last << _TX_SHIFT]
    return [first << _TX_SHIFT]


class SmWave:
    """One SM executing one resident wave of a kernel."""

    def __init__(
        self,
        kernel: KernelLaunch,
        dprog: DecodedProgram,
        guard_dprog: DecodedProgram,
        sim_blocks: int,
        config: GpuConfig,
        options: SimOptions,
        hierarchy: MemoryHierarchy,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.options = options
        self.hier = hierarchy
        self.stats = KernelStats()
        self.warps: list[Warp] = []
        self.blocks: list[_BlockCtx] = []
        #: (warp_id, pc) -> transactions computed by warm_shared_input,
        #: reused (and popped) when the load actually issues.
        self._warm_txs: dict = {}

        gx, gy, gz = kernel.grid
        warps_per_block = kernel.warps_per_block
        has_barrier = dprog.has_barrier
        for block_index in range(sim_blocks):
            coords = (block_index % gx, (block_index // gx) % gy, block_index // (gx * gy))
            block = _BlockCtx()
            self.blocks.append(block)
            for w in range(warps_per_block):
                lane_start = w * WARP_SIZE
                fully_inactive = lane_start >= kernel.active_threads
                warp = Warp(
                    warp_id=len(self.warps),
                    block=block,
                    dprog=guard_dprog if fully_inactive else dprog,
                    lane_start=lane_start,
                    block_dims=kernel.block,
                    block_coords=coords,
                    grid_dims=kernel.grid,
                    active_threads=kernel.active_threads,
                )
                block.warps.append(warp)
                self.warps.append(warp)
                if has_barrier and not fully_inactive:
                    block.expected += 1

    # ------------------------------------------------------------------
    def warm_shared_input(self) -> None:
        """Pre-touch shared input lines in L2 on behalf of unsimulated blocks.

        When every block of a grid reads the same input tensor
        (``KernelLaunch.shared_input``), the blocks running on the other
        SMs — which the one-SM simulation does not execute — would have
        brought those lines into the shared L2 already.  This replays
        the simulated warps' input-slot loads against the L2 tag store
        with zero statistic weight, so the measured wave sees the
        sharing without the counters being polluted.  The computed
        transactions are kept for reuse at issue time.
        """
        l2_access = self.hier.l2.access
        wtx = self._warm_txs
        for w in self.warps:
            dec = w.dec
            for pc in w.dprog.warm_pcs:
                txs = _gmem_txs(w, pc, dec[pc][4])
                if txs:
                    for tx in txs:
                        l2_access(tx, weight=0.0)
                    wtx[(w.warp_id, pc)] = txs

    # ------------------------------------------------------------------
    def run(self) -> KernelStats:
        """Execute the wave to completion; returns unscaled wave stats."""
        warps = self.warps
        live = sum(1 for w in warps if not w.done)
        if live == 0:
            self.stats.wave_cycles = 0
            return self.stats

        scheduler = make_scheduler(self.options.scheduler, warps, self.options.tlv_group)
        gto = type(scheduler) is GtoScheduler
        notify = scheduler.notify_issue
        queue_penalty = self.options.queue_penalty if scheduler.manages_queues else 0
        sample = max(1, self.options.stall_sample)

        hier = self.hier
        hier_load = hier.load
        hier_store = hier.store
        mshr_release = hier.mshr.next_release
        lat_l1 = hier.lat_l1
        # Shared/constant accesses inlined from MemoryHierarchy: a fixed
        # scratchpad latency and a single hot constant line (first touch
        # misses to L2 latency, the rest hit), with the weighted access
        # counters accumulated locally in the same order and folded back
        # after the loop — bit-identical, without two method calls per
        # access on the hottest kernels.
        lat_shared = hier.lat_shared
        lat_const = hier.lat_const
        lat_l2 = hier.lat_l2
        shared_acc = 0.0
        const_acc = 0.0
        cc_hot = hier.const_cache.contains(0)
        wtx = self._warm_txs
        kernel_name = self.kernel.name

        # Warp-phase tracing (repro.obs): gated on one local bool; when
        # off, the issue loop pays nothing beyond these two reads.  When
        # on, sleep phases are buffered as plain tuples at the (rare)
        # sleep/park/done sites and converted to spans after the loop.
        tracer = get_tracer()
        trace = tracer.enabled and tracer.warps
        tev: list = []         # (start, end, reason_index, warp_id)
        park_at: dict = {}     # warp_id -> barrier park cycle
        done_at: dict = {}     # warp_id -> retirement cycle

        # Per-pipe next-free cycle, indexed like decode.PIPES.
        pf = [0, 0, 0, 0, 0]
        # Per-pipe bitmask of warps whose fetch/scoreboard checks passed
        # for their current pc and whose instruction needs that issue
        # port (Warp.cm tracks membership).  When a port is busy, every
        # ready member would fail the pipe gate with wake == cycle + 1
        # and no state change — so on non-sampled GTO cycles whole
        # cohorts are herded with one mask operation instead of being
        # tried warp by warp.
        cmask = [0, 0, 0, 0, 0]
        # Ready set: bit i set <=> warps[i] is awake, not done and not
        # yet considered this cycle.  A warp leaves on try (re-entering
        # via `nxt` or the heap when it fails, sleeps or issues) and on
        # barrier parking (re-entering on release).  Warps in the mask
        # always have bucket == -1.
        mask = 0
        for w in warps:
            if not w.done:
                mask |= 1 << w.warp_id
        heap: list = []  # (wake, warp_id) for wakes beyond cycle + 1
        nxt: list = []   # barrier-released warps waking at cycle + 1
        imask = 0        # warps that issued this cycle (ready again next
        #                  cycle; their buckets are already -1, so they
        #                  rejoin `mask` with no bucket bookkeeping)
        nreasons = len(_REASONS)
        bcnt = [0] * nreasons      # sleeping warps per stall reason
        sacc = [0] * nreasons      # sampled stall accumulators
        pacc = [0.0] * len(PIPES)  # issued weight per pipe
        issued_acc = 0.0
        rf_reads = 0.0
        rf_writes = 0.0

        cur = None       # GTO: warp that issued most recently
        parked = 0       # non-done warps parked at a barrier
        sync_parked = 0  # of those, parked this very cycle (the seed
        #                  sweep treats same-cycle parkers as issued)
        herd = 0         # warps that failed with wake == cycle + 1 on a
        #                  cycle with no stall sweep: nothing can observe
        #                  their bucket/wake before they retry next
        #                  cycle, so all bookkeeping is skipped and the
        #                  bit rejoins `mask` right after the advance.
        cycle = 0
        next_sample = 0
        bubble_until = 0

        while live > 0:
            if cycle > _MAX_CYCLES:
                raise RuntimeError(
                    f"{kernel_name}: wave exceeded {_MAX_CYCLES} cycles"
                )
            sampling = cycle >= next_sample
            nissued = 0
            if cycle >= bubble_until:
                nxtc = cycle + 1
                sdrop = 0
                if gto:
                    # Inlined GTO: current warp first, then remaining
                    # ready warps oldest (lowest id) first.  Equivalent
                    # to the seed generator: its mid-loop `_current`
                    # re-reads only ever re-yield warps that are no
                    # longer ready, which the seed loop skipped anyway.
                    # `pend` snapshots the ready set; `cur` keeps its
                    # pend bit, caught by the mask test after it is
                    # tried first.
                    it = None
                    pend = mask
                    # Bulk-drop cohorts of ports freeing exactly next
                    # cycle: every member would fail the pipe gate with
                    # wake == cycle + 1 and no state change.  Only such
                    # ports qualify — members of a longer-busy port
                    # (SFU, interval 4) sleep past cycle + 1 and need
                    # the full bookkeeping path.  On sampled cycles the
                    # drop is recorded in `sdrop` and the stall credit
                    # each member would have earned is reconstructed
                    # after the candidate walk (see below); `cur` is
                    # kept out because it is tried first, ahead of the
                    # ascending order the reconstruction assumes.
                    drop = 0
                    if pf[0] == nxtc:
                        drop |= cmask[0]
                    if pf[1] == nxtc:
                        drop |= cmask[1]
                    if pf[2] == nxtc:
                        drop |= cmask[2]
                    if pf[3] == nxtc:
                        drop |= cmask[3]
                    drop &= pend
                    if drop:
                        if sampling:
                            if cur is not None:
                                drop &= ~(1 << cur.warp_id)
                            sdrop = drop
                        # Equivalent to trying each one: pipe-gate
                        # fail, wake next cycle, nothing observable.
                        herd |= drop
                        mask &= ~drop
                        pend &= ~drop
                    first = (
                        cur if cur is not None and pend >> cur.warp_id & 1 else None
                    )
                else:
                    it = scheduler.order(cycle)
                    first = None
                    pend = 0
                while True:
                    if it is not None:
                        w = next(it, None)
                        if w is None:
                            break
                        bit = 1 << w.warp_id
                        if not mask & bit:
                            continue
                    elif first is not None:
                        w = first
                        first = None
                        bit = 1 << w.warp_id
                    elif pend:
                        bit = pend & -pend
                        pend ^= bit
                        if not mask & bit:
                            continue  # `cur`, already tried first
                        w = warps[bit.bit_length() - 1]
                    else:
                        break
                    mask ^= bit
                    pc = w.pc
                    if w.chk == pc:
                        # Replay: fetch and scoreboard passed earlier
                        # (both monotonic while the warp slept); only
                        # the pipe gate can block, and its inputs are
                        # cached on the warp, so the thundering-herd
                        # retry path never touches the decoded tuple.
                        rec = None
                        iv = w.civ
                        rpi = w.cpi
                    else:
                        rec = w.dec[pc]
                        if not rec[0]:
                            # ---- barrier: issue once, park till release
                            weight = rec[3]
                            pi = rec[5]
                            issued_acc += weight
                            pacc[pi] += weight
                            npc = pc + 1
                            w.pc = npc
                            if npc >= w.n:
                                w.done = True
                                live -= 1
                                if trace:
                                    done_at[w.warp_id] = cycle
                            blk = w.block
                            blk.arrived += 1
                            if blk.arrived >= blk.expected:
                                # Last arrival releases everyone.
                                # Released warps keep their SYNC bucket
                                # until the drain: the seed left
                                # `reason` set and the sweep still
                                # attributes them to SYNC for the
                                # release cycle.
                                for o in blk.warps:
                                    if o.at_barrier:
                                        o.at_barrier = False
                                        if trace:
                                            ps = park_at.pop(o.warp_id, None)
                                            if ps is not None:
                                                tev.append((ps, cycle, _R_SYNC, o.warp_id))
                                        if not o.done:
                                            nxt.append(o)
                                            parked -= 1
                                blk.arrived = 0
                                if not w.done:
                                    imask |= bit
                            else:
                                w.at_barrier = True
                                if not w.done:
                                    w.bucket = _R_SYNC
                                    bcnt[_R_SYNC] += 1
                                    sync_parked += 1
                                    parked += 1
                                    if trace:
                                        park_at[w.warp_id] = cycle
                            nissued += 1
                            if gto:
                                cur = w
                            else:
                                notify(w)
                            if nissued >= _ISSUE_WIDTH:
                                break
                            continue
                        # Fetch bubble at i-buffer refill boundaries.
                        if rec[8] and w.fetch_pc != pc:
                            w.fetch_pc = pc
                            w.bucket = _R_INST_FETCH
                            bcnt[_R_INST_FETCH] += 1
                            heappush(heap, (cycle + _FETCH_BUBBLE, w.warp_id))
                            if trace:
                                tev.append(
                                    (cycle, cycle + _FETCH_BUBBLE,
                                     _R_INST_FETCH, w.warp_id)
                                )
                            continue
                        # Scoreboard: all sources ready?  First maximum
                        # wins the attribution (strict >), as in the
                        # seed's dict scoreboard.
                        srcs = rec[1]
                        if srcs:
                            ready = w.reg_ready
                            worst = cycle
                            kidx = 0
                            for r in srcs:
                                c = ready[r]
                                if c > worst:
                                    worst = c
                                    kidx = w.reg_kind[r]
                            if worst > cycle:
                                if worst == nxtc:
                                    herd |= bit
                                    if sampling:
                                        sacc[_KIND_REASON_I[kidx]] += sample
                                else:
                                    ri = _KIND_REASON_I[kidx]
                                    w.bucket = ri
                                    bcnt[ri] += 1
                                    heappush(heap, (worst, w.warp_id))
                                    if trace:
                                        tev.append((cycle, worst, ri, w.warp_id))
                                continue
                        iv = rec[6]
                        rpi = rec[5]
                    # Pipeline port availability.
                    if iv:
                        free = pf[rpi]
                        if free > cycle:
                            # Record that fetch and scoreboard passed
                            # (both monotonic while the warp sleeps), so
                            # the replay skips straight back to this
                            # gate.  Deferred to the fail paths: issuing
                            # warps — the common case — never need it.
                            w.chk = pc
                            w.civ = iv
                            w.cpi = rpi
                            if w.cm < 0:
                                w.cm = rpi
                                cmask[rpi] |= bit
                            if free == nxtc:
                                herd |= bit
                                if sampling:
                                    sacc[_R_PIPE_BUSY] += sample
                            else:
                                w.bucket = _R_PIPE_BUSY
                                bcnt[_R_PIPE_BUSY] += 1
                                heappush(heap, (free, w.warp_id))
                                if trace:
                                    tev.append(
                                        (cycle, free, _R_PIPE_BUSY, w.warp_id)
                                    )
                            continue
                    # ---- issue ----------------------------------
                    if rec is None:
                        rec = w.dec[pc]
                    kind, srcs, dst, weight, aux, pi, iv, rfr, fetch = rec
                    mem = False
                    if kind == K_ALU:
                        w.reg_ready[dst] = cycle + aux
                        w.reg_kind[dst] = 0  # KIND_ALU
                    elif kind == K_GMEM:
                        mem = True
                        txs = w.ctxs
                        if txs is False:
                            if wtx:
                                txs = wtx.pop((w.warp_id, pc), None)
                                if txs is None:
                                    txs = _gmem_txs(w, pc, aux)
                            else:
                                txs = _gmem_txs(w, pc, aux)
                        if txs is not None:
                            if aux.is_load:
                                rc = hier_load(cycle, txs, weight)
                                if rc is None:
                                    # MSHRs exhausted: replay later with
                                    # the same (deterministic) coalesced
                                    # transactions, skipping straight to
                                    # the pipe gate.
                                    w.ctxs = txs
                                    w.chk = pc
                                    w.civ = iv
                                    w.cpi = pi
                                    rel = mshr_release()
                                    wk = rel if rel is not None else cycle + 8
                                    if wk < nxtc:
                                        wk = nxtc
                                    if wk == nxtc:
                                        herd |= bit
                                        if sampling:
                                            sacc[_R_THROTTLE] += sample
                                    else:
                                        w.bucket = _R_THROTTLE
                                        bcnt[_R_THROTTLE] += 1
                                        heappush(heap, (wk, w.warp_id))
                                        if trace:
                                            tev.append(
                                                (cycle, wk, _R_THROTTLE,
                                                 w.warp_id)
                                            )
                                    continue
                                w.ctxs = False
                                w.reg_ready[dst] = rc
                                w.reg_kind[dst] = 1  # KIND_MEM
                            else:
                                hier_store(cycle, txs, weight)
                    elif kind == K_CTRL:
                        pass
                    elif kind == K_CMEM:
                        mem = True
                        const_acc += weight
                        if cc_hot:
                            rc = cycle + lat_const
                        else:
                            cc_hot = True
                            rc = cycle + lat_l2
                        if aux:  # is_load
                            w.reg_ready[dst] = rc
                            w.reg_kind[dst] = 2  # KIND_CONST
                    elif kind == K_SMEM:
                        mem = True
                        shared_acc += weight
                        rc = cycle + lat_shared
                        if aux:  # is_load
                            w.reg_ready[dst] = rc
                            w.reg_kind[dst] = 1  # KIND_MEM
                    elif kind == K_MEMLOAD:
                        mem = True
                        w.reg_ready[dst] = cycle + lat_l1
                        w.reg_kind[dst] = 1  # KIND_MEM
                    else:  # K_MEMOP: no register effect
                        mem = True
                    if iv:
                        pf[pi] = cycle + iv
                        if iv == 1:
                            # Port now busy for one cycle: herd its
                            # whole waiting cohort at once (each
                            # member would fail the gate with
                            # wake == cycle + 1).  `& mask` skips
                            # already-tried warps (`cur`'s stale pend
                            # bit) so sampled drops credit each warp
                            # exactly once.
                            d = pend & cmask[pi] & mask
                            if d:
                                herd |= d
                                mask &= ~d
                                pend &= ~d
                                if sampling:
                                    sdrop |= d
                    cmi = w.cm
                    if cmi >= 0:
                        cmask[cmi] &= ~bit
                        w.cm = -1
                    issued_acc += weight
                    pacc[pi] += weight
                    rf_reads += rfr
                    if dst >= 0:
                        rf_writes += weight
                    npc = pc + 1
                    w.pc = npc
                    if npc >= w.n:
                        w.done = True
                        live -= 1
                        if trace:
                            done_at[w.warp_id] = cycle
                    else:
                        imask |= bit
                    nissued += 1
                    if gto:
                        cur = w
                    else:
                        notify(w)
                    # Queue-management bubble on memory issues
                    # (GTO/TLV only): the mechanism behind LRR's win
                    # on cache-friendly convolutions (Observation 12).
                    if mem and queue_penalty and bubble_until <= cycle:
                        bubble_until = cycle + 1 + queue_penalty
                    if nissued >= _ISSUE_WIDTH:
                        break
                if sdrop:
                    # Reconstruct the stall credit each sampled-cycle
                    # dropped cohort member would have earned had it
                    # been walked individually.  Candidates are popped
                    # in ascending warp id (after `cur`, which is never
                    # in `sdrop`), so when the issue-width break fired
                    # at warp `w`, exactly the members below `w` would
                    # have been tried (pipe-gate fail -> PIPE_BUSY); the
                    # rest were never reached and count NOT_SELECTED,
                    # as the mask sweep below would have counted them.
                    n = sdrop.bit_count()
                    if nissued >= _ISSUE_WIDTH:
                        nb = (sdrop & ((1 << w.warp_id) - 1)).bit_count()
                        sacc[_R_PIPE_BUSY] += nb * sample
                        sacc[_R_NOT_SELECTED] += (n - nb) * sample
                    else:
                        sacc[_R_PIPE_BUSY] += n * sample

            # Sampled stall attribution, nvprof style: every `sample`
            # cycles each non-issuing resident warp contributes one
            # sample of its current stall reason.  Ready-but-unselected
            # warps are exactly the remaining mask; sleepers are the
            # per-reason bucket counts; warps that parked at a barrier
            # this very cycle issued it, so the seed skipped them.
            # Herd warps already credited their reason directly at
            # fail time (same arithmetic, no bucket round-trip).
            if sampling:
                sacc[_R_NOT_SELECTED] += mask.bit_count() * sample
                for i in range(nreasons):
                    c = bcnt[i]
                    if c:
                        sacc[i] += c * sample
                if sync_parked:
                    sacc[_R_SYNC] -= sync_parked * sample
                next_sample = cycle + sample

            # Advance time: +1 after an issue, else jump to the next
            # event — the end of a bubble blocking a ready warp, or the
            # earliest wake-up — exactly as the seed's scan chose.  Herd
            # warps sleep with an implicit wake of cycle + 1, like `nxt`.
            if nissued:
                cycle += 1
            elif mask and bubble_until > cycle:
                cycle = bubble_until
            elif nxt or herd:
                cycle += 1
            elif heap:
                wk = heap[0][0]
                cycle = wk if wk > cycle + 1 else cycle + 1
            elif parked:
                # Every sleeper is parked at a barrier that cannot
                # release: jump to the deadlock guard, as the seed's
                # scan of _FAR_FUTURE wakes did.
                cycle = _FAR_FUTURE
            else:
                cycle += 1
            sync_parked = 0
            if herd:
                mask |= herd
                herd = 0
            if imask:
                mask |= imask
                imask = 0
            if nxt:
                for o in nxt:
                    bi = o.bucket
                    if bi >= 0:
                        bcnt[bi] -= 1
                        o.bucket = -1
                    mask |= 1 << o.warp_id
                del nxt[:]
            while heap and heap[0][0] <= cycle:
                o = warps[heappop(heap)[1]]
                bcnt[o.bucket] -= 1
                o.bucket = -1
                mask |= 1 << o.warp_id

        hier.shared_accesses += shared_acc
        hier.const_accesses += const_acc
        st = self.stats
        st.issued = issued_acc
        by_pipe = st.issued_by_pipe
        for i, pipe in enumerate(PIPES):
            v = pacc[i]
            if v:
                by_pipe[pipe] = v
        stalls = st.stalls
        for i, reason in enumerate(_REASONS):
            v = sacc[i]
            if v:
                stalls[reason] = v
        st.rf_reads = rf_reads
        st.rf_writes = rf_writes
        st.wave_cycles = cycle
        st.resident_warps = len(warps)
        if trace:
            self._emit_trace(tracer, tev, park_at, done_at, cycle)
        return st

    # ------------------------------------------------------------------
    def _emit_trace(
        self, tracer, tev: list, park_at: dict, done_at: dict, final_cycle: int
    ) -> None:
        """Convert buffered warp-phase tuples into tracer spans.

        Each warp gets one life span ``[0, retirement]`` plus a span per
        recorded sleep phase (named by stall reason), all on the same
        thread row so Perfetto nests the phases inside the life span.
        Timestamps are wave-local cycles (:data:`repro.obs.tracer.CYCLES`).
        """
        kernel_name = self.kernel.name
        span = tracer.span
        # A parked warp with no release on record was still waiting at
        # wave end (its block's barrier released on the final cycle).
        for wid, start in park_at.items():
            tev.append((start, final_cycle, _R_SYNC, wid))
        stall_cycles = 0
        for w in self.warps:
            wid = w.warp_id
            span(
                "warp", "warp", CYCLES, 0.0,
                float(done_at.get(wid, final_cycle)),
                process="gpu.wave", thread=f"{kernel_name}:w{wid}",
                args={"warp": wid, "block": wid // self.kernel.warps_per_block},
            )
        for start, end, ri, wid in tev:
            span(
                _REASONS[ri].value, "stall", CYCLES, float(start),
                float(end - start),
                process="gpu.wave", thread=f"{kernel_name}:w{wid}",
            )
            stall_cycles += end - start
        metrics = tracer.metrics
        metrics.counter("gpu.stall_phases").inc(len(tev))
        metrics.counter("gpu.stall_cycles").inc(float(stall_cycles))
