"""The streaming-multiprocessor issue loop.

Simulates one SM running one resident wave of a kernel: warps issue in
scheduler order through scoreboard, pipeline-port and memory-system
checks, and every non-issue warp-cycle is attributed to an nvprof stall
reason (Figure 7).  The loop is event-driven — when no warp can issue it
jumps to the next wake-up — and stall attribution is sampled every
``SimOptions.stall_sample`` cycles, exactly as nvprof itself samples.
"""

from __future__ import annotations

import math

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.scheduler import make_scheduler
from repro.gpu.warp import KIND_ALU, KIND_CONST, KIND_MEM, Warp
from repro.isa.instruction import MemSpace
from repro.isa.opcodes import Op, Pipe
from repro.kernels.launch import KernelLaunch, WARP_SIZE
from repro.memory.coalescer import coalesce
from repro.memory.hierarchy import MemoryHierarchy
from repro.profiling.stall import StallReason
from repro.profiling.stats import KernelStats

#: Instruction-buffer refill period (instructions per fetch bubble).
_FETCH_PERIOD = 32
_FETCH_BUBBLE = 2

#: Issue interval per pipeline (cycles between issues to the same port).
#: The SM front-end issues up to ``_ISSUE_WIDTH`` instructions per cycle
#: (four scheduler sub-partitions), but each execution port accepts one
#: warp instruction per interval — so same-pipe pressure (the mad-heavy
#: inner loops of convolution and normalization) saturates a single port
#: and shows up as pipe_busy stalls (Figure 7), while the latency of
#: memory instructions can no longer hide behind an issue bottleneck
#: (which is what makes the L1 sweep of Figure 2 bite).
_PIPE_INTERVAL = {Pipe.SP: 1, Pipe.FPU: 1, Pipe.SFU: 4, Pipe.LDST: 1, Pipe.CTRL: 0}

#: Instructions the SM front-end can issue per cycle.
_ISSUE_WIDTH = 4

_KIND_REASON = {
    KIND_ALU: StallReason.EXEC_DEPENDENCY,
    KIND_MEM: StallReason.MEMORY_DEPENDENCY,
    KIND_CONST: StallReason.CONSTANT_MEMORY_DEPENDENCY,
}

#: Wake value for warps parked at a barrier (released explicitly).
_FAR_FUTURE = 1 << 40

#: Safety valve: a wave longer than this indicates a simulator bug.
_MAX_CYCLES = 50_000_000


class _BlockCtx:
    """Barrier bookkeeping for one resident block."""

    __slots__ = ("arrived", "expected", "warps")

    def __init__(self) -> None:
        self.arrived = 0
        self.expected = 0
        self.warps: list[Warp] = []


class SmWave:
    """One SM executing one resident wave of a kernel."""

    def __init__(
        self,
        kernel: KernelLaunch,
        expanded: list,
        guard_expanded: list,
        sim_blocks: int,
        config: GpuConfig,
        options: SimOptions,
        hierarchy: MemoryHierarchy,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.options = options
        self.hier = hierarchy
        self.stats = KernelStats()
        self.warps: list[Warp] = []
        self.blocks: list[_BlockCtx] = []

        gx, gy, gz = kernel.grid
        warps_per_block = kernel.warps_per_block
        has_barrier = any(e.op is Op.BAR for e in expanded)
        for block_index in range(sim_blocks):
            coords = (block_index % gx, (block_index // gx) % gy, block_index // (gx * gy))
            block = _BlockCtx()
            self.blocks.append(block)
            for w in range(warps_per_block):
                lane_start = w * WARP_SIZE
                fully_inactive = lane_start >= kernel.active_threads
                warp = Warp(
                    warp_id=len(self.warps),
                    block=block,
                    instrs=guard_expanded if fully_inactive else expanded,
                    lane_start=lane_start,
                    block_dims=kernel.block,
                    block_coords=coords,
                    grid_dims=kernel.grid,
                    active_threads=kernel.active_threads,
                    entry_regs=kernel.program.entry_regs,
                )
                block.warps.append(warp)
                self.warps.append(warp)
                if has_barrier and not fully_inactive:
                    block.expected += 1

    # ------------------------------------------------------------------
    def run(self) -> KernelStats:
        """Execute the wave to completion; returns unscaled wave stats."""
        warps = self.warps
        live = sum(1 for w in warps if not w.done)
        if live == 0:
            self.stats.wave_cycles = 0
            return self.stats
        scheduler = make_scheduler(self.options.scheduler, warps, self.options.tlv_group)
        pipe_free = {pipe: 0 for pipe in _PIPE_INTERVAL}
        queue_penalty = self.options.queue_penalty if scheduler.manages_queues else 0
        sample = max(1, self.options.stall_sample)
        stalls = self.stats.stalls
        cycle = 0
        next_sample = 0
        bubble_until = 0

        while live > 0:
            if cycle > _MAX_CYCLES:
                raise RuntimeError(
                    f"{self.kernel.name}: wave exceeded {_MAX_CYCLES} cycles"
                )
            issued: list[Warp] = []
            if cycle >= bubble_until:
                for warp in scheduler.order(cycle):
                    if warp.done or warp.wake > cycle or warp in issued:
                        continue
                    result = self._try_issue(warp, cycle, pipe_free)
                    if result:
                        issued.append(warp)
                        scheduler.notify_issue(warp)
                        if warp.done:
                            live -= 1
                        # Queue-management bubble on memory issues
                        # (GTO/TLV only): the mechanism behind LRR's win
                        # on cache-friendly convolutions (Observation 12).
                        if queue_penalty and result == "mem" and bubble_until <= cycle:
                            bubble_until = cycle + 1 + queue_penalty
                        if len(issued) >= _ISSUE_WIDTH:
                            break

            # Sampled stall attribution, nvprof style: every `sample`
            # cycles each non-issuing resident warp contributes one
            # sample of its current stall reason.
            if cycle >= next_sample:
                for warp in warps:
                    if warp.done or warp in issued:
                        continue
                    if warp.wake > cycle and warp.reason is not None:
                        reason = warp.reason
                    else:
                        reason = StallReason.NOT_SELECTED
                    stalls[reason] += sample
                next_sample = cycle + sample

            if issued:
                cycle += 1
                continue
            # Nothing issued: jump to the earliest event that could
            # change that — a warp wake-up or the end of a scheduler
            # bubble that is blocking an already-ready warp.
            next_wake = None
            ready_now = False
            for warp in warps:
                if warp.done:
                    continue
                if warp.wake <= cycle:
                    ready_now = True
                elif next_wake is None or warp.wake < next_wake:
                    next_wake = warp.wake
            if ready_now and bubble_until > cycle:
                cycle = bubble_until
            elif next_wake is not None:
                cycle = max(cycle + 1, next_wake)
            else:
                cycle += 1

        self.stats.wave_cycles = cycle
        self.stats.resident_warps = len(warps)
        return self.stats

    # ------------------------------------------------------------------
    def _try_issue(self, warp: Warp, now: int, pipe_free: dict) -> str | None:
        """Attempt to issue *warp*'s next instruction at cycle *now*.

        Returns "alu"/"mem"/"ctrl" on issue; None (with the warp's
        ``reason``/``wake`` updated) on stall.
        """
        instr = warp.current()
        stats = self.stats

        # Barrier: issue the bar once, then wait until the whole block
        # (every warp expected to participate) has arrived.
        if warp.at_barrier:
            warp.reason = StallReason.SYNC
            warp.wake = _FAR_FUTURE  # woken explicitly by the release
            return None
        if instr.op is Op.BAR:
            block = warp.block
            stats.count_issue(instr.pipe, instr.weight)
            warp.advance()
            block.arrived += 1
            if block.arrived >= block.expected:
                # Last arrival releases everyone.
                for other in block.warps:
                    if other.at_barrier:
                        other.at_barrier = False
                        other.wake = now + 1
                block.arrived = 0
                warp.wake = now + 1
            else:
                warp.at_barrier = True
                warp.reason = StallReason.SYNC
                warp.wake = _FAR_FUTURE
            return "ctrl"

        # Instruction fetch bubble at i-buffer refill boundaries.
        if warp.pc != warp.fetch_pc and warp.pc % _FETCH_PERIOD == 0 and warp.pc:
            warp.fetch_pc = warp.pc
            warp.reason = StallReason.INST_FETCH
            warp.wake = now + _FETCH_BUBBLE
            return None

        # Scoreboard: all sources ready?
        blocked = warp.src_block(now, instr.srcs)
        if blocked is not None:
            ready_cycle, kind = blocked
            warp.reason = _KIND_REASON[kind]
            warp.wake = ready_cycle
            return None

        # Pipeline port availability.
        pipe = instr.pipe
        interval = _PIPE_INTERVAL[pipe]
        if interval and pipe_free[pipe] > now:
            warp.reason = StallReason.PIPE_BUSY
            warp.wake = pipe_free[pipe]
            return None

        weight = instr.weight
        issued_kind = "alu"
        if instr.is_mem:
            issued_kind = "mem"
            space = instr.space
            if space in (MemSpace.GLOBAL, MemSpace.LOCAL) and instr.addr is not None:
                addrs = instr.addr.evaluate(warp, instr.loop_env)
                addrs = addrs[warp.active_lanes]
                if addrs.size:
                    txs = coalesce(addrs, instr.width_bytes)
                    if instr.is_load:
                        result = self.hier.load(now, txs, weight)
                        if result.ready_cycle is None:
                            warp.reason = StallReason.MEMORY_THROTTLE
                            release = self.hier.mshr.next_release()
                            warp.wake = max(
                                now + 1, release if release is not None else now + 8
                            )
                            return None
                        warp.set_reg(instr.dst, result.ready_cycle, KIND_MEM)
                    else:
                        self.hier.store(now, txs, weight)
            elif space is MemSpace.SHARED:
                ready = self.hier.shared(now, weight)
                if instr.is_load:
                    warp.set_reg(instr.dst, ready, KIND_MEM)
            elif space in (MemSpace.CONST, MemSpace.PARAM):
                ready, _missed = self.hier.const(now, weight)
                if instr.is_load:
                    warp.set_reg(instr.dst, ready, KIND_CONST)
            elif instr.is_load and instr.dst is not None:
                warp.set_reg(instr.dst, now + self.hier.lat_l1, KIND_MEM)
        elif instr.dst is not None:
            warp.set_reg(instr.dst, now + instr.latency, KIND_ALU)
            issued_kind = "alu"
        else:
            issued_kind = "ctrl"

        if interval:
            pipe_free[pipe] = now + interval
        stats.count_issue(pipe, weight)
        stats.rf_reads += len(instr.srcs) * weight
        if instr.dst is not None:
            stats.rf_writes += weight
        warp.issued_count += weight
        warp.advance()
        warp.reason = None
        warp.wake = now + 1
        return issued_kind
