"""The GPU timing simulator (the GPGPU-Sim stand-in).

An event-driven warp-level model of one streaming multiprocessor plus
wave scaling to the full chip:

* :mod:`repro.gpu.config` -- machine descriptions (Table II) and
  simulation options (sampling factors, scheduler choice).
* :mod:`repro.gpu.occupancy` -- CUDA occupancy calculation.
* :mod:`repro.gpu.warp` -- resident warp state and lane symbols.
* :mod:`repro.gpu.scheduler` -- GTO / LRR / TLV warp schedulers
  (Figures 15-16).
* :mod:`repro.gpu.sm` -- the SM issue loop with full stall attribution
  (Figure 7).
* :mod:`repro.gpu.simulator` -- kernel- and network-level drivers with
  block/loop sampling and result scaling.
"""

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.simulator import KernelResult, NetworkResult, simulate_kernel, simulate_network

__all__ = [
    "GpuConfig",
    "KernelResult",
    "NetworkResult",
    "SimOptions",
    "simulate_kernel",
    "simulate_network",
]
