"""The vectorized SM issue loop (fast-3 engine).

:class:`VectorWave` extends the event-heap engine of
:mod:`repro.gpu.sm` with three array-level optimizations, all provably
bit-identical to the seed oracle (``tests/test_engine_equivalence.py``
gates every suite network):

* **Precomputed coalesced transactions.**  The scalar engine resolves
  each global access's transaction list lazily at issue time
  (:func:`repro.gpu.sm._gmem_txs`): per (warp, pc), evaluate the block
  terms, probe the translation-invariant line-pattern cache, translate.
  The vector engine computes the per-block scalar part of every
  global-access pc as one numpy expression over block-symbol arrays and
  materializes all warps' transaction lists for a pc with a single
  broadcast add (``pattern[None, :] + base[:, None]``) — the issue loop
  then just reads ``warp.ptx[pc]``.

* **Vectorized shared-input warming.**  ``warm_shared_input`` replays
  the wave's input-slot loads into L2 with zero statistic weight.
  Zero-weight accesses leave counters untouched, so only the final
  tag/LRU state matters; per L2 set that state is the distinct tags in
  last-occurrence order whenever the set starts empty and never
  overflows — computed wholesale from tag/set-index arrays by
  :meth:`repro.memory.cache.Cache.bulk_warm`, with a scalar replay
  fallback for the (rare) sets whose evictions depend on access order.

* **Solo-warp batch issue.**  When exactly one warp is awake under GTO
  — every other warp asleep on a long latency, parked at a barrier, or
  retired — the general candidate walk degenerates to "issue the next
  instruction if its sources are ready".  The batch loop issues whole
  ALU/CTRL runs (``ProgramSoA.batch_ok``) in a tight loop: single-cycle
  ports freed by the previous cycle can never block the only awake
  warp, the sleeper stall-buckets are constant for the duration, and
  sampled stall attribution reduces to integer credits on the sample
  grid — all exact, no float accumulation is reordered.

Fallbacks are counted, not silent: ``engine.vector.*`` counters in
:mod:`repro.obs` record batched vs general-walk issues and vectorized
vs scalar-replay warm sets whenever tracing is enabled.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from repro.gpu.decode import (
    K_ALU,
    K_CMEM,
    K_CTRL,
    K_GMEM,
    K_MEMLOAD,
    K_SMEM,
    PIPES,
)
from repro.gpu.scheduler import GtoScheduler, make_scheduler
from repro.gpu.sm import (
    _FETCH_BUBBLE,
    _FAR_FUTURE,
    _ISSUE_WIDTH,
    _KIND_REASON_I,
    _MAX_CYCLES,
    _REASONS,
    _R_INST_FETCH,
    _R_NOT_SELECTED,
    _R_PIPE_BUSY,
    _R_SYNC,
    _R_THROTTLE,
    _TX_SHIFT,
    SmWave,
    _gmem_txs,
)
from repro.obs.tracer import get_tracer

#: Bumped whenever an engine change could alter simulated numbers; part
#: of the persistent result-cache key (:mod:`repro.runs.store`).
#: "fast-3": the vectorized engine.  Numbers are bit-identical to
#: "fast-2.1" (and the seed), but keying the store by engine keeps the
#: provenance of every cached entry auditable per engine.
ENGINE_VERSION = "fast-3"

#: Wake bound when no sleeper is on the heap (beyond any reachable cycle).
_NEVER = 1 << 60


class VectorWave(SmWave):
    """One SM executing one resident wave — vectorized fast-3 engine."""

    def __init__(self, kernel, dprog, guard_dprog, sim_blocks, config, options, hierarchy):
        super().__init__(
            kernel, dprog, guard_dprog, sim_blocks, config, options, hierarchy
        )
        self._dprog = dprog
        self._ptx: list | None = None
        self._warm_obs = (0, 0)

    # ------------------------------------------------------------------
    def _ensure_ptx(self) -> list:
        """Per-warp ``pc -> coalesced transaction list`` tables."""
        ptx = self._ptx
        if ptx is None:
            ptx = self._ptx = self._precompute_txs()
        return ptx

    def _precompute_txs(self) -> list:
        """Materialize every (warp, pc) transaction list with array ops.

        Value-identical to calling :func:`repro.gpu.sm._gmem_txs` per
        (warp, pc): the per-block scalar address part is one numpy
        expression over block-symbol arrays (warps of a block share it),
        the lane-varying line pattern comes from the same
        translation-invariant caches the scalar path uses, and the
        absolute lists fall out of one broadcast add per (pc,
        lane-offset).  Guard warps never touch global memory, so their
        tables stay empty.

        Small waves skip the array path: numpy's fixed per-op cost
        outruns the win below a handful of blocks (the RNN point
        kernels), so those build the same tables through the scalar
        helper — identical values either way.
        """
        dprog = self._dprog
        warps = self.warps
        ptx: list = [{} for _ in warps]
        gpcs = dprog.soa().gmem_pcs
        if not gpcs:
            return ptx
        blocks = self.blocks
        nblocks = len(blocks)
        if nblocks < 24:
            dec = dprog.instrs
            for w in warps:
                if w.dprog is not dprog or not w.n_active:
                    continue
                table = ptx[w.warp_id]
                for pc in gpcs:
                    table[pc] = _gmem_txs(w, pc, dec[pc][4])
            return ptx
        gx, gy, _ = self.kernel.grid
        bi = np.arange(nblocks, dtype=np.int64)
        bz = bi // (gx * gy)
        by = (bi // gx) % gy
        bx = bi % gx
        bsyms = {
            "bx": bx,
            "by": by,
            "bz": bz,
            "lin_bid": (bz * gy + by) * gx + bx,
            "one": np.ones(nblocks, dtype=np.int64),
        }
        # One representative warp per lane offset (lane symbols and the
        # active mask depend only on lane_start and the fixed geometry).
        reps = [
            (slot, w)
            for slot, w in enumerate(blocks[0].warps)
            if w.dprog is dprog and w.n_active
        ]
        dec = dprog.instrs
        for pc in gpcs:
            gmem = dec[pc][4]
            scal = np.full(nblocks, gmem.const, dtype=np.int64)
            for term in gmem.bterms:
                scal = scal + term.apply(bsyms[term.sym])
            if gmem.tterms:
                q = scal >> _TX_SHIFT
                base = q << _TX_SHIFT
                rems = (scal - base).tolist()
                single_rem = len(set(rems)) == 1
                for slot, rep in reps:
                    if single_rem:
                        pat = np.array(
                            dprog.tx_lines(pc, gmem, rep, rems[0]), dtype=np.int64
                        )
                        mat = (pat[None, :] + base[:, None]).tolist()
                        for b, blk in enumerate(blocks):
                            ptx[blk.warps[slot].warp_id][pc] = mat[b]
                    else:
                        bl = base.tolist()
                        for b, blk in enumerate(blocks):
                            lines = dprog.tx_lines(pc, gmem, rep, rems[b])
                            off = bl[b]
                            ptx[blk.warps[slot].warp_id][pc] = (
                                [line + off for line in lines]
                                if off
                                else list(lines)
                            )
            else:
                w1 = gmem.w1
                fl = ((scal >> _TX_SHIFT) << _TX_SHIFT).tolist()
                ll = (((scal + w1) >> _TX_SHIFT) << _TX_SHIFT).tolist() if w1 else fl
                for b, blk in enumerate(blocks):
                    txs = [fl[b], ll[b]] if ll[b] != fl[b] else [fl[b]]
                    # No lane-varying terms: every warp of the block
                    # issues the same transactions (read-only, shared).
                    for slot, rep in reps:
                        ptx[blk.warps[slot].warp_id][pc] = txs
        return ptx

    # ------------------------------------------------------------------
    def warm_shared_input(self) -> None:
        """Vectorized L2 pre-touch of the wave's shared-input loads.

        Same transaction sequence, in the same order, as the scalar
        engine's replay — flattened once and applied through the bulk
        warm front (zero-weight accesses only mutate tag/LRU state, so
        the set-level reduction is exact; see ``Cache.bulk_warm``).
        """
        ptx = self._ensure_ptx()
        seq: list[int] = []
        ext = seq.extend
        for w in self.warps:
            table = ptx[w.warp_id]
            for pc in w.dprog.warm_pcs:
                txs = table.get(pc)
                if txs:
                    ext(txs)
        if seq:
            self._warm_obs = self.hier.warm_l2(seq)

    # ------------------------------------------------------------------
    def run(self):
        """Execute the wave to completion; returns unscaled wave stats.

        Structurally the :meth:`repro.gpu.sm.SmWave.run` loop (same
        events, same attribution, same accumulation order — float sums
        are never reordered) with the vector-engine deltas: global
        accesses read precomputed transaction tables, and a solo-warp
        batch loop fast-forwards ALU/CTRL runs when only one warp is
        awake.  See the module docstring for the exactness argument.
        """
        warps = self.warps
        live = sum(1 for w in warps if not w.done)
        if live == 0:
            self.stats.wave_cycles = 0
            return self.stats

        scheduler = make_scheduler(self.options.scheduler, warps, self.options.tlv_group)
        gto = type(scheduler) is GtoScheduler
        notify = scheduler.notify_issue
        queue_penalty = self.options.queue_penalty if scheduler.manages_queues else 0
        sample = max(1, self.options.stall_sample)

        hier = self.hier
        hier_load = hier.load
        hier_store = hier.store
        mshr_release = hier.mshr.next_release
        lat_l1 = hier.lat_l1
        lat_shared = hier.lat_shared
        lat_const = hier.lat_const
        lat_l2 = hier.lat_l2
        shared_acc = 0.0
        const_acc = 0.0
        cc_hot = hier.const_cache.contains(0)
        kernel_name = self.kernel.name

        ptx = self._ensure_ptx()
        for w in warps:
            w.ptx = ptx[w.warp_id]
            w.bok = w.dprog.soa().batch_ok

        tracer = get_tracer()
        trace = tracer.enabled and tracer.warps
        tev: list = []
        park_at: dict = {}
        done_at: dict = {}

        # Vectorization observability (folded into engine.vector.*).
        nbatched = 0   # instructions issued by the batch loop
        nscalar = 0    # instructions issued by the general walk
        nwindows = 0   # batch windows entered
        batch_cycles = 0

        pf = [0, 0, 0, 0, 0]
        cmask = [0, 0, 0, 0, 0]
        mask = 0
        for w in warps:
            if not w.done:
                mask |= 1 << w.warp_id
        heap: list = []
        nxt: list = []
        imask = 0
        nreasons = len(_REASONS)
        bcnt = [0] * nreasons
        sacc = [0] * nreasons
        pacc = [0.0] * len(PIPES)
        issued_acc = 0.0
        rf_reads = 0.0
        rf_writes = 0.0

        cur = None
        parked = 0
        sync_parked = 0
        herd = 0
        cycle = 0
        next_sample = 0
        bubble_until = 0

        while live > 0:
            if cycle > _MAX_CYCLES:
                raise RuntimeError(
                    f"{kernel_name}: wave exceeded {_MAX_CYCLES} cycles"
                )
            # ---- solo-warp batch fast path (GTO only) ----------------
            # At the loop top `nxt`/`herd` are always drained, sleepers
            # due by `cycle` have woken, and every single-cycle port is
            # free (its last issue was before this cycle).  With exactly
            # one warp awake the general walk degenerates to "issue the
            # next instruction when its sources are ready", so ALU/CTRL
            # runs (ProgramSoA.batch_ok) advance in a tight loop:
            # sleeper stall-buckets are constant for the window and the
            # sampled sweep reduces to integer credits on the sample
            # grid — bit-exact, nothing float is reordered.
            if gto and mask and cycle >= bubble_until and not (mask & (mask - 1)):
                wid = mask.bit_length() - 1
                w = warps[wid]
                pc = w.pc
                bok = w.bok
                if bok[pc]:
                    nwindows += 1
                    if w.cm >= 0:  # will issue now: drop the port cohort bit
                        cmask[w.cm] &= ~mask
                        w.cm = -1
                    dec = w.dec
                    ready = w.reg_ready
                    kinds = w.reg_kind
                    wn = w.n
                    c = cycle
                    wake_bound = heap[0][0] if heap else _NEVER
                    nz = [(i, bcnt[i] * sample) for i in range(nreasons) if bcnt[i]]
                    issued_any = False
                    asleep = False
                    while True:
                        rec = dec[pc]
                        srcs = rec[1]
                        if srcs:
                            worst = c
                            kidx = 0
                            for r in srcs:
                                rc = ready[r]
                                if rc > worst:
                                    worst = rc
                                    kidx = kinds[r]
                            if worst > c:
                                ri = _KIND_REASON_I[kidx]
                                if c >= next_sample:
                                    sacc[ri] += sample
                                    for i2, cr in nz:
                                        sacc[i2] += cr
                                    next_sample = c + sample
                                if worst == c + 1:
                                    # 1-cycle stall: retry next cycle
                                    # (the general loop's herd path).
                                    c += 1
                                    if c >= wake_bound:
                                        break
                                    continue
                                # Longer dependency: sleep on the heap.
                                w.bucket = ri
                                bcnt[ri] += 1
                                heappush(heap, (worst, wid))
                                if trace:
                                    tev.append((c, worst, ri, wid))
                                wk = heap[0][0]
                                c = wk if wk > c + 1 else c + 1
                                asleep = True
                                break
                        # ---- issue (ALU/CTRL; ports cannot block) ----
                        weight = rec[3]
                        if rec[0] == K_ALU:
                            dst = rec[2]
                            ready[dst] = c + rec[4]
                            kinds[dst] = 0  # KIND_ALU
                            rf_writes += weight
                        issued_acc += weight
                        pacc[rec[5]] += weight
                        rf_reads += rec[7]
                        issued_any = True
                        nbatched += 1
                        pc += 1
                        if c >= next_sample:
                            for i2, cr in nz:
                                sacc[i2] += cr
                            next_sample = c + sample
                        if pc >= wn:
                            w.done = True
                            live -= 1
                            if trace:
                                done_at[wid] = c
                            asleep = True  # leaves the ready set
                            c += 1
                            break
                        c += 1
                        if c >= wake_bound or not bok[pc]:
                            break
                    w.pc = pc
                    if issued_any:
                        cur = w
                    if asleep:
                        mask = 0
                    batch_cycles += c - cycle
                    cycle = c
                    while heap and heap[0][0] <= cycle:
                        o = warps[heappop(heap)[1]]
                        bcnt[o.bucket] -= 1
                        o.bucket = -1
                        mask |= 1 << o.warp_id
                    continue
            sampling = cycle >= next_sample
            nissued = 0
            if cycle >= bubble_until:
                nxtc = cycle + 1
                sdrop = 0
                if gto:
                    it = None
                    pend = mask
                    drop = 0
                    if pf[0] == nxtc:
                        drop |= cmask[0]
                    if pf[1] == nxtc:
                        drop |= cmask[1]
                    if pf[2] == nxtc:
                        drop |= cmask[2]
                    if pf[3] == nxtc:
                        drop |= cmask[3]
                    drop &= pend
                    if drop:
                        if sampling:
                            if cur is not None:
                                drop &= ~(1 << cur.warp_id)
                            sdrop = drop
                        herd |= drop
                        mask &= ~drop
                        pend &= ~drop
                    first = (
                        cur if cur is not None and pend >> cur.warp_id & 1 else None
                    )
                else:
                    it = scheduler.order(cycle)
                    first = None
                    pend = 0
                while True:
                    if it is not None:
                        w = next(it, None)
                        if w is None:
                            break
                        bit = 1 << w.warp_id
                        if not mask & bit:
                            continue
                    elif first is not None:
                        w = first
                        first = None
                        bit = 1 << w.warp_id
                    elif pend:
                        bit = pend & -pend
                        pend ^= bit
                        if not mask & bit:
                            continue  # `cur`, already tried first
                        w = warps[bit.bit_length() - 1]
                    else:
                        break
                    mask ^= bit
                    pc = w.pc
                    if w.chk == pc:
                        rec = None
                        iv = w.civ
                        rpi = w.cpi
                    else:
                        rec = w.dec[pc]
                        if not rec[0]:
                            # ---- barrier: issue once, park till release
                            weight = rec[3]
                            pi = rec[5]
                            issued_acc += weight
                            pacc[pi] += weight
                            npc = pc + 1
                            w.pc = npc
                            if npc >= w.n:
                                w.done = True
                                live -= 1
                                if trace:
                                    done_at[w.warp_id] = cycle
                            blk = w.block
                            blk.arrived += 1
                            if blk.arrived >= blk.expected:
                                for o in blk.warps:
                                    if o.at_barrier:
                                        o.at_barrier = False
                                        if trace:
                                            ps = park_at.pop(o.warp_id, None)
                                            if ps is not None:
                                                tev.append((ps, cycle, _R_SYNC, o.warp_id))
                                        if not o.done:
                                            nxt.append(o)
                                            parked -= 1
                                blk.arrived = 0
                                if not w.done:
                                    imask |= bit
                            else:
                                w.at_barrier = True
                                if not w.done:
                                    w.bucket = _R_SYNC
                                    bcnt[_R_SYNC] += 1
                                    sync_parked += 1
                                    parked += 1
                                    if trace:
                                        park_at[w.warp_id] = cycle
                            nissued += 1
                            nscalar += 1
                            if gto:
                                cur = w
                            else:
                                notify(w)
                            if nissued >= _ISSUE_WIDTH:
                                break
                            continue
                        # Fetch bubble at i-buffer refill boundaries.
                        if rec[8] and w.fetch_pc != pc:
                            w.fetch_pc = pc
                            w.bucket = _R_INST_FETCH
                            bcnt[_R_INST_FETCH] += 1
                            heappush(heap, (cycle + _FETCH_BUBBLE, w.warp_id))
                            if trace:
                                tev.append(
                                    (cycle, cycle + _FETCH_BUBBLE,
                                     _R_INST_FETCH, w.warp_id)
                                )
                            continue
                        srcs = rec[1]
                        if srcs:
                            ready = w.reg_ready
                            worst = cycle
                            kidx = 0
                            for r in srcs:
                                c = ready[r]
                                if c > worst:
                                    worst = c
                                    kidx = w.reg_kind[r]
                            if worst > cycle:
                                if worst == nxtc:
                                    herd |= bit
                                    if sampling:
                                        sacc[_KIND_REASON_I[kidx]] += sample
                                else:
                                    ri = _KIND_REASON_I[kidx]
                                    w.bucket = ri
                                    bcnt[ri] += 1
                                    heappush(heap, (worst, w.warp_id))
                                    if trace:
                                        tev.append((cycle, worst, ri, w.warp_id))
                                continue
                        iv = rec[6]
                        rpi = rec[5]
                    # Pipeline port availability.
                    if iv:
                        free = pf[rpi]
                        if free > cycle:
                            w.chk = pc
                            w.civ = iv
                            w.cpi = rpi
                            if w.cm < 0:
                                w.cm = rpi
                                cmask[rpi] |= bit
                            if free == nxtc:
                                herd |= bit
                                if sampling:
                                    sacc[_R_PIPE_BUSY] += sample
                            else:
                                w.bucket = _R_PIPE_BUSY
                                bcnt[_R_PIPE_BUSY] += 1
                                heappush(heap, (free, w.warp_id))
                                if trace:
                                    tev.append(
                                        (cycle, free, _R_PIPE_BUSY, w.warp_id)
                                    )
                            continue
                    # ---- issue ----------------------------------
                    if rec is None:
                        rec = w.dec[pc]
                    kind, srcs, dst, weight, aux, pi, iv, rfr, fetch = rec
                    mem = False
                    if kind == K_ALU:
                        w.reg_ready[dst] = cycle + aux
                        w.reg_kind[dst] = 0  # KIND_ALU
                    elif kind == K_GMEM:
                        mem = True
                        txs = w.ctxs
                        if txs is False:
                            txs = w.ptx.get(pc)
                        if txs is not None:
                            if aux.is_load:
                                rc = hier_load(cycle, txs, weight)
                                if rc is None:
                                    w.ctxs = txs
                                    w.chk = pc
                                    w.civ = iv
                                    w.cpi = pi
                                    rel = mshr_release()
                                    wk = rel if rel is not None else cycle + 8
                                    if wk < nxtc:
                                        wk = nxtc
                                    if wk == nxtc:
                                        herd |= bit
                                        if sampling:
                                            sacc[_R_THROTTLE] += sample
                                    else:
                                        w.bucket = _R_THROTTLE
                                        bcnt[_R_THROTTLE] += 1
                                        heappush(heap, (wk, w.warp_id))
                                        if trace:
                                            tev.append(
                                                (cycle, wk, _R_THROTTLE,
                                                 w.warp_id)
                                            )
                                    continue
                                w.ctxs = False
                                w.reg_ready[dst] = rc
                                w.reg_kind[dst] = 1  # KIND_MEM
                            else:
                                hier_store(cycle, txs, weight)
                    elif kind == K_CTRL:
                        pass
                    elif kind == K_CMEM:
                        mem = True
                        const_acc += weight
                        if cc_hot:
                            rc = cycle + lat_const
                        else:
                            cc_hot = True
                            rc = cycle + lat_l2
                        if aux:  # is_load
                            w.reg_ready[dst] = rc
                            w.reg_kind[dst] = 2  # KIND_CONST
                    elif kind == K_SMEM:
                        mem = True
                        shared_acc += weight
                        rc = cycle + lat_shared
                        if aux:  # is_load
                            w.reg_ready[dst] = rc
                            w.reg_kind[dst] = 1  # KIND_MEM
                    elif kind == K_MEMLOAD:
                        mem = True
                        w.reg_ready[dst] = cycle + lat_l1
                        w.reg_kind[dst] = 1  # KIND_MEM
                    else:  # K_MEMOP: no register effect
                        mem = True
                    if iv:
                        pf[pi] = cycle + iv
                        if iv == 1:
                            d = pend & cmask[pi] & mask
                            if d:
                                herd |= d
                                mask &= ~d
                                pend &= ~d
                                if sampling:
                                    sdrop |= d
                    cmi = w.cm
                    if cmi >= 0:
                        cmask[cmi] &= ~bit
                        w.cm = -1
                    issued_acc += weight
                    pacc[pi] += weight
                    rf_reads += rfr
                    if dst >= 0:
                        rf_writes += weight
                    npc = pc + 1
                    w.pc = npc
                    if npc >= w.n:
                        w.done = True
                        live -= 1
                        if trace:
                            done_at[w.warp_id] = cycle
                    else:
                        imask |= bit
                    nissued += 1
                    nscalar += 1
                    if gto:
                        cur = w
                    else:
                        notify(w)
                    if mem and queue_penalty and bubble_until <= cycle:
                        bubble_until = cycle + 1 + queue_penalty
                    if nissued >= _ISSUE_WIDTH:
                        break
                if sdrop:
                    n = sdrop.bit_count()
                    if nissued >= _ISSUE_WIDTH:
                        nb = (sdrop & ((1 << w.warp_id) - 1)).bit_count()
                        sacc[_R_PIPE_BUSY] += nb * sample
                        sacc[_R_NOT_SELECTED] += (n - nb) * sample
                    else:
                        sacc[_R_PIPE_BUSY] += n * sample

            if sampling:
                sacc[_R_NOT_SELECTED] += mask.bit_count() * sample
                for i in range(nreasons):
                    c = bcnt[i]
                    if c:
                        sacc[i] += c * sample
                if sync_parked:
                    sacc[_R_SYNC] -= sync_parked * sample
                next_sample = cycle + sample

            if nissued:
                cycle += 1
            elif mask and bubble_until > cycle:
                cycle = bubble_until
            elif nxt or herd:
                cycle += 1
            elif heap:
                wk = heap[0][0]
                cycle = wk if wk > cycle + 1 else cycle + 1
            elif parked:
                cycle = _FAR_FUTURE
            else:
                cycle += 1
            sync_parked = 0
            if herd:
                mask |= herd
                herd = 0
            if imask:
                mask |= imask
                imask = 0
            if nxt:
                for o in nxt:
                    bi = o.bucket
                    if bi >= 0:
                        bcnt[bi] -= 1
                        o.bucket = -1
                    mask |= 1 << o.warp_id
                del nxt[:]
            while heap and heap[0][0] <= cycle:
                o = warps[heappop(heap)[1]]
                bcnt[o.bucket] -= 1
                o.bucket = -1
                mask |= 1 << o.warp_id

        hier.shared_accesses += shared_acc
        hier.const_accesses += const_acc
        st = self.stats
        st.issued = issued_acc
        by_pipe = st.issued_by_pipe
        for i, pipe in enumerate(PIPES):
            v = pacc[i]
            if v:
                by_pipe[pipe] = v
        stalls = st.stalls
        for i, reason in enumerate(_REASONS):
            v = sacc[i]
            if v:
                stalls[reason] = v
        st.rf_reads = rf_reads
        st.rf_writes = rf_writes
        st.wave_cycles = cycle
        st.resident_warps = len(warps)
        if trace:
            self._emit_trace(tracer, tev, park_at, done_at, cycle)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("engine.vector.batched_issues").inc(nbatched)
            metrics.counter("engine.vector.scalar_issues").inc(nscalar)
            metrics.counter("engine.vector.batch_windows").inc(nwindows)
            metrics.counter("engine.vector.batch_cycles").inc(batch_cycles)
            wf, ws = self._warm_obs
            if wf or ws:
                metrics.counter("engine.vector.warm_vector_sets").inc(wf)
                metrics.counter("engine.vector.warm_scalar_sets").inc(ws)
        return st
