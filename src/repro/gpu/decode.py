"""Pre-decode of expanded instructions for the fast SM issue loop.

:class:`~repro.isa.program.ExpandedInstr` records are convenient but
expensive to consume per issue: every ``_try_issue`` of the seed engine
performed a dozen attribute loads, two enum hashes (pipe interval and
issue counters) and, for memory operations, a full symbolic address
evaluation plus a numpy coalesce.  :func:`decode_program` digests each
expanded instruction *once* into a flat 9-tuple of plain ints/floats so
the issue loop in :mod:`repro.gpu.sm` runs on local-variable arithmetic
only:

``(kind, srcs, dst, weight, aux, pipe_i, interval, rf_reads, fetch)``

* ``kind`` — dispatch class (``K_*`` constants below), mirroring the
  seed engine's branch cascade exactly;
* ``srcs`` — source register *indices* (ints) for the scoreboard check;
* ``dst`` — destination register index, or ``-1`` for none;
* ``aux`` — kind-specific payload: ALU result latency, a "sets the
  destination register" flag for shared/constant loads, or a
  :class:`GMem` descriptor for global/local accesses;
* ``pipe_i``/``interval`` — integer pipe index and issue interval
  (replacing two enum-keyed dict lookups);
* ``rf_reads`` — pre-multiplied ``len(srcs) * weight``;
* ``fetch`` — whether this program position sits on an i-buffer refill
  boundary (``pc % 32 == 0 and pc > 0``).

Address pre-digestion (:class:`GMem`) splits each ``AddrExpr`` into a
compile-time constant (base + loop-variable terms, which are fixed per
expanded record, + the ``one`` pseudo-symbol), per-warp scalar block
terms, and lane-varying thread terms.  Thread terms depend only on the
warp's ``lane_start`` (block dims are fixed per kernel), so their
evaluated, active-lane-filtered, deduplicated values are cached once per
``(pc, lane_start)`` on the :class:`DecodedProgram` and reused by every
block's warp at that lane offset.  The issue loop then coalesces with
pure-int set arithmetic — provably equal to the numpy
``unique(addr // 128) * 128`` path of :mod:`repro.memory.coalescer`,
including the wide-access straddle rule.

Decoding is purely a representation change: it happens *after*
``compile_network`` (and therefore after the ``verify=True`` analysis
gate) and never alters program order, weights or operands.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import Op, Pipe
from repro.isa.instruction import MemSpace
from repro.kernels.addressing import THREAD_SYMBOLS

#: Canonical pipe order; ``pipe_i`` indexes this tuple and the
#: issue-interval table below (same values as the seed's enum-keyed map).
PIPES = (Pipe.SP, Pipe.FPU, Pipe.SFU, Pipe.LDST, Pipe.CTRL)
PIPE_INDEX = {pipe: i for i, pipe in enumerate(PIPES)}
PIPE_INTERVALS = (1, 1, 4, 1, 0)

#: Instruction-buffer refill period (instructions per fetch bubble).
FETCH_PERIOD = 32

#: Dispatch kinds, ordered to mirror the seed engine's branch cascade.
K_BAR = 0      #: barrier (handled before all stall checks)
K_GMEM = 1     #: global/local load/store with an address expression
K_SMEM = 2     #: shared-memory access
K_CMEM = 3     #: constant/param access
K_MEMLOAD = 4  #: other memory load with a destination (L1-latency fill)
K_ALU = 5      #: register-producing arithmetic
K_CTRL = 6     #: non-mem, no destination (control flow)
K_MEMOP = 7    #: other memory op with no register effect

#: Padded convolutions shift their base a little below the input slot
#: start; same range as ``repro.gpu.simulator._INPUT_SLOT`` warming.
WARM_LO = (1 << 30) - (1 << 24)
WARM_HI = 2 << 30

_TRANSACTION_SHIFT = 7  # log2(repro.memory.coalescer.TRANSACTION_BYTES)


class GMem:
    """Pre-digested address info of one global/local memory record."""

    __slots__ = ("const", "bterms", "tterms", "w1", "is_load", "warm")

    def __init__(self, const, bterms, tterms, w1, is_load, warm):
        self.const = const      #: base + folded loop/"one" terms (int)
        self.bterms = bterms    #: per-warp scalar terms (block symbols)
        self.tterms = tterms    #: lane-varying terms (thread symbols)
        self.w1 = w1            #: width_bytes - 1 (0 -> no straddle)
        self.is_load = is_load
        self.warm = warm        #: load reads the canonical input slot


class ProgramSoA:
    """Structure-of-arrays view of one decoded program.

    Per-pc numpy columns of the flat tuples (opcode class, operand and
    latency fields) plus two engine-facing digests:

    * ``batch_ok`` — a bytearray flagging positions the vector engine's
      solo-warp batch loop may issue without consulting the pipe-port
      gate: ALU/CTRL instructions with issue interval <= 1 that do not
      sit on an i-buffer refill boundary.  (Single-cycle ports freed by
      the previous cycle's issue can never block the only awake warp;
      SFU's 4-cycle interval and fetch bubbles can, so they break runs.)
    * ``gmem_pcs`` — positions of global/local accesses, the index the
      vector engine's transaction precompute walks.

    Columns are derived views: building one never alters the tuples the
    scalar loop consumes, and ``tests/test_vector_engine.py`` pins the
    two representations equal field by field.
    """

    __slots__ = (
        "n",
        "kind",
        "dst",
        "weight",
        "latency",
        "pipe",
        "interval",
        "rf_reads",
        "fetch",
        "batch_ok",
        "gmem_pcs",
    )

    def __init__(self, instrs) -> None:
        n = len(instrs)
        self.n = n
        self.kind = np.fromiter((r[0] for r in instrs), dtype=np.int32, count=n)
        self.dst = np.fromiter((r[2] for r in instrs), dtype=np.int32, count=n)
        self.weight = np.fromiter((r[3] for r in instrs), dtype=np.float64, count=n)
        self.latency = np.fromiter(
            (r[4] if r[0] == K_ALU else 0 for r in instrs), dtype=np.int32, count=n
        )
        self.pipe = np.fromiter((r[5] for r in instrs), dtype=np.int32, count=n)
        self.interval = np.fromiter((r[6] for r in instrs), dtype=np.int32, count=n)
        self.rf_reads = np.fromiter((r[7] for r in instrs), dtype=np.float64, count=n)
        self.fetch = np.fromiter((r[8] for r in instrs), dtype=bool, count=n)
        self.batch_ok = bytearray(
            1
            if (r[0] == K_ALU or r[0] == K_CTRL) and r[6] <= 1 and not r[8]
            else 0
            for r in instrs
        )
        self.gmem_pcs = tuple(pc for pc, r in enumerate(instrs) if r[0] == K_GMEM)


class DecodedProgram:
    """One expanded instruction list, decoded for the fast issue loop."""

    __slots__ = (
        "instrs",
        "n",
        "nregs",
        "has_barrier",
        "warm_pcs",
        "_tparts",
        "_tlines",
        "_cparts",
        "_clines",
        "_soa",
    )

    def __init__(self, instrs, nregs, has_barrier):
        self.instrs = instrs
        self.n = len(instrs)
        self.nregs = nregs
        self.has_barrier = has_barrier
        #: Program positions of input-slot loads (``GMem.warm``), walked
        #: by ``SmWave.warm_shared_input`` without scanning every instr.
        self.warm_pcs = tuple(
            pc for pc, rec in enumerate(instrs) if rec[0] == K_GMEM and rec[4].warm
        )
        #: (pc, lane_start) -> tuple of deduplicated active-lane thread
        #: address components (ints); shared by all blocks' warps.
        self._tparts = {}
        #: (pc, lane_start, scalar mod line) -> sorted relative line
        #: byte addresses (line number pre-shifted to bytes); the
        #: absolute transaction set of a warp is this pattern translated
        #: by ``(scalar // line) * line`` (line sets are
        #: translation-invariant in whole lines).
        self._tlines = {}
        #: Content-keyed twins of the two pc-keyed caches above.  Loop
        #: expansion gives every sampled iteration its own pc while the
        #: thread-term tuple — the only input that matters — repeats, so
        #: keying by ``(tterms, lane_start)`` / ``(tterms, w1,
        #: lane_start, rem)`` computes each distinct pattern once per
        #: program instead of once per loop iteration.  Values are then
        #: aliased into the pc-keyed dicts so the direct ``_tlines``
        #: probe in :func:`repro.gpu.sm._gmem_txs` keeps its flat key.
        self._cparts = {}
        self._clines = {}
        self._soa = None

    def soa(self) -> ProgramSoA:
        """Structure-of-arrays view, built lazily once per program."""
        view = self._soa
        if view is None:
            view = self._soa = ProgramSoA(self.instrs)
        return view

    def thread_part(self, pc: int, gmem: GMem, warp) -> tuple:
        """Deduplicated thread-term address components for *warp*.

        The value depends only on ``warp.lane_start`` (lane symbols and
        the active mask are functions of lane_start and the kernel's
        fixed block geometry), so it is computed once per lane offset.
        """
        key = (pc, warp.lane_start)
        vals = self._tparts.get(key)
        if vals is None:
            ckey = (gmem.tterms, warp.lane_start)
            vals = self._cparts.get(ckey)
            if vals is None:
                total = None
                for term in gmem.tterms:
                    part = term.apply(warp.lane_syms[term.sym])
                    total = part if total is None else total + part
                vals = tuple(sorted(set(total[warp.active_lanes].tolist())))
                self._cparts[ckey] = vals
            self._tparts[key] = vals
        return vals

    def tx_lines(self, pc: int, gmem: GMem, warp, rem: int) -> tuple:
        """Sorted relative transaction byte addresses for
        ``scalar % line == rem``.

        For any integers ``part`` and ``scalar = q * 128 + rem``,
        ``(part + scalar) >> 7 == ((part + rem) >> 7) + q`` — so the
        coalesced line set only depends on the thread parts and the
        scalar's offset within its line, and translates by ``q`` whole
        lines.  The union of first and straddle-last lines equals the
        coalescer's ``unique(concat(first, last))``.  Entries are
        pre-shifted back to byte addresses so a ``q == 0`` access can
        use the cached tuple as-is.
        """
        key = (pc, warp.lane_start, rem)
        lines = self._tlines.get(key)
        if lines is None:
            w1 = gmem.w1
            ckey = (gmem.tterms, w1, warp.lane_start, rem)
            lines = self._clines.get(ckey)
            if lines is None:
                acc = set()
                for part in self.thread_part(pc, gmem, warp):
                    a = part + rem
                    acc.add(a >> _TRANSACTION_SHIFT)
                    if w1:
                        acc.add((a + w1) >> _TRANSACTION_SHIFT)
                lines = tuple(v << _TRANSACTION_SHIFT for v in sorted(acc))
                self._clines[ckey] = lines
            self._tlines[key] = lines
        return lines


def decode_program(expanded: list) -> DecodedProgram:
    """Decode *expanded* (a list of ``ExpandedInstr``) once."""
    out = []
    max_reg = -1
    has_barrier = False
    for pc, instr in enumerate(expanded):
        srcs = tuple(r.index for r in instr.srcs)
        for ri in srcs:
            if ri > max_reg:
                max_reg = ri
        dst = -1 if instr.dst is None else instr.dst.index
        if dst > max_reg:
            max_reg = dst
        weight = instr.weight
        pipe_i = PIPE_INDEX[instr.pipe]
        interval = PIPE_INTERVALS[pipe_i]
        fetch = pc % FETCH_PERIOD == 0 and pc > 0
        aux = None

        if instr.op is Op.BAR:
            kind = K_BAR
            has_barrier = True
        elif instr.is_mem:
            space = instr.space
            if space in (MemSpace.GLOBAL, MemSpace.LOCAL) and instr.addr is not None:
                kind = K_GMEM
                if instr.is_load and dst < 0:
                    raise ValueError("load without a destination register")
                aux = _decode_addr(instr)
            elif space is MemSpace.SHARED:
                kind = K_SMEM
                if instr.is_load and dst < 0:
                    raise ValueError("load without a destination register")
                aux = instr.is_load
            elif space in (MemSpace.CONST, MemSpace.PARAM):
                kind = K_CMEM
                if instr.is_load and dst < 0:
                    raise ValueError("load without a destination register")
                aux = instr.is_load
            elif instr.is_load and dst >= 0:
                kind = K_MEMLOAD
            else:
                kind = K_MEMOP
        elif dst >= 0:
            kind = K_ALU
            aux = instr.latency
        else:
            kind = K_CTRL

        out.append(
            (kind, srcs, dst, weight, aux, pipe_i, interval, len(srcs) * weight, fetch)
        )
    return DecodedProgram(out, max_reg + 1, has_barrier)


def _decode_addr(instr) -> GMem:
    """Fold one ``AddrExpr`` + loop environment into a :class:`GMem`."""
    addr = instr.addr
    env = instr.loop_env
    const = addr.base
    bterms = []
    tterms = []
    for term in addr.terms:
        sym = term.sym
        if sym in THREAD_SYMBOLS:
            tterms.append(term)
        elif sym in env:
            const += int(term.apply(env[sym]))
        elif sym == "one":
            const += int(term.apply(1))
        else:
            bterms.append(term)
    return GMem(
        const,
        tuple(bterms),
        tuple(tterms),
        max(0, instr.width_bytes - 1),
        instr.is_load,
        instr.is_load and WARM_LO <= addr.base < WARM_HI,
    )
