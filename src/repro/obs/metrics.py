"""Counters, gauges and histograms attached to the active tracer.

The registry is deliberately small — three metric kinds cover what the
execution layers need to report:

* :class:`Counter` — monotonically increasing totals (kernel-cache
  hits, fresh simulations, shed requests, SLO violations);
* :class:`Gauge` — a sampled value over time, keeping a ``(ts, value)``
  timeline in the clock domain it was registered with (per-device queue
  depths over simulated time).  Gauge timelines export as Chrome-trace
  counter events, so Perfetto draws them as graphs;
* :class:`Histogram` — a distribution summary (batch sizes, request
  latencies); raw observations are retained up to a cap, after which
  only count/sum/min/max stay exact and percentiles reflect the
  retained prefix.

Names are dot-scoped by layer (``gpu.*``, ``runs.*``, ``serve.*``).
Re-registering a name returns the existing metric; registering it as a
different kind raises, since silent kind clashes would corrupt exports.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A sampled value with a timeline in one clock domain."""

    __slots__ = ("name", "domain", "value", "timeline")

    def __init__(self, name: str, domain: str) -> None:
        self.name = name
        self.domain = domain
        self.value = 0.0
        self.timeline: list[tuple[float, float]] = []

    def set(self, value: float, ts: float) -> None:
        self.value = value
        self.timeline.append((ts, value))

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "last": self.value,
            "samples": len(self.timeline),
            "max": max((v for _, v in self.timeline), default=0.0),
        }


class Histogram:
    """A distribution summary with capped raw retention."""

    __slots__ = ("name", "count", "total", "min", "max", "_values", "_cap")

    def __init__(self, name: str, cap: int = 100_000) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._values: list[float] = []
        self._cap = cap

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._values) < self._cap:
            self._values.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained observations."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(1, -(-len(ordered) * q // 100))
        return ordered[int(rank) - 1]

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "retained": len(self._values),
        }


class MetricsRegistry:
    """Create-or-return registry of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, domain: str = "sim_ms") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, domain))

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name))

    def gauges(self) -> list[Gauge]:
        """Every registered gauge (export iterates their timelines)."""
        return [m for m in self._metrics.values() if type(m) is Gauge]

    def to_dict(self) -> dict:
        """Stable JSON form grouped by metric kind, names sorted."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if type(metric) is Counter:
                out["counters"][name] = metric.to_dict()
            elif type(metric) is Gauge:
                out["gauges"][name] = metric.to_dict()
            else:
                out["histograms"][name] = metric.to_dict()
        return out


class _NullMetric:
    """Absorbs every update without recording anything."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float, ts: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """The registry of the disabled tracer: hands out one no-op metric."""

    __slots__ = ()

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, domain: str = "sim_ms") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauges(self) -> list:
        return []

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared no-op registry used by :data:`repro.obs.tracer.NULL_TRACER`.
NULL_METRICS = NullMetricsRegistry()
