"""``repro.obs`` — execution tracing and metrics for every layer.

The evaluation this project reproduces is fundamentally about
*timelines and breakdowns* — per-layer execution-time decomposition,
stall-cycle attribution, nvprof-style per-kernel characterization — yet
aggregate result containers only say *how much*, never *when*.  This
package adds the missing observability layer:

* :mod:`repro.obs.tracer` — a span-based tracer.  Spans carry a clock
  **domain** (GPU core cycles, serving simulated milliseconds, or host
  wall-clock seconds) plus a (process, thread) track, so events from
  the GPU issue loop, the run executor and the serving engine coexist
  in one trace.  A process-global :data:`NULL_TRACER` keeps the
  disabled path allocation-free: instrumented code checks one ``bool``
  attribute and does nothing else.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  (cache hits, queue depths, SLO violations, batch sizes) attached to
  the active tracer.
* :mod:`repro.obs.export` — Chrome-trace-event JSON export, loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``, plus
  the minimal schema validator the tests and CI smoke job run.

Instrumented layers (all guarded by ``get_tracer().enabled``):

* :mod:`repro.gpu` — per-kernel spans on the network timeline and
  per-warp stall/issue phases inside :class:`repro.gpu.sm.SmWave`;
* :mod:`repro.runs` — plan, cache-probe and fresh-simulation spans in
  the executor;
* :mod:`repro.serve` — request arrival instants, queue-wait spans and
  batch-execution spans in the serving engine.

Enable tracing either through the ``repro trace`` CLI or in code::

    from repro.obs import capture_trace, write_trace

    with capture_trace() as tracer:
        simulate_network("alexnet", GP102)
    write_trace(tracer, "alexnet.trace.json")
"""

from repro.obs.export import to_chrome_trace, validate_chrome_trace, write_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    CYCLES,
    NULL_TRACER,
    SIM_MS,
    WALL_S,
    Instant,
    NullTracer,
    Span,
    Tracer,
    capture_trace,
    get_tracer,
    set_tracer,
)

__all__ = [
    "CYCLES",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SIM_MS",
    "Span",
    "Tracer",
    "WALL_S",
    "capture_trace",
    "get_tracer",
    "set_tracer",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_trace",
]
