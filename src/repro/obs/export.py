"""Chrome-trace-event JSON export and the minimal schema validator.

The emitted object follows the Trace Event Format's "JSON Object
Format": a ``traceEvents`` array of complete (``X``), instant (``i``),
counter (``C``) and metadata (``M``) events, plus extra top-level keys
viewers ignore (``metrics``, ``otherData``).  Both Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load it directly.

Clock mapping: Chrome-trace timestamps are microseconds.  Each span
carries a clock domain (:mod:`repro.obs.tracer`), scaled as

* ``cycles`` — 1 cycle -> 1 us (a 1.5 GHz kernel renders ~1500x slower
  than real time; relative widths are what matter);
* ``sim_ms`` — 1 simulated ms -> 1000 us (real scale);
* ``wall_s`` — 1 s -> 1e6 us (real scale).

Domains never share a track: each unique (domain, process) pair maps
to its own pid, so cross-domain timestamps are never compared on one
timeline.  Process/thread names arrive as ``M`` metadata events.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import Gauge
from repro.obs.tracer import CYCLES, SIM_MS, WALL_S, Tracer

#: Microseconds per unit of each clock domain.
DOMAIN_SCALE_US = {CYCLES: 1.0, SIM_MS: 1_000.0, WALL_S: 1_000_000.0}

#: Human label appended to process names, naming the clock.
DOMAIN_LABEL = {CYCLES: "cycles", SIM_MS: "simulated time", WALL_S: "wall clock"}


class _TrackMap:
    """Assigns stable pids/tids to (domain, process, thread) tracks."""

    def __init__(self) -> None:
        self._pids: dict[tuple[str, str], int] = {}
        self._tids: dict[tuple[int, str], int] = {}
        self.metadata: list[dict] = []

    def resolve(self, domain: str, process: str, thread: str) -> tuple[int, int]:
        pkey = (domain, process)
        pid = self._pids.get(pkey)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[pkey] = pid
            self.metadata.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"{process} [{DOMAIN_LABEL[domain]}]"},
            })
        tkey = (pid, thread)
        tid = self._tids.get(tkey)
        if tid is None:
            tid = sum(1 for existing in self._tids if existing[0] == pid) + 1
            self._tids[tkey] = tid
            self.metadata.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": thread},
            })
        return pid, tid


def to_chrome_trace(tracer: Tracer, meta: dict | None = None) -> dict:
    """Build the Chrome-trace JSON object for one captured trace."""
    tracks = _TrackMap()
    events: list[dict] = []
    for span in tracer.spans:
        pid, tid = tracks.resolve(span.domain, span.process, span.thread)
        scale = DOMAIN_SCALE_US[span.domain]
        event = {
            "name": span.name, "cat": span.cat, "ph": "X",
            "ts": span.ts * scale, "dur": span.dur * scale,
            "pid": pid, "tid": tid,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for inst in tracer.instants:
        pid, tid = tracks.resolve(inst.domain, inst.process, inst.thread)
        scale = DOMAIN_SCALE_US[inst.domain]
        event = {
            "name": inst.name, "cat": inst.cat, "ph": "i", "s": "t",
            "ts": inst.ts * scale, "pid": pid, "tid": tid,
        }
        if inst.args:
            event["args"] = inst.args
        events.append(event)
    for gauge in tracer.metrics.gauges():
        if not isinstance(gauge, Gauge) or not gauge.timeline:
            continue
        pid, _ = tracks.resolve(gauge.domain, "metrics", gauge.name)
        scale = DOMAIN_SCALE_US[gauge.domain]
        for ts, value in gauge.timeline:
            events.append({
                "name": gauge.name, "cat": "metric", "ph": "C",
                "ts": ts * scale, "pid": pid, "tid": 0,
                "args": {"value": value},
            })
    payload = {
        "traceEvents": tracks.metadata + events,
        "displayTimeUnit": "ms",
        "metrics": tracer.metrics.to_dict(),
        "otherData": {
            "tool": "repro trace",
            "spans": len(tracer.spans),
            "instants": len(tracer.instants),
            "dropped_events": tracer.dropped,
            **(meta or {}),
        },
    }
    return payload


def write_trace(tracer: Tracer, path: str | Path, meta: dict | None = None) -> dict:
    """Export *tracer* and write the JSON artifact; returns the payload."""
    payload = to_chrome_trace(tracer, meta)
    Path(path).write_text(json.dumps(payload))
    return payload


def validate_chrome_trace(payload: dict) -> list[str]:
    """Minimal schema check; returns a list of problems (empty = valid).

    Checks what a viewer actually needs: a ``traceEvents`` list whose
    entries carry a phase, numeric non-negative timestamps/durations
    where the phase requires them, and integer pid/tid.  Used by the
    tracer tests and the CI trace-smoke job.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "C", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems
