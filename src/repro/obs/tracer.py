"""The span tracer and its process-global installation point.

Three clock domains cover everything the project simulates or does:

* :data:`CYCLES` — GPU core cycles, the clock of :mod:`repro.gpu`.
  Exported traces render one cycle as one microsecond.
* :data:`SIM_MS` — simulated milliseconds, the clock of
  :mod:`repro.serve`'s discrete-event engine.
* :data:`WALL_S` — host wall-clock seconds since the tracer was
  created, the clock of the :mod:`repro.runs` orchestration layer
  (planning, cache probes, fresh simulations).

A span is a *complete* interval — the simulators always know both
endpoints when they record, so there is no begin/end pairing to get
wrong.  Tracks are (process, thread) string pairs mapped to Chrome
trace pids/tids at export time.

The disabled path is the design center: :data:`NULL_TRACER` is a
singleton whose ``enabled`` attribute is a class-level ``False``, and
every instrumentation site reduces to one attribute check — no method
calls, no allocations — so simulation numbers (``BENCH_sim.json``) are
unaffected when tracing is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, NamedTuple

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

#: Clock domain: GPU core cycles (1 cycle renders as 1 us).
CYCLES = "cycles"

#: Clock domain: simulated milliseconds (the serving engine's clock).
SIM_MS = "sim_ms"

#: Clock domain: host wall-clock seconds since tracer creation.
WALL_S = "wall_s"

#: All known domains, for validation.
DOMAINS = (CYCLES, SIM_MS, WALL_S)


class Span(NamedTuple):
    """One complete interval on one track."""

    name: str
    cat: str
    domain: str
    ts: float
    dur: float
    process: str
    thread: str
    args: dict | None = None


class Instant(NamedTuple):
    """One point event on one track."""

    name: str
    cat: str
    domain: str
    ts: float
    process: str
    thread: str
    args: dict | None = None


class NullTracer:
    """The disabled tracer: one ``False`` attribute, nothing else.

    Instrumented code reads ``tracer.enabled`` (a class attribute, so
    no per-instance dict lookup) and skips all recording.  The method
    surface still exists so library code may call it unconditionally
    in cold paths.
    """

    __slots__ = ()

    enabled = False
    #: Warp-phase recording in the SM issue loop (off with the tracer).
    warps = False
    metrics = NULL_METRICS

    def span(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def wall(self) -> float:
        return 0.0


#: The process-global disabled tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer: spans, instants and a metrics registry.

    ``warps=False`` keeps kernel/run/serve spans but skips the per-warp
    phase recording inside the SM issue loop (the only instrumentation
    whose volume scales with simulated cycles).  ``max_events`` bounds
    total recorded spans+instants; once exceeded, further events are
    counted in :attr:`dropped` instead of retained, so a runaway trace
    degrades loudly (the export reports the drop count) rather than
    exhausting memory.
    """

    enabled = True

    def __init__(self, warps: bool = True, max_events: int = 2_000_000) -> None:
        self.warps = warps
        self.max_events = max_events
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = MetricsRegistry()
        self.dropped = 0
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        domain: str,
        ts: float,
        dur: float,
        process: str,
        thread: str,
        args: dict | None = None,
    ) -> None:
        """Record one complete interval."""
        if len(self.spans) + len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.spans.append(Span(name, cat, domain, ts, dur, process, thread, args))

    def instant(
        self,
        name: str,
        cat: str,
        domain: str,
        ts: float,
        process: str,
        thread: str,
        args: dict | None = None,
    ) -> None:
        """Record one point event."""
        if len(self.spans) + len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append(Instant(name, cat, domain, ts, process, thread, args))

    def wall(self) -> float:
        """Seconds of host wall clock since this tracer was created."""
        return time.perf_counter() - self._t0


# ----------------------------------------------------------------------
# process-global installation
# ----------------------------------------------------------------------
_TRACER: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The currently installed tracer (:data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer: NullTracer | Tracer) -> NullTracer | Tracer:
    """Install *tracer* globally; returns the previously installed one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def capture_trace(
    warps: bool = True, max_events: int = 2_000_000
) -> Iterator[Tracer]:
    """Install a fresh :class:`Tracer` for the duration of the block.

    The previous tracer (usually :data:`NULL_TRACER`) is restored on
    exit, even on error, so library users and tests cannot leak an
    enabled tracer into unrelated code.
    """
    tracer = Tracer(warps=warps, max_events=max_events)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
