"""The single registry of paper experiments.

Experiment modules (``repro.harness.tables`` and the sixteen
``repro.harness.figNN_*`` modules) call :func:`register` at import time;
:func:`all_experiments` imports them all and returns the registry in
paper order.  The registry is the one source of truth behind
``python -m repro.harness.suite``, ``repro harness list|run`` and the
planner's full-suite matrix.
"""

from __future__ import annotations

from importlib import import_module

from repro.runs.experiment import Experiment

#: Modules that define (and register) experiments, in paper order.
EXPERIMENT_MODULES = (
    "repro.harness.tables",
    "repro.harness.fig01_exec_breakdown",
    "repro.harness.fig02_l1_sensitivity",
    "repro.harness.fig03_peak_power",
    "repro.harness.fig04_layer_power",
    "repro.harness.fig05_component_power",
    "repro.harness.fig06_tx1_pynq",
    "repro.harness.fig07_stall_breakdown",
    "repro.harness.fig08_op_breakdown",
    "repro.harness.fig09_top_ops",
    "repro.harness.fig10_dtype_breakdown",
    "repro.harness.fig11_memfootprint",
    "repro.harness.fig12_register_usage",
    "repro.harness.fig13_l2_misses",
    "repro.harness.fig14_l2_miss_ratio",
    "repro.harness.fig15_scheduler",
    "repro.harness.fig16_scheduler_alexnet",
    "repro.harness.figx_hetero_energy",
)

_REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add one experiment to the registry (idempotent per exp_id)."""
    _REGISTRY[experiment.exp_id] = experiment
    return experiment


def all_experiments() -> dict[str, Experiment]:
    """Every registered experiment, id -> spec, in paper order.

    Importing the experiment modules is deferred to first use so the
    ``repro.runs`` core stays import-cycle-free (the harness modules
    import :class:`Experiment` from here).
    """
    for module in EXPERIMENT_MODULES:
        import_module(module)
    order = {exp_id: i for i, exp_id in enumerate(_expected_order())}
    return dict(
        sorted(_REGISTRY.items(), key=lambda kv: order.get(kv[0], len(order)))
    )


def get_experiment(exp_id: str) -> Experiment:
    """One experiment by id; raises KeyError with the known ids."""
    experiments = all_experiments()
    if exp_id not in experiments:
        raise KeyError(
            f"unknown experiment {exp_id!r} (known: {', '.join(experiments)})"
        )
    return experiments[exp_id]


def _expected_order() -> tuple[str, ...]:
    return tuple(
        [f"table{i}" for i in range(1, 5)] + [f"fig{i:02d}" for i in range(1, 17)]
    )
