"""Execute a run plan against the unified store.

:class:`Executor` is the cached read-through front door to
:func:`repro.gpu.simulator.simulate_network`: memory -> stored network
run -> fresh simulation (which itself reads/writes the store's kernel
layer, so even a network-entry miss is cheap when sibling combos share
kernels).  :meth:`Executor.execute` fans a plan's missing entries out
over a process pool, merging results in submission order so the store's
contents are deterministic regardless of worker completion order.

Both live and cached paths return :class:`StoredNetworkResult` decoded
from the JSON payload, so every consumer sees byte-identical values
whether the run was fresh or a hit.

When a tracer is installed (:mod:`repro.obs`), the executor records
wall-clock spans for store probes, fresh simulations and whole-plan
passes, plus ``runs.*`` hit/miss counters.  Worker processes spawned by
:meth:`Executor.execute` do not inherit the tracer — only in-process
work appears in a trace (the ``repro trace`` CLI therefore runs
serially).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.gpu.config import GpuConfig
from repro.obs.tracer import WALL_S, get_tracer
from repro.runs.planner import Plan
from repro.runs.spec import RunSpec
from repro.runs.store import (
    ResultStore,
    StoredNetworkResult,
    result_from_payload,
    result_to_payload,
)


@dataclass
class ExecutionReport:
    """Outcome of one :meth:`Executor.execute` pass.

    ``failed`` maps the content key of every spec whose simulation
    raised to ``"<describe>: <ErrorType>: <message>"`` — a failing run
    no longer aborts the batch, it is reported per-spec and its
    sibling runs complete.
    """

    planned: int
    fresh: int
    cached: int
    failed: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line log: '[plan] N unique runs: F fresh, C cached'."""
        failed = f", {len(self.failed)} failed" if self.failed else ""
        return (
            f"[plan] {self.planned} unique runs: "
            f"{self.fresh} fresh, {self.cached} cached{failed}"
        )

    def to_dict(self) -> dict:
        """Stable JSON form (the :class:`repro.stats.Stats` protocol)."""
        return {
            "planned": self.planned,
            "fresh": self.fresh,
            "cached": self.cached,
            "failed": dict(self.failed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionReport":
        """Inverse of :meth:`to_dict`; raises on malformed input."""
        return cls(
            planned=data["planned"],
            fresh=data["fresh"],
            cached=data["cached"],
            failed=dict(data.get("failed", {})),
        )


class Executor:
    """Cached, parallelizable runner of :class:`RunSpec` simulations.

    ``store=None`` keeps results in memory only (no disk IO) — used by
    ``--no-cache`` runs and unit tests.
    """

    def __init__(self, store: ResultStore | None = None, verbose: bool = False) -> None:
        self.store = store
        self.verbose = verbose
        self._memory: dict[str, StoredNetworkResult] = {}
        #: Fresh simulations performed through this executor.
        self.fresh = 0
        #: Lookups served from memory or the store.
        self.hits = 0

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec, refresh: bool = False) -> StoredNetworkResult:
        """Run (or load) one network simulation.

        ``refresh=True`` skips the memory and store reads and simulates
        unconditionally, re-storing the result — the ``repro trace``
        CLI uses it so a trace always contains live GPU spans even when
        the run is already cached.
        """
        tracer = get_tracer()
        key = spec.key()
        if not refresh:
            cached = self._memory.get(key)
            if cached is not None:
                self.hits += 1
                if tracer.enabled:
                    tracer.metrics.counter("runs.memory_hits").inc()
                return cached
            if self.store is not None:
                probe_start = tracer.wall()
                stored = self.store.get_run(spec)
                if tracer.enabled:
                    tracer.span(
                        f"probe {spec.network}", "cache", WALL_S,
                        probe_start, tracer.wall() - probe_start,
                        process="runs", thread="executor",
                        args={"run": spec.describe(), "hit": stored is not None},
                    )
                    tracer.metrics.counter(
                        "runs.store_hits" if stored is not None else "runs.store_misses"
                    ).inc()
                if stored is not None:
                    self._memory[key] = stored
                    self.hits += 1
                    return stored
        if self.verbose:
            print(f"[run] simulating {spec.describe()}", flush=True)
        sim_start = tracer.wall()
        payload = _simulate_spec(spec, self.store)
        if tracer.enabled:
            tracer.span(
                f"simulate {spec.network}", "run", WALL_S,
                sim_start, tracer.wall() - sim_start,
                process="runs", thread="executor",
                args={"run": spec.describe(), "refresh": refresh},
            )
            tracer.metrics.counter("runs.fresh").inc()
        if self.store is not None:
            self.store.put_run(spec, payload)
        result = result_from_payload(payload, spec.config, spec.options)
        assert result is not None  # freshly encoded payloads always decode
        self._memory[key] = result
        self.fresh += 1
        return result

    def execute(self, plan: Plan | Sequence[RunSpec], jobs: int = 1) -> ExecutionReport:
        """Materialize every planned run, fanning misses over *jobs*
        worker processes; returns fresh/cached counts.

        A run whose simulation raises does not abort the pass: the
        failure is recorded under the spec's content key in
        :attr:`ExecutionReport.failed` (with the spec's human identity
        and the error) and every sibling run still completes.
        """
        tracer = get_tracer()
        pass_start = tracer.wall()
        specs = plan.specs if isinstance(plan, Plan) else tuple(plan)
        pending = self._missing(specs)
        fresh_before = self.fresh
        failed: dict[str, str] = {}
        if jobs > 1 and len(pending) > 1:
            failed = self._execute_parallel(pending, jobs)
        else:
            for spec in pending:
                try:
                    self.run(spec)
                except Exception as exc:  # surfaced per-run, not raised
                    failed[spec.key()] = _failure_message(spec, exc)
        # Touch every planned spec so memory holds the full matrix and
        # the hit/fresh counters reflect the whole plan.
        for spec in specs:
            key = spec.key()
            if key not in self._memory and key not in failed:
                try:
                    self.run(spec)
                except Exception as exc:
                    failed[key] = _failure_message(spec, exc)
        fresh = self.fresh - fresh_before
        report = ExecutionReport(
            planned=len(specs),
            fresh=fresh,
            cached=len(specs) - fresh - len(failed),
            failed=failed,
        )
        if tracer.enabled:
            if failed:
                tracer.metrics.counter("runs.failed").inc(len(failed))
            tracer.span(
                "execute-plan", "plan", WALL_S,
                pass_start, tracer.wall() - pass_start,
                process="runs", thread="executor",
                args={
                    "planned": report.planned,
                    "fresh": report.fresh,
                    "cached": report.cached,
                    "failed": len(report.failed),
                    "jobs": jobs,
                },
            )
        return report

    # ------------------------------------------------------------------
    def _missing(self, specs: Iterable[RunSpec]) -> list[RunSpec]:
        """Planned specs with no memory or store entry (dedup by key)."""
        missing: list[RunSpec] = []
        seen: set[str] = set()
        for spec in specs:
            key = spec.key()
            if key in seen or key in self._memory:
                continue
            seen.add(key)
            if self.store is not None and self.store.run_path(spec).exists():
                continue
            missing.append(spec)
        return missing

    def _execute_parallel(self, pending: list[RunSpec], jobs: int) -> dict[str, str]:
        """Fan *pending* out over worker processes in chunks.

        Campaign-scale plans submit thousands of specs; chunking caps
        the submission queue and per-future IPC at a few dozen tasks
        per worker instead of one task per spec.  Workers catch
        per-spec exceptions and report them alongside successful
        payloads, so one failing combo costs one table cell, not the
        batch.  Returns ``key -> failure message``.
        """
        cache_dir = None if self.store is None else self.store.cache_dir
        chunk_size = max(
            1, min(CHUNK_MAX_SPECS, math.ceil(len(pending) / (jobs * CHUNKS_PER_JOB)))
        )
        chunks = [
            pending[i:i + chunk_size]
            for i in range(0, len(pending), chunk_size)
        ]
        failed: dict[str, str] = {}
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = [
                pool.submit(_simulate_chunk_worker, chunk, cache_dir)
                for chunk in chunks
            ]
            # Canonical-order merge: collect in submission order so the
            # store contents are deterministic no matter which worker
            # finishes first.
            for chunk, future in zip(chunks, futures):
                try:
                    outcomes = future.result()
                except Exception as exc:  # the worker process itself died
                    outcomes = [(None, f"{type(exc).__name__}: {exc}")] * len(chunk)
                for spec, (payload, error) in zip(chunk, outcomes):
                    if error is not None:
                        failed[spec.key()] = f"{spec.describe()}: {error}"
                        continue
                    if self.store is not None:
                        self.store.put_run(spec, payload)
                    result = result_from_payload(payload, spec.config, spec.options)
                    assert result is not None
                    self._memory[spec.key()] = result
                    self.fresh += 1
        return failed


#: Upper bound on specs per worker task.
CHUNK_MAX_SPECS = 16
#: Target number of tasks per worker (keeps the pool load-balanced
#: when per-spec cost varies, e.g. resnet vs gru).
CHUNKS_PER_JOB = 4


def _failure_message(spec: RunSpec, exc: Exception) -> str:
    return f"{spec.describe()}: {type(exc).__name__}: {exc}"


def _simulate_spec(spec: RunSpec, store: ResultStore | None) -> dict:
    """One full network run, as a JSON-ready payload.

    GPU configs go through the cycle-level simulator; accelerator
    configs go through the tiling mapper's analytic execution model.
    """
    if not isinstance(spec.config, GpuConfig):
        from repro.mapping.execute import run_mapped_network

        live = run_mapped_network(spec.network, spec.config, spec.options)
        return result_to_payload(live)
    from repro.gpu.simulator import simulate_network

    cache = store.kernels if store is not None else None
    live = simulate_network(spec.network, spec.config, spec.options, cache=cache)
    return result_to_payload(live)


def _simulate_spec_worker(spec: RunSpec, cache_dir) -> dict:
    """Module-level (picklable) worker: simulate via a private store."""
    store = ResultStore(cache_dir) if cache_dir is not None else None
    return _simulate_spec(spec, store)


def _simulate_chunk_worker(specs: Sequence[RunSpec], cache_dir) -> list[tuple]:
    """Simulate a chunk of specs, catching per-spec failures.

    Returns one ``(payload, None)`` or ``(None, "ErrType: message")``
    pair per spec, aligned with the input order.
    """
    store = ResultStore(cache_dir) if cache_dir is not None else None
    outcomes: list[tuple] = []
    for spec in specs:
        try:
            outcomes.append((_simulate_spec(spec, store), None))
        except Exception as exc:
            outcomes.append((None, f"{type(exc).__name__}: {exc}"))
    return outcomes
