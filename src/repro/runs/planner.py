"""Plan the minimal run matrix for a set of experiments.

Every registered :class:`~repro.runs.experiment.Experiment` declares the
:class:`~repro.runs.spec.RunSpec` set it needs.  The planner collects
them in experiment order and dedupes by content key, so the executor
simulates each unique (network, config, options, scheduler) combination
exactly once no matter how many experiments share it — Figure 15's GTO
column, Figure 16's AlexNet runs and Figure 1's default-config runs all
collapse into the Figure 2 sweep's entries, the way FPGA toolflows
converge many networks onto one mapping pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.tracer import WALL_S, get_tracer
from repro.runs.experiment import Experiment
from repro.runs.spec import PlanContext, RunSpec


@dataclass
class Plan:
    """A deduped, canonically ordered run matrix."""

    #: Unique specs in first-seen (experiment declaration) order.
    specs: tuple[RunSpec, ...] = ()
    #: exp_id -> the specs that experiment requires (pre-dedup view).
    by_experiment: dict[str, tuple[RunSpec, ...]] = field(default_factory=dict)

    @property
    def total_requested(self) -> int:
        """Sum of per-experiment requirements before deduplication."""
        return sum(len(specs) for specs in self.by_experiment.values())

    def describe(self) -> str:
        """Planner log: the dedup ratio and each unique run."""
        lines = [
            f"[plan] {len(self.by_experiment)} experiments requested "
            f"{self.total_requested} runs -> {len(self.specs)} unique"
        ]
        lines.extend(f"[plan]   {spec.describe()}" for spec in self.specs)
        return "\n".join(lines)


def build_plan(experiments: Iterable[Experiment], ctx: PlanContext | None = None) -> Plan:
    """Collect and dedupe every experiment's required runs."""
    ctx = ctx or PlanContext()
    tracer = get_tracer()
    plan_start = tracer.wall()
    seen: dict[str, RunSpec] = {}
    ordered: list[RunSpec] = []
    by_experiment: dict[str, tuple[RunSpec, ...]] = {}
    for experiment in experiments:
        required = tuple(experiment.plan(ctx))
        by_experiment[experiment.exp_id] = required
        for spec in required:
            key = spec.key()
            if key not in seen:
                seen[key] = spec
                ordered.append(spec)
    plan = Plan(specs=tuple(ordered), by_experiment=by_experiment)
    if tracer.enabled:
        tracer.span(
            "plan", "plan", WALL_S, plan_start, tracer.wall() - plan_start,
            process="runs", thread="planner",
            args={
                "experiments": len(by_experiment),
                "requested": plan.total_requested,
                "unique": len(plan.specs),
            },
        )
    return plan
