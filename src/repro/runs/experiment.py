"""The declarative experiment spec: required runs -> series -> checks.

Every paper table and figure is one :class:`Experiment`:

* ``plan(ctx)`` declares the :class:`~repro.runs.spec.RunSpec` set the
  experiment needs (empty for analytic experiments that only compile);
* ``aggregate(view)`` folds the cached runs into JSON-serializable
  series (the figure's data);
* ``checks(view, series)`` evaluates the paper's qualitative claims
  into a :class:`~repro.harness.report.Check` list;
* ``render`` hints how ``--chart`` should draw the series.

Experiments never simulate directly: the :class:`RunView` handed to
``aggregate``/``checks`` reads through an
:class:`~repro.runs.executor.Executor`, so a planned-and-executed
matrix makes aggregation pure cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.gpu.config import GpuConfig, SimOptions
from repro.runs.spec import PlanContext, RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.harness.report import Check, ExperimentResult
    from repro.runs.executor import Executor
    from repro.runs.store import StoredNetworkResult


class RunView:
    """Read-only access to planned runs during aggregation.

    ``view.run(network, config, options)`` mirrors the executor's
    read-through; ``view.ctx`` carries the planning context so
    aggregates iterate the same (possibly restricted) network subset
    the planner saw.
    """

    def __init__(self, executor: "Executor", ctx: PlanContext) -> None:
        self._executor = executor
        self.ctx = ctx

    def run(
        self,
        network: str,
        config: GpuConfig,
        options: SimOptions | None = None,
    ) -> "StoredNetworkResult":
        """The cached result of one run (simulating only on a planner miss)."""
        return self._executor.run(RunSpec(network, config, options or self.ctx.options))

    def nets(self, names: tuple[str, ...]) -> tuple[str, ...]:
        """*names* filtered to the context's network subset."""
        return self.ctx.nets(names)


#: plan(ctx) -> the runs an experiment requires.
PlanFn = Callable[[PlanContext], tuple[RunSpec, ...]]
#: aggregate(view) -> JSON-serializable series dict.
AggregateFn = Callable[[RunView], dict]
#: checks(view, series) -> the paper-claim Check list.
ChecksFn = Callable[[RunView, dict], "list[Check]"]


def _no_runs(ctx: PlanContext) -> tuple[RunSpec, ...]:
    """Plan of an analytic experiment: nothing to simulate."""
    return ()


@dataclass(frozen=True)
class Experiment:
    """One declarative paper table or figure."""

    exp_id: str
    title: str
    aggregate: AggregateFn
    plan: PlanFn = _no_runs
    checks: ChecksFn | None = None
    #: Render hint for terminal charts: "bars", "stack" or "none".
    render: str = "bars"
    notes: str = ""


def run_experiment(
    experiment: Experiment, executor: "Executor", ctx: PlanContext | None = None
) -> "ExperimentResult":
    """Aggregate one experiment from (cached) runs and evaluate checks.

    Checks quantify over the full network matrix, so they are skipped on
    restricted contexts (golden-series fixtures aggregate only).
    """
    from repro.harness.report import ExperimentResult

    ctx = ctx or PlanContext()
    view = RunView(executor, ctx)
    series = experiment.aggregate(view)
    checks = (
        experiment.checks(view, series)
        if experiment.checks is not None and ctx.full
        else []
    )
    return ExperimentResult(
        exp_id=experiment.exp_id,
        title=experiment.title,
        series=series,
        checks=checks,
        notes=experiment.notes,
    )
