"""The single content-addressed result store.

One directory (default ``.repro-cache/``, overridable with the
``REPRO_CACHE_DIR`` environment variable) persists every deterministic
simulation result the project produces, at two granularities:

* **kernel entries** — one JSON file per (kernel signature, config,
  options, engine) key in the store root, written by
  :func:`repro.gpu.simulator.simulate_network` through
  :class:`KernelResultCache` (unchanged format from the former
  ``repro.perf.cache``, which now re-exports from here);
* **network-run entries** — one JSON file per
  :class:`~repro.runs.spec.RunSpec` key under the ``runs/``
  subdirectory, written by :class:`~repro.runs.executor.Executor`.
  These absorb the cache half of the former ``harness/runner.py``
  (the separate ``.tango_cache/`` directory is gone; ``repro cache
  clear`` removes any stale one left by older checkouts).

Both layers share the invalidation contract: every field of the frozen
config/options dataclasses plus the active engine's version string
(:func:`repro.gpu.engine.engine_version` — resolved at call time, so
``--engine``/``REPRO_ENGINE`` switches key correctly) folds into a
SHA-256 key, so stale entries are never returned — they
are simply never looked up again.  Corrupt, truncated or
schema-mismatched files read as misses (and are rewritten on the next
store), never as errors: the cache must not be able to make a
simulation fail.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.engine import engine_version
from repro.gpu.occupancy import Occupancy
from repro.profiling.stats import KernelStats
from repro.runs.spec import RunSpec

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of the store holding whole-network run entries.
RUNS_SUBDIR = "runs"

#: The pre-unification network-result cache directory; dead since the
#: planner/executor refactor but possibly still on disk in old working
#: trees.  ``cache stats`` reports it and ``cache clear`` removes it.
LEGACY_TANGO_DIR = ".tango_cache"


def default_cache_dir() -> Path:
    """The cache directory honouring ``REPRO_CACHE_DIR``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def cache_key(signature: str, config: GpuConfig, options: SimOptions) -> str:
    """SHA-256 over the full kernel key tuple, as a hex digest."""
    payload = json.dumps(
        {
            "engine": engine_version(),
            "signature": signature,
            "config": asdict(config),
            "options": asdict(options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CachedKernel:
    """One deserialized kernel entry (everything a hit must restore)."""

    stats: KernelStats
    occupancy: Occupancy
    sample_factor: float
    block_factor: float


class KernelResultCache:
    """Content-addressed store of scaled per-kernel simulation results.

    ``cache_dir=None`` resolves through ``REPRO_CACHE_DIR`` to the
    default location.  The in-memory layer keeps raw payload dicts, not
    live objects: every :meth:`get` deserializes afresh so callers own
    their stats and cannot alias each other's counters.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(
        self, signature: str, config: GpuConfig, options: SimOptions
    ) -> CachedKernel | None:
        """Look up one kernel result; None on miss or unreadable entry."""
        key = cache_key(signature, config, options)
        payload = self._memory.get(key)
        if payload is None:
            try:
                payload = json.loads(self._path(key).read_text())
            except (OSError, ValueError):
                self.misses += 1
                return None
        entry = _decode(payload)
        if entry is None:
            # Corrupt/stale schema: forget it so a store can heal it.
            self._memory.pop(key, None)
            self.misses += 1
            return None
        self._memory[key] = payload
        self.hits += 1
        return entry

    def put(
        self,
        signature: str,
        config: GpuConfig,
        options: SimOptions,
        stats: KernelStats,
        occupancy: Occupancy,
        sample_factor: float,
        block_factor: float,
    ) -> None:
        """Store one kernel result (best-effort; IO errors are ignored)."""
        key = cache_key(signature, config, options)
        payload = {
            "engine": engine_version(),
            "stats": stats.to_dict(),
            "occupancy": asdict(occupancy),
            "sample_factor": sample_factor,
            "block_factor": block_factor,
        }
        self._memory[key] = payload
        self.stores += 1
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except OSError:
            pass


def _decode(payload: dict) -> CachedKernel | None:
    """Payload dict -> CachedKernel, or None when malformed."""
    try:
        if payload["engine"] != engine_version():
            return None
        return CachedKernel(
            stats=KernelStats.from_dict(payload["stats"]),
            occupancy=Occupancy(**payload["occupancy"]),
            sample_factor=payload["sample_factor"],
            block_factor=payload["block_factor"],
        )
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


# ----------------------------------------------------------------------
# whole-network run entries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoredKernelInfo:
    """Identity of one kernel launch inside a stored network run."""

    name: str
    node_name: str
    category: str
    sig: str
    total_blocks: int

    def signature(self) -> str:
        """Launch signature (method, mirroring ``KernelLaunch``)."""
        return self.sig


@dataclass
class StoredKernelResult:
    """Kernel entry of a stored run (API-compatible with KernelResult)."""

    kernel: StoredKernelInfo
    stats: KernelStats
    occupancy: Occupancy
    sample_factor: float
    block_factor: float

    @property
    def category(self) -> str:
        """Layer-type category."""
        return self.kernel.category


@dataclass
class StoredNetworkResult:
    """Stored network run exposing the ``NetworkResult`` read API.

    The power models, nvprof front-end and serving latency profiles all
    duck-type against this: it carries per-kernel stats *and* the
    occupancy/sampling fields :func:`repro.serve.profiles.profile_from_result`
    needs, so one store feeds every consumer.
    """

    network: str
    config: GpuConfig
    options: SimOptions
    kernels: list[StoredKernelResult] = field(default_factory=list)
    #: Distinct canonical kernel signatures in the launch sequence —
    #: the number of simulations the dedup path actually ran.
    unique_kernels: int = 0

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles."""
        return sum(k.stats.cycles for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        """End-to-end milliseconds at the platform clock."""
        return self.total_cycles / (self.config.clock_ghz * 1e6)

    def cycles_by_category(self) -> dict[str, float]:
        """Cycles per layer-type category."""
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.category] = out.get(k.category, 0.0) + k.stats.cycles
        return out

    def stats_by_category(self) -> dict[str, KernelStats]:
        """Merged counters per layer-type category."""
        out: dict[str, KernelStats] = {}
        for k in self.kernels:
            out.setdefault(k.category, KernelStats()).merge(k.stats)
        return out

    def aggregate(self) -> KernelStats:
        """Whole-network merged counters."""
        total = KernelStats()
        for k in self.kernels:
            total.merge(k.stats)
        return total


def result_to_payload(result) -> dict:
    """JSON payload of a live ``NetworkResult`` (or stored clone)."""
    return {
        "engine": engine_version(),
        "network": result.network,
        "unique_kernels": len({k.kernel.signature() for k in result.kernels}),
        "kernels": [
            {
                "name": k.kernel.name,
                "node_name": k.kernel.node_name,
                "category": k.category,
                "signature": k.kernel.signature(),
                "total_blocks": k.kernel.total_blocks,
                "stats": k.stats.to_dict(),
                "occupancy": asdict(k.occupancy),
                "sample_factor": k.sample_factor,
                "block_factor": k.block_factor,
            }
            for k in result.kernels
        ],
    }


def result_from_payload(
    payload: dict, config: GpuConfig, options: SimOptions
) -> StoredNetworkResult | None:
    """Payload dict -> StoredNetworkResult, or None when malformed."""
    try:
        if payload["engine"] != engine_version():
            return None
        out = StoredNetworkResult(
            network=payload["network"], config=config, options=options
        )
        out.unique_kernels = payload.get(
            "unique_kernels",
            len({entry["signature"] for entry in payload["kernels"]}),
        )
        for entry in payload["kernels"]:
            out.kernels.append(
                StoredKernelResult(
                    kernel=StoredKernelInfo(
                        name=entry["name"],
                        node_name=entry["node_name"],
                        category=entry["category"],
                        sig=entry["signature"],
                        total_blocks=entry["total_blocks"],
                    ),
                    stats=KernelStats.from_dict(entry["stats"]),
                    occupancy=Occupancy(**entry["occupancy"]),
                    sample_factor=entry["sample_factor"],
                    block_factor=entry["block_factor"],
                )
            )
        return out
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


class ResultStore:
    """The unified on-disk store: kernel entries plus network runs.

    ``cache_dir=None`` resolves through ``REPRO_CACHE_DIR``.  The
    kernel layer is exposed as :attr:`kernels` (a
    :class:`KernelResultCache` on the same directory) so
    ``simulate_network(..., cache=store.kernels)`` fills both layers of
    one store.  Run-entry writes are atomic (tmp + replace), making
    concurrent worker processes safe.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.kernels = KernelResultCache(self.cache_dir)
        self.run_hits = 0
        self.run_misses = 0
        self.run_stores = 0

    # ------------------------------------------------------------------
    def run_path(self, spec: RunSpec) -> Path:
        """On-disk location of one network-run entry."""
        name = f"{spec.network}-{spec.config.name}-{spec.key()[:24]}.json"
        return self.cache_dir / RUNS_SUBDIR / name

    def get_run(self, spec: RunSpec) -> StoredNetworkResult | None:
        """Look up one network run; None on miss or unreadable entry."""
        try:
            payload = json.loads(self.run_path(spec).read_text())
        except (OSError, ValueError):
            self.run_misses += 1
            return None
        result = result_from_payload(payload, spec.config, spec.options)
        if result is None:
            self.run_misses += 1
            return None
        self.run_hits += 1
        return result

    def put_run(self, spec: RunSpec, payload: dict) -> None:
        """Store one network-run payload (best-effort, atomic)."""
        self.run_stores += 1
        try:
            path = self.run_path(spec)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# maintenance (backs ``repro cache stats|clear``)
# ----------------------------------------------------------------------
def cache_stats(cache_dir: str | Path | None = None) -> dict:
    """Entry count / byte size summary of the whole unified store.

    Covers both layers — kernel entries in the store root and network
    runs under ``runs/`` — plus any stale pre-unification
    ``.tango_cache/`` directory in the working directory.  A missing
    directory reads as an empty cache, never an error.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    kernel_entries = 0
    run_entries = 0
    total_bytes = 0
    engines: dict[str, dict] = {}
    kernels_requested = 0
    kernels_simulated = 0

    def scan(paths) -> int:
        nonlocal total_bytes, kernels_requested, kernels_simulated
        count = 0
        for path in paths:
            size = 0
            try:
                size = path.stat().st_size
                total_bytes += size
                payload = json.loads(path.read_text())
                engine = payload.get("engine", "?")
            except (OSError, ValueError):
                payload = {}
                engine = "corrupt"
            count += 1
            bucket = engines.setdefault(engine, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            kernels = payload.get("kernels")
            if isinstance(kernels, list):  # a run entry
                kernels_requested += len(kernels)
                kernels_simulated += payload.get(
                    "unique_kernels",
                    len({k.get("signature") for k in kernels}),
                )
        return count

    if directory.is_dir():
        kernel_entries = scan(sorted(directory.glob("*.json")))
        run_entries = scan(sorted((directory / RUNS_SUBDIR).glob("*.json")))
    legacy = Path(LEGACY_TANGO_DIR)
    legacy_entries = len(list(legacy.glob("*.json"))) if legacy.is_dir() else 0
    return {
        "dir": str(directory),
        "entries": kernel_entries + run_entries,
        "kernel_entries": kernel_entries,
        "run_entries": run_entries,
        "bytes": total_bytes,
        "engine_version": engine_version(),
        "by_engine": dict(sorted(engines.items())),
        "dedup": {
            "kernels_requested": kernels_requested,
            "kernels_simulated": kernels_simulated,
            "replicated": kernels_requested - kernels_simulated,
        },
        "legacy_tango_entries": legacy_entries,
    }


def clear_cache(
    cache_dir: str | Path | None = None, engine: str | None = None
) -> int:
    """Delete store entries; returns the number removed.

    With ``engine=None`` everything goes — both layers, stray ``.tmp``
    files and any stale ``.tango_cache/``.  With an engine version
    string (see ``repro cache stats`` for the versions present) only
    entries written by that engine are pruned, which is how a store
    that has accumulated results from several engine revisions is
    trimmed back to the live one without losing warm entries.  Backs
    ``repro cache clear [--engine VER]``.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    removed = 0
    roots = [directory, directory / RUNS_SUBDIR, Path(LEGACY_TANGO_DIR)]
    for root in roots:
        if not root.is_dir():
            continue
        targets = list(root.glob("*.json"))
        if engine is None:
            targets += list(root.glob("*.tmp"))
        for path in targets:
            if engine is not None and not _entry_matches_engine(path, engine):
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    if engine is None:
        for root in (directory / RUNS_SUBDIR, Path(LEGACY_TANGO_DIR)):
            try:
                root.rmdir()
            except OSError:
                pass
    return removed


def _entry_matches_engine(path: Path, engine: str) -> bool:
    """True when the entry was written by *engine* (corrupt entries
    match the special engine name ``"corrupt"`` that ``cache_stats``
    reports them under)."""
    try:
        return json.loads(path.read_text()).get("engine", "?") == engine
    except (OSError, ValueError):
        return engine == "corrupt"
