"""Run identities and planning contexts.

A :class:`RunSpec` names one whole-network simulation: the network, the
frozen :class:`~repro.gpu.config.GpuConfig` it runs on, and the frozen
:class:`~repro.gpu.config.SimOptions` knobs (which include the warp
scheduler).  Because both component dataclasses are frozen, a spec is
hashable and its content key is a pure function of its fields plus the
engine version — the same invalidation contract as the per-kernel cache
(DESIGN.md sections 8 and 9).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.gpu.config import GpuConfig, SimOptions


@dataclass(frozen=True)
class RunSpec:
    """Identity of one whole-network simulation."""

    network: str
    config: GpuConfig
    options: SimOptions = field(default_factory=SimOptions)

    def key(self) -> str:
        """Content key of this spec (see :func:`run_key`)."""
        return run_key(self.network, self.config, self.options)

    def describe(self) -> str:
        """One-line human identity for planner/executor logs."""
        extras = []
        if isinstance(self.config, GpuConfig) and self.config.l1_size != 64 * 1024:
            extras.append(f"l1={self.config.l1_size // 1024}K")
        if self.options.scheduler != "gto":
            extras.append(f"sched={self.options.scheduler}")
        if self.options.max_outer_trips is None:
            extras.append("full-outer")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return f"{self.network} on {self.config.name}{suffix}"


def run_key(network: str, config: GpuConfig, options: SimOptions) -> str:
    """SHA-256 key of one network run, folding in the engine version.

    Any change to any field of the config or options — or an engine
    bump — yields a new key, so stale entries are never looked up.
    """
    from repro.gpu.engine import engine_version

    payload = json.dumps(
        {
            "kind": "network-run",
            "engine": engine_version(),
            "network": network,
            "config": asdict(config),
            "options": asdict(options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class PlanContext:
    """Knobs a planning pass is parameterized by.

    ``networks=None`` (the default) plans the paper's full matrix.  A
    tuple restricts every experiment to the named subset — used by the
    golden-series fixtures, which run the whole registry over just
    (cifarnet, gru) with light options.  Checks are only evaluated on
    full-matrix contexts: the paper's qualitative claims quantify over
    the complete network set.
    """

    networks: tuple[str, ...] | None = None
    options: SimOptions = field(default_factory=SimOptions)

    @property
    def full(self) -> bool:
        """True when the whole network matrix is planned."""
        return self.networks is None

    def nets(self, names: tuple[str, ...]) -> tuple[str, ...]:
        """*names* filtered down to this context's network subset."""
        if self.networks is None:
            return tuple(names)
        allowed = set(self.networks)
        return tuple(name for name in names if name in allowed)
