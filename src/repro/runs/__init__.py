"""Run orchestration: plan the experiment matrix, execute it once, aggregate.

The paper's evaluation is a matrix of experiments over (network x
platform x L1 size x scheduler) combinations.  This package is the
single orchestration layer behind all of them:

* :mod:`repro.runs.spec` — :class:`RunSpec`, the identity of one
  whole-network simulation, and :class:`PlanContext`, the knobs a
  planning pass is parameterized by (network subset, base options).
* :mod:`repro.runs.store` — :class:`ResultStore`, the one
  content-addressed on-disk store (``.repro-cache/`` or
  ``$REPRO_CACHE_DIR``) holding both per-kernel results and serialized
  whole-network runs.
* :mod:`repro.runs.planner` — collects every registered experiment's
  required runs and dedupes them into a minimal :class:`Plan`.
* :mod:`repro.runs.executor` — :class:`Executor`, the cached
  read-through front door to :func:`repro.gpu.simulator.simulate_network`
  with process-pool fan-out over a plan's missing entries.
* :mod:`repro.runs.experiment` — the declarative :class:`Experiment`
  spec (required runs, aggregate fn, checks, render hint) and
  :func:`run_experiment`.
* :mod:`repro.runs.registry` — the single registry of all paper
  experiments (Tables I-IV, Figures 1-16).

Typical use::

    from repro.runs import Executor, PlanContext, ResultStore, build_plan
    from repro.runs.registry import all_experiments

    experiments = all_experiments()
    ctx = PlanContext()
    executor = Executor(ResultStore())
    plan = build_plan(experiments.values(), ctx)
    executor.execute(plan, jobs=4)          # each unique combo, once
    results = [run_experiment(e, executor, ctx) for e in experiments.values()]
"""

from repro.runs.executor import ExecutionReport, Executor
from repro.runs.experiment import Experiment, RunView, run_experiment
from repro.runs.planner import Plan, build_plan
from repro.runs.spec import PlanContext, RunSpec, run_key
from repro.runs.store import ResultStore, StoredNetworkResult

__all__ = [
    "ExecutionReport",
    "Executor",
    "Experiment",
    "Plan",
    "PlanContext",
    "ResultStore",
    "RunSpec",
    "RunView",
    "StoredNetworkResult",
    "build_plan",
    "run_experiment",
    "run_key",
]
