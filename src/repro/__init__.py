"""Tango reproduction: a DNN benchmark suite for various accelerators.

A full-system Python reproduction of *Tango: A Deep Neural Network
Benchmark Suite for Various Accelerators* (Karki et al., ISPASS 2019):

* :mod:`repro.core` -- the benchmark suite itself: five CNNs (CifarNet,
  AlexNet, SqueezeNet, ResNet-50, VGGNet-16) and two RNNs (GRU, LSTM)
  decomposed into framework-free layer kernels;
* :mod:`repro.kernels` / :mod:`repro.isa` / :mod:`repro.codegen` -- the
  CUDA-like kernel representation (Table III launch geometries, PTX-like
  thread programs, CUDA C / OpenCL source emission);
* :mod:`repro.gpu` / :mod:`repro.memory` / :mod:`repro.power` /
  :mod:`repro.platforms` -- the evaluation substrate: a GPGPU-Sim-style
  timing simulator, cache/MSHR/DRAM models, GPUWattch-style power, the
  GK210 / TX1 / GP102 GPUs and the PynQ-Z1 FPGA;
* :mod:`repro.profiling` / :mod:`repro.harness` -- nvprof-like profiling
  and one experiment module per paper table and figure;
* :mod:`repro.campaign` -- declarative design-space-exploration
  campaigns over the run pipeline: sweep specs, Pareto frontiers and
  golden-frontier QoR regression gates;
* :mod:`repro.obs` -- span tracer + metrics registry across the GPU,
  run-orchestration and serving layers, exported as Chrome-trace JSON.

Entry points::

    from repro.core import TangoSuite          # run the benchmarks
    from repro.gpu import simulate_network     # characterize them
    python -m repro.harness.suite              # reproduce the paper
    python -m repro trace simulate alexnet     # record a Perfetto trace

The names below are the stable cross-layer surface: the
:class:`~repro.stats.Stats` protocol and its three implementations
(:class:`~repro.profiling.stats.KernelStats`,
:class:`~repro.serve.stats.ServeStats`,
:class:`~repro.runs.executor.ExecutionReport`), plus the tracing API.
"""

from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    capture_trace,
    get_tracer,
    set_tracer,
    to_chrome_trace,
    write_trace,
)
from repro.profiling.stats import KernelStats
from repro.runs.executor import ExecutionReport
from repro.serve.stats import ServeStats
from repro.stats import Stats

__version__ = "1.0.0"

__all__ = [
    "ExecutionReport",
    "KernelStats",
    "MetricsRegistry",
    "NullTracer",
    "ServeStats",
    "Stats",
    "Tracer",
    "__version__",
    "capture_trace",
    "get_tracer",
    "set_tracer",
    "to_chrome_trace",
    "write_trace",
]
