"""Tango reproduction: a DNN benchmark suite for various accelerators.

A full-system Python reproduction of *Tango: A Deep Neural Network
Benchmark Suite for Various Accelerators* (Karki et al., ISPASS 2019):

* :mod:`repro.core` -- the benchmark suite itself: five CNNs (CifarNet,
  AlexNet, SqueezeNet, ResNet-50, VGGNet-16) and two RNNs (GRU, LSTM)
  decomposed into framework-free layer kernels;
* :mod:`repro.kernels` / :mod:`repro.isa` / :mod:`repro.codegen` -- the
  CUDA-like kernel representation (Table III launch geometries, PTX-like
  thread programs, CUDA C / OpenCL source emission);
* :mod:`repro.gpu` / :mod:`repro.memory` / :mod:`repro.power` /
  :mod:`repro.platforms` -- the evaluation substrate: a GPGPU-Sim-style
  timing simulator, cache/MSHR/DRAM models, GPUWattch-style power, the
  GK210 / TX1 / GP102 GPUs and the PynQ-Z1 FPGA;
* :mod:`repro.profiling` / :mod:`repro.harness` -- nvprof-like profiling
  and one experiment module per paper table and figure.

Entry points::

    from repro.core import TangoSuite          # run the benchmarks
    from repro.gpu import simulate_network     # characterize them
    python -m repro.harness.suite              # reproduce the paper
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
