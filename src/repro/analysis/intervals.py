"""Conservative integer interval arithmetic over address expressions.

The address-interval pass bounds each :class:`~repro.kernels.addressing.AddrExpr`
without enumerating threads: every symbol (thread coordinate, block
coordinate, loop variable) is mapped to its inclusive value range, each
affine :class:`~repro.kernels.addressing.Term` is pushed through the
same ``pre``/``//div``/``%mod``/``*coef`` pipeline the evaluator applies
to concrete values, and the term intervals are summed.  All operations
are *conservative*: the resulting interval always contains every address
any thread can form, but may be wider than the exact reachable set
(notably across ``%`` when the operand range wraps the modulus — see
DESIGN.md's analysis section for the guarantee statement).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.addressing import AddrExpr, Term
from repro.kernels.launch import KernelLaunch


@dataclass(frozen=True, slots=True)
class Interval:
    """An inclusive integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def shift(self, k: int) -> "Interval":
        """Interval of ``v + k``."""
        return Interval(self.lo + k, self.hi + k)

    def scale(self, k: int) -> "Interval":
        """Interval of ``v * k`` (exact; handles negative *k*)."""
        a, b = self.lo * k, self.hi * k
        return Interval(min(a, b), max(a, b))

    def floordiv(self, d: int) -> "Interval":
        """Interval of ``v // d`` for ``d >= 1`` (exact: // is monotonic)."""
        if d < 1:
            raise ValueError("floordiv requires d >= 1")
        return Interval(self.lo // d, self.hi // d)

    def mod(self, m: int) -> "Interval":
        """Interval of ``v % m`` for ``m >= 1`` (conservative on wrap).

        When the operand range spans a multiple of *m* the result wraps
        and the whole ``[0, m-1]`` residue range is returned; otherwise
        the exact ``[lo % m, hi % m]`` window is.
        """
        if m < 1:
            raise ValueError("mod requires m >= 1")
        if self.hi - self.lo + 1 >= m:
            return Interval(0, m - 1)
        a, b = self.lo % m, self.hi % m
        if a <= b:
            return Interval(a, b)
        return Interval(0, m - 1)

    def contains(self, other: "Interval") -> bool:
        """True when *other* lies entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one value."""
        return self.lo <= other.hi and other.lo <= self.hi


def term_interval(term: Term, sym_range: Interval) -> Interval:
    """Interval of one affine term given its symbol's value range.

    Mirrors :meth:`repro.kernels.addressing.Term.apply` step for step so
    the static bound and the dynamic evaluator can never disagree on
    the operation order.
    """
    v = sym_range
    if term.pre != 1:
        v = v.scale(term.pre)
    if term.div != 1:
        v = v.floordiv(term.div)
    if term.mod is not None:
        v = v.mod(term.mod)
    return v.scale(term.coef)


def launch_symbol_ranges(launch: KernelLaunch) -> dict[str, Interval]:
    """Value ranges of the thread/block symbols for one launch.

    ``lin_tid`` is clipped to the launch's *active* thread count: the
    prologue guard masks trailing threads off memory, so their (larger)
    linear ids never reach an address unit.  The per-axis ``tx``/``ty``/
    ``tz`` coordinates keep their full block extent — a masked thread
    still has in-range coordinates.
    """
    bx, by, bz = launch.block
    gx, gy, gz = launch.grid
    active = min(launch.active_threads, launch.threads_per_block)
    return {
        "tx": Interval(0, bx - 1),
        "ty": Interval(0, by - 1),
        "tz": Interval(0, bz - 1),
        "lin_tid": Interval(0, max(0, active - 1)),
        "bx": Interval(0, gx - 1),
        "by": Interval(0, gy - 1),
        "bz": Interval(0, gz - 1),
        "lin_bid": Interval(0, launch.total_blocks - 1),
        "one": Interval(1, 1),
    }


def addr_interval(
    expr: AddrExpr,
    sym_ranges: dict[str, Interval],
) -> tuple[Interval, list[str]]:
    """Interval of *expr* plus any symbols missing from *sym_ranges*.

    Unbound symbols contribute nothing to the interval (the evaluator
    would raise on them at runtime); callers report them as their own
    diagnostic rather than folding an arbitrary range into the bound.
    """
    total = Interval(expr.base, expr.base)
    unbound: list[str] = []
    for term in expr.terms:
        rng = sym_ranges.get(term.sym)
        if rng is None:
            unbound.append(term.sym)
            continue
        total = total + term_interval(term, rng)
    return total, unbound
