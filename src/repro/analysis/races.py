"""Pass 3 — shared-memory race detection and footprint checking.

Shared memory is per-block scratchpad, so races are intra-block: two
threads of one block touching the same ``SHARED`` address with at least
one write and no intervening ``bar`` between the accesses.  The pass
splits the program at barriers into *phases* (program order; a barrier
inside a loop body conservatively splits only the body's straight-line
order — see the limitations note in DESIGN.md), then evaluates every
addressed shared access *concretely* over all active threads of a block
— block sizes are bounded by 1024, so exact per-thread address vectors
are cheap — at sampled loop-environment points (every enclosing loop
variable at its first and last trip):

* **smem-race** (error): within one phase, one address is written by one
  thread and touched by a different thread (write-write included).
* **smem-overflow** (error): the interval bound of a shared access ends
  past the launch's declared ``smem_bytes``.
* **smem-negative** (error): a shared access interval reaches below 0.

Shared accesses with no address expression (``addr=None``) model the
builders' implicit one-slot-per-thread hidden-state convention — each
thread touches its own ``lin_tid``-indexed cell — and are skipped; the
RNN kernels rely on this, and DESIGN.md records it as an analysis limit.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.intervals import Interval, addr_interval, launch_symbol_ranges
from repro.analysis.walk import Site, iter_sites
from repro.isa.instruction import MemSpace
from repro.isa.opcodes import Op
from repro.kernels.launch import KernelLaunch

PASS = "race"


class _BlockContext:
    """Concrete lane/block symbol values for one whole block.

    Mimics the interface of :class:`repro.gpu.warp.Warp` that
    :meth:`AddrExpr.evaluate` consumes, but spans every active thread of
    the block instead of one 32-lane warp.
    """

    def __init__(self, launch: KernelLaunch):
        bx_dim, by_dim, _ = launch.block
        n = min(launch.threads_per_block, max(1, launch.active_threads))
        lanes = np.arange(n, dtype=np.int64)
        self.width = n
        self.lane_syms = {
            "tx": lanes % bx_dim,
            "ty": (lanes // bx_dim) % by_dim,
            "tz": lanes // (bx_dim * by_dim),
            "lin_tid": lanes,
        }
        self.block_syms = {"bx": 0, "by": 0, "bz": 0, "lin_bid": 0, "one": 1}


def _env_samples(site: Site) -> list[dict[str, int]]:
    """Loop-environment corner samples for *site* (first/last trips)."""
    if not site.loops:
        return [{}]
    corners = [
        {loop.var: 0 for loop in site.loops},
        {loop.var: max(0, loop.trips - 1) for loop in site.loops},
    ]
    return corners if corners[0] != corners[1] else corners[:1]


def check_shared(launch: KernelLaunch) -> list[Diagnostic]:
    """Run shared-memory race and footprint checks on one launch."""
    diags: list[Diagnostic] = []
    sites = iter_sites(launch.program)
    shared = [
        (site, site.instr.op is Op.ST)
        for site in sites
        if site.instr.is_mem and site.instr.space is MemSpace.SHARED
    ]
    if not any(site.instr.op is Op.BAR for site in sites) and not shared:
        return diags

    # Footprint: interval bound of every addressed shared access.
    sym_ranges = launch_symbol_ranges(launch)
    for site, _ in shared:
        if site.instr.addr is None:
            continue
        loop_ranges = {
            loop.var: Interval(0, max(0, loop.trips - 1)) for loop in site.loops
        }
        interval, unbound = addr_interval(site.instr.addr, {**sym_ranges, **loop_ranges})
        if unbound:
            continue  # reported by the address pass as unbound-symbol
        hi = interval.hi + max(1, site.instr.width_bytes) - 1
        if interval.lo < 0:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "smem-negative",
                    PASS,
                    launch.name,
                    f"shared access interval [{interval.lo}, {hi}] reaches "
                    f"below shared address 0",
                    instr=site.instr.describe(),
                    data={"lo": interval.lo, "hi": hi},
                )
            )
        elif hi >= launch.smem_bytes:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "smem-overflow",
                    PASS,
                    launch.name,
                    f"shared access interval [{interval.lo}, {hi}] exceeds the "
                    f"declared {launch.smem_bytes}-byte shared allocation",
                    instr=site.instr.describe(),
                    data={"lo": interval.lo, "hi": hi, "smem_bytes": launch.smem_bytes},
                )
            )

    # Races: concrete per-thread addresses, phase-split at barriers.
    block = _BlockContext(launch)
    if block.width < 2:
        return diags
    phase = 0
    phase_of: dict[int, int] = {}
    for site in sites:
        if site.instr.op is Op.BAR:
            phase += 1
        phase_of[site.index] = phase

    addressed = [(s, w) for s, w in shared if s.instr.addr is not None]
    by_phase: dict[int, list[tuple[Site, bool]]] = {}
    for site, is_write in addressed:
        by_phase.setdefault(phase_of[site.index], []).append((site, is_write))

    reported: set[tuple[int, int]] = set()
    for accesses in by_phase.values():
        if not any(is_write for _, is_write in accesses):
            continue
        for (a, a_write), (b, b_write) in itertools.combinations_with_replacement(
            accesses, 2
        ):
            if not (a_write or b_write):
                continue
            key = (a.index, b.index)
            if key in reported:
                continue
            conflict = _conflicting_threads(a, b, block)
            if conflict is not None:
                reported.add(key)
                addr_value, threads = conflict
                writer = a if a_write else b
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        "smem-race",
                        PASS,
                        launch.name,
                        f"threads {threads[0]} and {threads[1]} touch shared "
                        f"address {addr_value} with at least one write and no "
                        f"intervening bar "
                        f"(`{a.instr.describe()}` vs `{b.instr.describe()}`)",
                        instr=writer.instr.describe(),
                        data={"address": int(addr_value), "threads": list(threads)},
                    )
                )
    return diags


def _conflicting_threads(a: Site, b: Site, block: _BlockContext):
    """First (address, (thread, thread)) conflict between two accesses.

    Two distinct threads conflict when they form the same address in any
    sampled loop environment; a thread revisiting its own slot does not.
    For the diagonal case (``a is b``) this detects one instruction whose
    address map is non-injective across threads.
    """
    for env_a in _env_samples(a):
        addrs_a = np.asarray(a.instr.addr.evaluate(block, env_a))
        envs_b = [env_a] if a is b else _env_samples(b)
        for env_b in envs_b:
            addrs_b = (
                addrs_a if a is b and env_b is env_a
                else np.asarray(b.instr.addr.evaluate(block, env_b))
            )
            common = np.intersect1d(addrs_a, addrs_b)
            for value in common:
                threads_a = np.flatnonzero(addrs_a == value)
                threads_b = np.flatnonzero(addrs_b == value)
                if len(threads_a) > 1:
                    return int(value), (int(threads_a[0]), int(threads_a[1]))
                if len(threads_b) > 1:
                    return int(value), (int(threads_b[0]), int(threads_b[1]))
                if threads_a[0] != threads_b[0]:
                    return int(value), (int(threads_a[0]), int(threads_b[0]))
    return None
