"""Pass orchestration: run every analysis over launches or networks.

:func:`analyze_launch` runs the four passes (def-use, address intervals,
shared-memory races, lints) over one :class:`KernelLaunch` without
executing the simulator; :func:`analyze_launches` aggregates a launch
sequence into a :class:`LintReport`; :func:`analyze_network` compiles a
suite network by name and verifies it.  :func:`verify_launches` is the
strict form the compiler's ``verify=`` flag calls: it raises
:class:`KernelVerificationError` when any error-severity diagnostic is
found, with the formatted report as the exception message.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.addresses import check_addresses
from repro.analysis.defuse import check_defuse
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.lints import check_lints
from repro.analysis.races import check_shared
from repro.kernels.launch import KernelLaunch

#: The passes, in reporting order.
PASSES = (check_defuse, check_addresses, check_shared, check_lints)


class KernelVerificationError(ValueError):
    """A compiled network failed static verification with errors."""

    def __init__(self, report: LintReport):
        self.report = report
        errors = report.errors
        super().__init__(
            f"{report.network}: static verification found {len(errors)} "
            f"error(s)\n{report.format(min_severity=Severity.ERROR)}"
        )


def analyze_launch(launch: KernelLaunch) -> list[Diagnostic]:
    """Run every analysis pass over one launch."""
    diags: list[Diagnostic] = []
    for check in PASSES:
        diags.extend(check(launch))
    return diags


def analyze_launches(
    launches: Iterable[KernelLaunch], network: str = "<launches>"
) -> LintReport:
    """Run every analysis pass over a launch sequence.

    Launches sharing a :meth:`~repro.kernels.launch.KernelLaunch.signature`
    are analysed once (repeated RNN timesteps and ResNet's repeated
    bottleneck kernels behave identically), mirroring the simulator's
    own result caching.
    """
    report = LintReport(network=network)
    seen: set[str] = set()
    for launch in launches:
        report.kernel_count += 1
        sig = launch.signature()
        if sig in seen:
            continue
        seen.add(sig)
        report.extend(analyze_launch(launch))
    return report


def analyze_network(name: str) -> LintReport:
    """Compile (cached) and verify one suite network by name."""
    from repro.kernels.compile import compiled_network

    return analyze_launches(compiled_network(name), network=name)


def verify_launches(
    launches: Iterable[KernelLaunch], network: str = "<launches>"
) -> LintReport:
    """Analyse *launches*; raise :class:`KernelVerificationError` on errors."""
    report = analyze_launches(launches, network=network)
    if report.has_errors:
        raise KernelVerificationError(report)
    return report
