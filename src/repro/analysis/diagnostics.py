"""Diagnostic records and reports for the static kernel-IR verifier.

Every analysis pass in :mod:`repro.analysis` reports findings as
:class:`Diagnostic` values — severity, a stable machine-readable code,
the kernel and instruction involved, and a human message that embeds the
PTX-like rendering of :meth:`repro.isa.instruction.Instruction.describe`.
A :class:`LintReport` aggregates the diagnostics of one or more kernels
and renders them grouped per kernel (the CLI's default) or as JSON (for
CI and tooling).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally.

    ``ERROR`` means the kernel IR is unfaithful (the simulated
    instruction/address stream would corrupt downstream figures);
    ``WARNING`` flags suspicious-but-possibly-intended patterns (e.g.
    uncoalesced FC weight streams, which the paper itself observes);
    ``NOTE`` records expected-but-worth-knowing facts such as padding
    overhang into the canonical slot gaps.
    """

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass on one kernel.

    Attributes:
        severity: :class:`Severity` of the finding.
        code: Stable kebab-case identifier (e.g. ``out-of-regions``).
        pass_name: Analysis pass that produced it (``defuse``,
            ``address``, ``race``, ``lint``).
        kernel: Kernel launch name (Table III style, e.g. ``Conv 1-2``).
        message: Human-readable description.
        instr: PTX-like rendering of the offending instruction, or ``""``
            for kernel-level findings (geometry, footprint totals).
        data: Extra machine-readable fields for the JSON report.
    """

    severity: Severity
    code: str
    pass_name: str
    kernel: str
    message: str
    instr: str = ""
    data: dict = field(default_factory=dict)

    def format(self) -> str:
        """One-line rendering: ``error[out-of-regions] message``."""
        line = f"{self.severity}[{self.code}] {self.message}"
        if self.instr:
            line += f"\n      at: {self.instr}"
        return line

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "severity": str(self.severity),
            "code": self.code,
            "pass": self.pass_name,
            "kernel": self.kernel,
            "message": self.message,
            "instr": self.instr,
            **({"data": self.data} if self.data else {}),
        }


@dataclass
class LintReport:
    """All diagnostics of one verification run, with rendering helpers."""

    network: str
    kernel_count: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diags: list[Diagnostic]) -> None:
        """Append *diags* to the report."""
        self.diagnostics.extend(diags)

    def count(self, severity: Severity) -> int:
        """Number of diagnostics at exactly *severity*."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-severity diagnostics only."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        """True when any error-severity diagnostic is present."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_kernel(self) -> dict[str, list[Diagnostic]]:
        """Diagnostics grouped by kernel name, insertion-ordered."""
        groups: dict[str, list[Diagnostic]] = {}
        for diag in self.diagnostics:
            groups.setdefault(diag.kernel, []).append(diag)
        return groups

    def format(self, min_severity: Severity = Severity.NOTE) -> str:
        """Per-kernel grouped report at or above *min_severity*."""
        lines = [
            f"{self.network}: {self.kernel_count} kernels — "
            f"{self.count(Severity.ERROR)} errors, "
            f"{self.count(Severity.WARNING)} warnings, "
            f"{self.count(Severity.NOTE)} notes"
        ]
        for kernel, diags in self.by_kernel().items():
            shown = [d for d in diags if d.severity >= min_severity]
            if not shown:
                continue
            lines.append(f"  {kernel}:")
            for diag in sorted(shown, key=lambda d: -d.severity):
                lines.append(f"    {diag.format()}")
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        """Machine-readable report for CI and tooling."""
        payload = {
            "network": self.network,
            "kernels": self.kernel_count,
            "counts": {
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "note": self.count(Severity.NOTE),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=indent)
