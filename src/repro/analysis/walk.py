"""Shared structural walks over thread programs.

Analysis passes need the same two traversals again and again: the
instruction stream in program order with the enclosing loop nest
attached (:func:`iter_sites`), and a straight-line order in which every
loop body appears twice (:func:`linearize_twice`) so loop-carried
definitions — a register written in iteration *i* and read in *i+1* —
are visible to a single forward scan, exactly as the liveness pass of
:mod:`repro.isa.program` walks them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.program import Loop, Program, ProgramItem


@dataclass(frozen=True)
class Site:
    """One static instruction plus its structural context.

    Attributes:
        instr: The instruction itself.
        loops: Enclosing loop nest, outermost first.
        index: Position in the program-order walk (loops counted once).
    """

    instr: Instruction
    loops: tuple[Loop, ...]
    index: int

    @property
    def loop_vars(self) -> tuple[str, ...]:
        """Names of the enclosing loop variables, outermost first."""
        return tuple(loop.var for loop in self.loops)


def iter_sites(program: Program) -> list[Site]:
    """All instructions in program order, each with its loop nest."""
    sites: list[Site] = []

    def walk(items: tuple[ProgramItem, ...], loops: tuple[Loop, ...]) -> None:
        for item in items:
            if isinstance(item, Loop):
                walk(item.body, loops + (item,))
            else:
                sites.append(Site(item, loops, len(sites)))

    walk(program.items, ())
    return sites


def linearize_twice(program: Program) -> list[Instruction]:
    """Straight-line instruction order with every loop body duplicated.

    The first copy of a body sees only definitions made before or inside
    the loop so far (a genuine iteration-0 read-before-write stays
    visible); the second copy sees the first copy's definitions, which
    models the loop back-edge for loop-carried values.
    """
    linear: list[Instruction] = []

    def walk(items: tuple[ProgramItem, ...]) -> None:
        for item in items:
            if isinstance(item, Loop):
                walk(item.body)
                walk(item.body)
            else:
                linear.append(item)

    walk(program.items)
    return linear
