"""Pass 2 — address interval analysis against declared memory regions.

For every global/local load and store the pass bounds the symbolic
:class:`~repro.kernels.addressing.AddrExpr` over the launch's
thread/block ranges and the enclosing loop-variable ranges
(``[0, trips-1]``, pre-scaled exactly as the evaluator scales them) to a
byte interval ``[lo, hi + width - 1]``, then classifies it against the
launch's declared :class:`~repro.kernels.launch.MemRegion` list:

* **unbound-symbol** (error): the expression references a loop variable
  no enclosing loop binds — at simulation time this is a ``KeyError``
  deep inside address evaluation (the compiler also rejects it up
  front, see :mod:`repro.kernels.validate`).
* **negative-address** / **address-overflow** (error): the interval
  reaches below zero or past the 1 TiB canonical address space.
* **out-of-regions** (error): the interval misses every declared
  region — the access streams bytes the kernel never allocated.
* **region-alias** (error): the interval spans more than one declared
  region — distinct tensors would alias in the cache model.
* **region-overhang** (note): the interval intersects exactly one
  region but pokes past its edge.  Padded convolution windows do this
  by design (border windows start before the tensor; the 1 GiB slot
  gaps of :mod:`repro.kernels.memory_layout` keep the overhang in empty
  space), so it is reported as a note with the overhang extent.

The interval arithmetic is conservative over affine terms (see
:mod:`repro.analysis.intervals`): a clean report guarantees no thread
can form an out-of-space address, while an overhang note may bound a
slightly wider window than any thread actually touches.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.intervals import (
    Interval,
    addr_interval,
    launch_symbol_ranges,
)
from repro.analysis.walk import Site, iter_sites
from repro.isa.instruction import MemSpace
from repro.kernels.launch import KernelLaunch

PASS = "address"

#: Canonical address-space ceiling: the slot layout places the last slot
#: base at 4 GiB and no tensor approaches 1 TiB.
ADDRESS_SPACE_LIMIT = 1 << 40

#: Memory spaces whose addresses live in the canonical global layout.
_GLOBAL_SPACES = (MemSpace.GLOBAL, MemSpace.LOCAL)


def _loop_ranges(site: Site) -> dict[str, Interval]:
    """Value ranges of the loop variables enclosing *site*."""
    ranges: dict[str, Interval] = {}
    for loop in site.loops:
        # Zero-trip loops never execute their body; analysing the body
        # against an empty range would be vacuous, so pin the variable
        # to 0 (the lint pass reports the loop itself separately).
        ranges[loop.var] = Interval(0, max(0, loop.trips - 1))
    return ranges


def check_addresses(launch: KernelLaunch) -> list[Diagnostic]:
    """Run the address interval checks on one launch."""
    diags: list[Diagnostic] = []
    base_ranges = launch_symbol_ranges(launch)
    regions = sorted(launch.regions, key=lambda r: r.base)
    region_spans = [
        (r, Interval(r.base, r.base + max(0, r.size_bytes - 1))) for r in regions
    ]

    for site in iter_sites(launch.program):
        instr = site.instr
        if not instr.is_mem or instr.addr is None or instr.space not in _GLOBAL_SPACES:
            continue
        sym_ranges = {**base_ranges, **_loop_ranges(site)}
        interval, unbound = addr_interval(instr.addr, sym_ranges)
        for sym in unbound:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "unbound-symbol",
                    PASS,
                    launch.name,
                    f"address references loop variable {sym!r} which no "
                    f"enclosing loop binds (enclosing: {list(site.loop_vars)})",
                    instr=instr.describe(),
                    data={"symbol": sym},
                )
            )
        if unbound:
            continue  # the interval without the unbound term is meaningless
        access = Interval(interval.lo, interval.hi + max(1, instr.width_bytes) - 1)
        if access.lo < 0:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "negative-address",
                    PASS,
                    launch.name,
                    f"access interval [{access.lo}, {access.hi}] reaches below "
                    f"address 0",
                    instr=instr.describe(),
                    data={"lo": access.lo, "hi": access.hi},
                )
            )
            continue
        if access.hi >= ADDRESS_SPACE_LIMIT:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "address-overflow",
                    PASS,
                    launch.name,
                    f"access interval [{access.lo}, {access.hi}] overflows the "
                    f"{ADDRESS_SPACE_LIMIT}-byte canonical address space",
                    instr=instr.describe(),
                    data={"lo": access.lo, "hi": access.hi},
                )
            )
            continue
        touching = [(r, span) for r, span in region_spans if span.intersects(access)]
        if not touching:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "out-of-regions",
                    PASS,
                    launch.name,
                    f"access interval [{access.lo}, {access.hi}] lies outside "
                    f"every declared region "
                    f"({', '.join(r.name for r in regions) or 'none declared'})",
                    instr=instr.describe(),
                    data={"lo": access.lo, "hi": access.hi},
                )
            )
        elif len(touching) > 1:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "region-alias",
                    PASS,
                    launch.name,
                    f"access interval [{access.lo}, {access.hi}] spans "
                    f"{len(touching)} regions "
                    f"({', '.join(r.name for r, _ in touching)})",
                    instr=instr.describe(),
                    data={"regions": [r.name for r, _ in touching]},
                )
            )
        else:
            region, span = touching[0]
            if not span.contains(access):
                before = max(0, span.lo - access.lo)
                after = max(0, access.hi - span.hi)
                diags.append(
                    Diagnostic(
                        Severity.NOTE,
                        "region-overhang",
                        PASS,
                        launch.name,
                        f"access overhangs region {region.name!r} by "
                        f"{before} byte(s) before / {after} byte(s) after "
                        f"(padding windows land in the canonical slot gap)",
                        instr=instr.describe(),
                        data={"region": region.name, "before": before, "after": after},
                    )
                )
    return diags
