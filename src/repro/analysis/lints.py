"""Pass 4 — lint diagnostics: performance and plausibility checks.

Unlike passes 1-3 these do not prove the IR wrong; they flag patterns
that are either performance hazards the paper discusses or smells that
usually indicate a builder slip:

* **uncoalesced-access** (warning): a warp's 32 lanes touch ≥ half a
  line each — evaluated concretely on the first warp of block (0,0,0)
  at the loop-start environment.  Fully-connected weight streams do
  this *by design* (each thread owns a row ``in_features`` apart; the
  paper's Figure 14 links this to FC's ~10% L2 miss ratio), hence a
  warning, not an error.
* **zero-trip-loop** (error): a loop with ``trips == 0`` and a
  non-empty body — :func:`repro.isa.program.expand_program` skips it
  explicitly, so the body silently contributes no dynamic records.
* **single-trip-loop** (note): a 1-trip loop buys its body nothing but
  per-iteration ``add``/``set``/``bra`` bookkeeping.
* **dtype-mismatch** (warning): an arithmetic instruction consumes a
  register whose producer declared the opposite numeric class (float
  fed by an integer def or vice versa) without a ``cvt`` in between.
* **stranded-threads** (warning): launch geometry leaves more than half
  of each block's threads inactive — the block does bookkeeping for
  threads that only ever run the prologue guard.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.walk import iter_sites
from repro.isa.dtypes import DType
from repro.isa.instruction import MemSpace
from repro.isa.opcodes import Op
from repro.isa.program import Loop, Program, ProgramItem
from repro.kernels.launch import WARP_SIZE, KernelLaunch

PASS = "lint"

#: Cache-line size used for the coalescing check; matches the default of
#: :class:`repro.memory.cache.Cache`.
LINE_BYTES = 128

#: A warp whose lanes touch at least this many distinct lines is
#: reported as uncoalesced (fully coalesced 4-byte lanes fit in one).
_UNCOALESCED_LINES = WARP_SIZE // 2

#: Opcodes excluded from the dtype-mismatch check: data movement and
#: explicit conversions legitimately bridge numeric classes, and
#: memory/control operands are addresses or predicates, not data.
_DTYPE_EXEMPT = (Op.MOV, Op.CVT, Op.LD, Op.ST, Op.SET, Op.BRA, Op.BAR,
                 Op.SSY, Op.NOP, Op.EXIT, Op.CALLP, Op.RETP)


class _FirstWarp:
    """Concrete symbol values for the first warp of block (0, 0, 0)."""

    def __init__(self, launch: KernelLaunch):
        bx_dim, by_dim, _ = launch.block
        n = min(WARP_SIZE, launch.threads_per_block, max(1, launch.active_threads))
        lanes = np.arange(n, dtype=np.int64)
        self.width = n
        self.lane_syms = {
            "tx": lanes % bx_dim,
            "ty": (lanes // bx_dim) % by_dim,
            "tz": lanes // (bx_dim * by_dim),
            "lin_tid": lanes,
        }
        self.block_syms = {"bx": 0, "by": 0, "bz": 0, "lin_bid": 0, "one": 1}


def _iter_loops(program: Program):
    """All loop nodes in program order."""

    def walk(items: tuple[ProgramItem, ...]):
        for item in items:
            if isinstance(item, Loop):
                yield item
                yield from walk(item.body)

    yield from walk(program.items)


def check_lints(launch: KernelLaunch) -> list[Diagnostic]:
    """Run all lint checks on one launch."""
    diags: list[Diagnostic] = []
    diags.extend(_check_loops(launch))
    diags.extend(_check_coalescing(launch))
    diags.extend(_check_dtypes(launch))
    diags.extend(_check_geometry(launch))
    return diags


def _check_loops(launch: KernelLaunch) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for loop in _iter_loops(launch.program):
        if loop.trips == 0 and loop.body:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "zero-trip-loop",
                    PASS,
                    launch.name,
                    f"loop {loop.var!r} has 0 trips but a {len(loop.body)}-"
                    f"instruction body: the body silently produces no "
                    f"dynamic records",
                    data={"var": loop.var, "body_len": len(loop.body)},
                )
            )
        elif loop.trips == 1:
            diags.append(
                Diagnostic(
                    Severity.NOTE,
                    "single-trip-loop",
                    PASS,
                    launch.name,
                    f"loop {loop.var!r} runs exactly once; its add/set/bra "
                    f"bookkeeping is pure overhead",
                    data={"var": loop.var},
                )
            )
    return diags


def _check_coalescing(launch: KernelLaunch) -> list[Diagnostic]:
    warp = _FirstWarp(launch)
    if warp.width < WARP_SIZE:
        return []  # sub-warp blocks cannot produce a full uncoalesced wavefront
    diags: list[Diagnostic] = []
    for site in iter_sites(launch.program):
        instr = site.instr
        if not instr.is_mem or instr.addr is None or instr.space is not MemSpace.GLOBAL:
            continue
        if not any(t.sym in warp.lane_syms for t in instr.addr.terms):
            continue  # warp-uniform broadcast: one line, trivially coalesced
        env = {loop.var: 0 for loop in site.loops}
        addrs = np.asarray(instr.addr.evaluate(warp, env))
        width = max(1, instr.width_bytes)
        lines = np.unique(
            np.concatenate([addrs // LINE_BYTES, (addrs + width - 1) // LINE_BYTES])
        )
        if len(lines) >= _UNCOALESCED_LINES:
            stride = int(np.median(np.abs(np.diff(addrs)))) if len(addrs) > 1 else 0
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    "uncoalesced-access",
                    PASS,
                    launch.name,
                    f"one warp touches {len(lines)} distinct {LINE_BYTES}-byte "
                    f"lines (median lane stride {stride} bytes)",
                    instr=instr.describe(),
                    data={"lines": int(len(lines)), "stride": stride},
                )
            )
    return diags


def _check_dtypes(launch: KernelLaunch) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    producer: dict[int, DType] = {}
    for site in iter_sites(launch.program):
        instr = site.instr
        if instr.op not in _DTYPE_EXEMPT and (
            instr.dtype.is_float or instr.dtype.is_integer
        ):
            for src in instr.srcs:
                src_dtype = producer.get(src.index)
                if src_dtype is None:
                    continue  # entry register or untracked producer
                mismatch = (instr.dtype.is_float and src_dtype.is_integer) or (
                    instr.dtype.is_integer and src_dtype.is_float
                )
                if mismatch:
                    diags.append(
                        Diagnostic(
                            Severity.WARNING,
                            "dtype-mismatch",
                            PASS,
                            launch.name,
                            f"{instr.dtype} instruction consumes {src} produced "
                            f"as {src_dtype} with no cvt in between",
                            instr=instr.describe(),
                            data={"register": src.index, "src_dtype": str(src_dtype)},
                        )
                    )
        if instr.dst is not None:
            producer[instr.dst.index] = instr.dtype
    return diags


def _check_geometry(launch: KernelLaunch) -> list[Diagnostic]:
    threads = launch.threads_per_block
    active = min(launch.active_threads, threads)
    if active * 2 < threads:
        return [
            Diagnostic(
                Severity.WARNING,
                "stranded-threads",
                PASS,
                launch.name,
                f"only {active}/{threads} threads per block are active "
                f"({100 * active / threads:.0f}%): the launch geometry strands "
                f"a majority of each block behind the prologue guard",
                data={"active": active, "threads": threads},
            )
        ]
    return []
