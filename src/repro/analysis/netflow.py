"""Pass 5 — whole-network inter-kernel dataflow verification.

The per-kernel passes check each launch in isolation; this pass checks
the *network*: that the serial launch sequence actually carries each
tensor from its producer to its consumers.  Every launch owns a private
canonical address space (:mod:`repro.kernels.memory_layout`), so the
producer's ``out`` region and the consumer's ``in`` region are distinct
addresses for the *same logical tensor*.  The pass therefore lifts each
global load/store to a **tensor-relative byte interval**: the canonical
slot of the region's base identifies its role (input / weight / output /
scratch), the graph edge of :class:`~repro.core.graph.Node` names the
tensor, and the access interval (bounded with the same conservative
arithmetic as :mod:`repro.analysis.addresses`) is rebased to the region
origin and clipped to its extent.

Over the launch order the pass builds an inter-kernel def-use chain per
tensor and reports:

* **netflow-undefined-read** (error): a launch reads an activation
  tensor no earlier launch wrote.  Graph inputs, weights/biases and
  scratch are externally initialised and exempt; a recurrent launch
  reading its *own* output tensor before the first timestep wrote it
  (the zero-filled initial hidden state of the RNNs) is reported as the
  **netflow-recurrent-init** note instead.
* **netflow-dead-write** (warning): a write no later launch reads and
  that is not the network output.  A later launch of the same node
  overwriting the span (RNN timesteps) exempts the earlier write.
* **netflow-waw** / **netflow-war** (warning): overlapping writes, or a
  read followed by an overlapping write, from *different* nodes — the
  launch orderings a parallelising executor must not reorder.
  Same-node overlaps (timestep t+1 rewriting the hidden state t read)
  are the recurrent pattern, not a hazard.
* **netflow-size-mismatch** (warning): the consumer declares a region
  extent that differs from the producer's for the same tensor — the
  two kernels disagree about the tensor's size.

All interval reasoning is conservative (over-approximate), so
undefined-read fires only when *no* earlier write can overlap the read
— a clean report is trustworthy, while a cunningly partial write may
escape.  DESIGN.md section 12 states the guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.intervals import (
    Interval,
    addr_interval,
    launch_symbol_ranges,
)
from repro.analysis.walk import iter_sites
from repro.isa.instruction import MemSpace
from repro.kernels.launch import KernelLaunch, MemRegion

PASS = "netflow"

#: Canonical slot index of a region base (memory_layout slot stride).
_SLOT_SHIFT = 30
_SLOT_INPUT, _SLOT_WEIGHT, _SLOT_OUTPUT, _SLOT_SCRATCH = 1, 2, 3, 4

#: Graph-level name of the network input feeding the first layer.
GRAPH_INPUT = "input"

#: Memory spaces that address the canonical global layout.
_GLOBAL_SPACES = (MemSpace.GLOBAL, MemSpace.LOCAL)

#: Layer types that are zero-copy views (no kernel of their own).
_VIEW_LAYERS = frozenset({"Concat"})


@dataclass(frozen=True)
class TensorAccess:
    """One launch's aggregated access to one logical tensor.

    Attributes:
        tensor: Logical tensor name — the producing node's name for
            activations, ``node.region`` for weights and scratch, or
            ``"input"`` for the graph input.
        klass: ``activation`` | ``param`` | ``scratch`` | ``external``.
        is_write: Store (True) or load (False).
        spans: Merged byte intervals, relative to the region base and
            clipped to the declared region extent.
        region: Declared region name inside the launch.
        region_size: Declared region extent in bytes.
        launch_index: Position in the serial launch order.
        launch: Launch name (Table III style).
        node: Graph node the launch implements.
    """

    tensor: str
    klass: str
    is_write: bool
    spans: tuple[Interval, ...]
    region: str
    region_size: int
    launch_index: int
    launch: str
    node: str

    def overlaps(self, other: "TensorAccess") -> bool:
        """True when any span of self intersects any span of *other*."""
        return any(
            a.intersects(b) for a in self.spans for b in other.spans
        )


def region_tensor(
    launch: KernelLaunch,
    region: MemRegion,
    node_inputs: Sequence[str],
) -> tuple[str, str]:
    """Map a declared region to ``(tensor name, class)``.

    The canonical slot of the region base gives its role; input-slot
    regions are resolved through the graph edge list (``in``/``x`` and
    ``in0`` name ``inputs[0]``, ``in<i>`` names ``inputs[i]``), and
    output-slot regions name the node's own output tensor.  Weight and
    scratch regions are private to the node and keep a qualified name.
    """
    slot = region.base >> _SLOT_SHIFT
    if slot == _SLOT_INPUT:
        index = 0
        name = region.name
        if name.startswith("in") and name[2:].isdigit():
            index = int(name[2:])
        if index < len(node_inputs):
            source = node_inputs[index]
        elif node_inputs:
            source = node_inputs[0]
        else:  # pragma: no cover - nodes always declare inputs
            source = GRAPH_INPUT
        if source == GRAPH_INPUT:
            return GRAPH_INPUT, "external"
        return source, "activation"
    if slot == _SLOT_OUTPUT:
        return launch.node_name, "activation"
    klass = "scratch" if slot == _SLOT_SCRATCH else "param"
    return f"{launch.node_name}.{region.name}", klass


def _merge(spans: Iterable[Interval]) -> tuple[Interval, ...]:
    """Coalesce overlapping/adjacent intervals into a sorted tuple."""
    ordered = sorted(spans, key=lambda s: (s.lo, s.hi))
    merged: list[Interval] = []
    for span in ordered:
        if merged and span.lo <= merged[-1].hi + 1:
            if span.hi > merged[-1].hi:
                merged[-1] = Interval(merged[-1].lo, span.hi)
        else:
            merged.append(span)
    return tuple(merged)


def launch_flow(
    launch: KernelLaunch,
    node_inputs: Sequence[str],
    launch_index: int = 0,
) -> list[TensorAccess]:
    """The tensor-relative read/write footprint of one launch.

    Bounds every global load/store with the interval arithmetic of the
    address pass, attributes it to the declared regions it can touch,
    rebases to the region origin and clips to the region extent.
    Accesses that miss every region, reference unbound symbols, or sit
    inside a zero-trip loop are skipped — the per-kernel passes already
    diagnose those.
    """
    base_ranges = launch_symbol_ranges(launch)
    regions = sorted(launch.regions, key=lambda r: r.base)
    spans = [
        (r, Interval(r.base, r.base + max(0, r.size_bytes - 1)))
        for r in regions
        if r.size_bytes > 0
    ]
    # (region, is_write) -> raw relative intervals
    touched: dict[tuple[str, bool], list[Interval]] = {}
    region_by_name = {r.name: r for r in regions}

    for site in iter_sites(launch.program):
        instr = site.instr
        if not instr.is_mem or instr.addr is None or instr.space not in _GLOBAL_SPACES:
            continue
        if any(loop.trips <= 0 for loop in site.loops):
            continue  # body never executes
        sym_ranges = dict(base_ranges)
        for loop in site.loops:
            sym_ranges[loop.var] = Interval(0, loop.trips - 1)
        interval, unbound = addr_interval(instr.addr, sym_ranges)
        if unbound:
            continue
        access = Interval(interval.lo, interval.hi + max(1, instr.width_bytes) - 1)
        for region, span in spans:
            if not span.intersects(access):
                continue
            rel = Interval(
                max(access.lo, span.lo) - region.base,
                min(access.hi, span.hi) - region.base,
            )
            touched.setdefault((region.name, not instr.is_load), []).append(rel)

    accesses: list[TensorAccess] = []
    for (region_name, is_write), raw in touched.items():
        region = region_by_name[region_name]
        tensor, klass = region_tensor(launch, region, node_inputs)
        accesses.append(
            TensorAccess(
                tensor=tensor,
                klass=klass,
                is_write=is_write,
                spans=_merge(raw),
                region=region_name,
                region_size=region.size_bytes,
                launch_index=launch_index,
                launch=launch.name,
                node=launch.node_name,
            )
        )
    # Reads before writes at equal launch index keeps downstream scans
    # deterministic; tensor name breaks remaining ties.
    accesses.sort(key=lambda a: (a.is_write, a.tensor, a.region))
    return accesses


def _spans_text(access: TensorAccess) -> str:
    return ", ".join(f"[{s.lo}, {s.hi}]" for s in access.spans)


def check_network_flow(
    launches: Sequence[KernelLaunch],
    node_inputs: dict[str, Sequence[str]],
    output_name: str | None = None,
    view_nodes: frozenset[str] | set[str] = frozenset(),
) -> list[Diagnostic]:
    """Inter-kernel def-use checks over a serial launch sequence.

    Args:
        launches: The network's launches in execution order.
        node_inputs: Graph edges — node name to its input tensor names.
        output_name: The network's output tensor (its final write is
            consumed by the host, never by a later launch).
        view_nodes: Nodes that are declared zero-copy views over their
            inputs (Concat); their tensors resolve to the constituent
            producers.  A node that is *not* a view but compiled to no
            launches is a genuine hole and its consumers report
            undefined reads.
    """
    flows: list[TensorAccess] = []
    for index, launch in enumerate(launches):
        inputs = node_inputs.get(launch.node_name, ())
        flows.extend(launch_flow(launch, inputs, index))

    # View nodes (Concat) compile to no launch: the tensor named after
    # one resolves (transitively) to the tensors of the producing
    # launches behind it, and an access to the view becomes a
    # conservative full-extent access to every constituent, since the
    # view's internal element order is a layout detail the interval
    # hull cannot apportion between them.
    launched = {launch.node_name for launch in launches}
    out_sizes: dict[str, int] = {}
    for launch in launches:
        for region in launch.regions:
            if region.base >> _SLOT_SHIFT == _SLOT_OUTPUT:
                out_sizes.setdefault(launch.node_name, region.size_bytes)

    def resolve(tensor: str) -> list[str]:
        if tensor in launched or tensor not in view_nodes:
            return [tensor]
        parts: list[str] = []
        for source in node_inputs.get(tensor, ()):
            parts.extend(resolve(source))
        return parts

    resolved: list[TensorAccess] = []
    for access in flows:
        parts = resolve(access.tensor) if access.klass == "activation" else None
        if not parts or parts == [access.tensor]:
            resolved.append(access)
            continue
        for part in parts:
            if part == GRAPH_INPUT:
                resolved.append(
                    replace(access, tensor=GRAPH_INPUT, klass="external")
                )
                continue
            size = out_sizes.get(part, access.region_size)
            resolved.append(
                replace(
                    access,
                    tensor=part,
                    spans=(Interval(0, max(0, size - 1)),),
                    region_size=size,
                )
            )

    by_tensor: dict[str, list[TensorAccess]] = {}
    for access in resolved:
        by_tensor.setdefault(access.tensor, []).append(access)

    diags: list[Diagnostic] = []
    for tensor, accesses in by_tensor.items():
        klass = accesses[0].klass
        writes = [a for a in accesses if a.is_write]
        reads = [a for a in accesses if not a.is_write]

        # -- undefined reads (activations only: weights, scratch and
        # the graph input are externally initialised).
        if klass == "activation":
            for read in reads:
                earlier = [
                    w for w in writes
                    if w.launch_index < read.launch_index and w.overlaps(read)
                ]
                if earlier:
                    continue
                if read.node == tensor:
                    # Recurrent self-edge: the first timestep reads the
                    # zero-filled initial state from its own output
                    # region.  Note it once, at the first occurrence.
                    diags.append(
                        Diagnostic(
                            Severity.NOTE,
                            "netflow-recurrent-init",
                            PASS,
                            read.launch,
                            f"reads its own output tensor {tensor!r} "
                            f"({_spans_text(read)}) before any write — "
                            f"zero-filled recurrent initial state",
                            data={"tensor": tensor, "region": read.region},
                        )
                    )
                    continue
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        "netflow-undefined-read",
                        PASS,
                        read.launch,
                        f"reads tensor {tensor!r} ({_spans_text(read)} of "
                        f"region {read.region!r}) which no earlier launch "
                        f"wrote",
                        data={
                            "tensor": tensor,
                            "region": read.region,
                            "launch_index": read.launch_index,
                        },
                    )
                )

        # -- dead writes (skip scratch — private by construction — and
        # the network output, whose last write the host consumes).
        if klass == "activation" and tensor != output_name:
            for write in writes:
                consumed = any(
                    r.launch_index > write.launch_index and r.overlaps(write)
                    for r in reads
                )
                if consumed:
                    continue
                rewritten = any(
                    w.launch_index > write.launch_index
                    and w.node == write.node
                    and w.overlaps(write)
                    for w in writes
                )
                if rewritten:
                    continue  # RNN timestep overwrites its predecessor
                diags.append(
                    Diagnostic(
                        Severity.WARNING,
                        "netflow-dead-write",
                        PASS,
                        write.launch,
                        f"writes tensor {tensor!r} ({_spans_text(write)} of "
                        f"region {write.region!r}) but no later launch "
                        f"reads it and it is not the network output",
                        data={"tensor": tensor, "region": write.region},
                    )
                )

        # -- cross-node WAW / WAR hazards (serial order is correct by
        # construction; these flag reorderings an executor must respect
        # beyond the producer->consumer edges).
        for i, first in enumerate(writes):
            for second in writes[i + 1:]:
                if second.node != first.node and first.overlaps(second):
                    diags.append(
                        Diagnostic(
                            Severity.WARNING,
                            "netflow-waw",
                            PASS,
                            second.launch,
                            f"write of tensor {tensor!r} overlaps the "
                            f"earlier write by {first.launch!r}",
                            data={"tensor": tensor, "earlier": first.launch},
                        )
                    )
        for read in reads:
            for write in writes:
                if (
                    write.launch_index > read.launch_index
                    and write.node != read.node
                    and write.overlaps(read)
                ):
                    diags.append(
                        Diagnostic(
                            Severity.WARNING,
                            "netflow-war",
                            PASS,
                            write.launch,
                            f"write of tensor {tensor!r} overlaps the "
                            f"earlier read by {read.launch!r}",
                            data={"tensor": tensor, "reader": read.launch},
                        )
                    )

        # -- declared-extent consistency between producer and consumers.
        if klass == "activation":
            sizes: dict[int, TensorAccess] = {}
            for access in accesses:
                sizes.setdefault(access.region_size, access)
            if len(sizes) > 1:
                detail = ", ".join(
                    f"{a.launch}:{a.region}={size}"
                    for size, a in sorted(sizes.items())
                )
                diags.append(
                    Diagnostic(
                        Severity.WARNING,
                        "netflow-size-mismatch",
                        PASS,
                        sorted(sizes.values(), key=lambda a: a.launch_index)[
                            -1
                        ].launch,
                        f"launches disagree on the extent of tensor "
                        f"{tensor!r}: {detail}",
                        data={"tensor": tensor, "sizes": sorted(sizes)},
                    )
                )
    return diags


def analyze_network_flow(name: str) -> LintReport:
    """Compile (cached) one suite network and verify its dataflow."""
    from repro.core import get_network
    from repro.kernels.compile import compiled_network
    from repro.obs import get_tracer

    graph = get_network(name)
    launches = compiled_network(name)
    node_inputs = {node.name: node.inputs for node in graph.nodes}
    view_nodes = frozenset(
        node.name
        for node in graph.nodes
        if type(node.layer).__name__ in _VIEW_LAYERS
    )
    report = LintReport(network=name, kernel_count=len(launches))
    diags = check_network_flow(
        launches, node_inputs, graph.output_name, view_nodes
    )
    report.extend(diags)

    tracer = get_tracer()
    if tracer.enabled:
        metrics = tracer.metrics
        metrics.counter("netflow.launches").inc(len(launches))
        for severity in Severity:
            count = report.count(severity)
            if count:
                metrics.counter(f"netflow.{severity}").inc(count)
    return report
