"""Canonical, translation-invariant kernel identity.

Two launches of a compiled network frequently differ *only* in which
concrete tensors they touch: ResNet stamps the same bottleneck
convolution dozens of times, an RNN repeats its cell once per timestep.
The simulator's result reuse (and the persistent kernel cache in
:mod:`repro.runs.store`) needs an identity that equates exactly those
launches whose :class:`~repro.profiling.stats.KernelStats` are
guaranteed bit-identical — no weaker (a collision would silently copy
wrong numbers) and no stronger than necessary (a missed equivalence
just wastes simulation time).

:func:`canonical_launch` builds that identity as a nested tuple of
plain values:

* **geometry** — grid, block, active threads, registers, shared and
  constant footprints, the ``shared_input`` flag;
* **program** — every instruction and loop in structure order (opcode,
  dtype, register indices, memory space, access width, loop variables
  and trip counts);
* **addresses** — each :class:`~repro.kernels.addressing.AddrExpr` with
  its affine terms verbatim but its *base* alpha-renamed to ``(region
  slot, offset within region)``, where the slot is the region's index
  in the launch's declaration-ordered region tuple.

The renaming is what buys translation invariance: uniformly relocating
a launch — shifting every region base and every address base by the
same per-region deltas — leaves all ``(slot, offset)`` pairs unchanged,
so the canonical form and its SHA-256 digest
(:func:`canonical_signature`) are unchanged too.  Conversely any
perturbation of the geometry or the program structure lands in a
different digest (`tests/test_canonical.py` property-tests both
directions).  Kernel and tensor *names* are deliberately excluded (they
never influence the simulated instruction or address stream), while
region byte sizes are kept: under the canonical layout a region's
concrete base is a function of the sizes allocated before it in its
slot, so sizes are part of what pins the concrete address stream.

Why equal signatures imply bit-identical stats: the compiler places
every kernel in its own canonical address space
(:mod:`repro.kernels.memory_layout`), so two launches with equal
canonical forms have byte-identical programs *and* byte-identical
concrete address streams — the alpha-renaming is the identity map on
compiler output, kept as defence against future non-canonical layouts.
The simulator is deterministic on those inputs.  Note the stronger
claim "equal canonical forms with *different* concrete bases simulate
identically" would additionally require the cache index function to be
translation-invariant, which the XOR-folded set index of
:mod:`repro.memory.cache` is not; DESIGN.md section 12 spells out why
the canonical layout makes this moot and the dedup equivalence test in
``tests/test_engine_equivalence.py`` pins it.

:func:`wave_class` is a second, coarser identity used *within* one
``simulate_network`` call: it drops the grid (keeping only the
coordinates of the blocks actually simulated, which is all the wave
ever reads — ``lin_bid`` reconstructs the block index under any grid)
so that, e.g., an element-wise kernel over a 56x56 map and the same
kernel over a 28x28 map share one :class:`~repro.gpu.sm.SmWave` run
and differ only in their cheap scaling step.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.isa.program import Loop, Program
from repro.kernels.launch import KernelLaunch

#: Version tag folded into both identities so a change to the canonical
#: form can never alias digests produced by an older definition.
CANONICAL_VERSION = "canon-1"


def _base_renamer(launch: KernelLaunch):
    """Map a concrete address base to ``(region slot, offset)``.

    Slots are the region's position in the launch's declaration-ordered
    ``regions`` tuple.  A base is attributed to the region with the
    greatest start at or below it; bases *below* every region (padded
    convolutions shift their input anchor a little under the input
    region) attach to the lowest region with a negative offset, which
    is exactly as stable under translation.
    """
    regions = launch.regions
    if not regions:
        return lambda base: (-1, base)
    by_base = sorted(range(len(regions)), key=lambda i: regions[i].base)
    starts = [regions[i].base for i in by_base]

    def rename(base: int) -> tuple[int, int]:
        pos = bisect_right(starts, base) - 1
        if pos < 0:
            pos = 0
        slot = by_base[pos]
        return slot, base - regions[slot].base

    return rename


def _canonical_items(items, rename) -> tuple:
    out = []
    for item in items:
        if isinstance(item, Loop):
            out.append(("loop", item.var, item.trips, _canonical_items(item.body, rename)))
            continue
        addr = None
        if item.addr is not None:
            slot, offset = rename(item.addr.base)
            addr = (
                slot,
                offset,
                tuple((t.sym, t.coef, t.div, t.mod, t.pre) for t in item.addr.terms),
            )
        out.append(
            (
                item.op.value,
                item.dtype.value,
                -1 if item.dst is None else item.dst.index,
                tuple(s.index for s in item.srcs),
                None if item.space is None else item.space.value,
                item.width_bytes,
                addr,
            )
        )
    return tuple(out)


def _canonical_program(program: Program, rename) -> tuple:
    return (
        program.reg_count,
        tuple(r.index for r in program.entry_regs),
        _canonical_items(program.items, rename),
    )


def canonical_launch(launch: KernelLaunch) -> tuple:
    """The full canonical form of one launch, as a nested tuple."""
    return (
        CANONICAL_VERSION,
        launch.grid,
        launch.block,
        launch.active_threads,
        launch.regs,
        launch.smem_bytes,
        launch.cmem_bytes,
        bool(launch.shared_input),
        tuple(r.size_bytes for r in launch.regions),
        _canonical_program(launch.program, _base_renamer(launch)),
    )


def canonical_signature(launch: KernelLaunch) -> str:
    """SHA-256 hex digest of :func:`canonical_launch`.

    The digest is cached on the launch instance: compiled launches are
    immutable in practice (the compiler builds them once and the
    ``compiled_network`` cache hands out the same objects), and every
    consumer — simulation dedup, the persistent result cache, the lint
    driver — asks repeatedly.
    """
    cached = getattr(launch, "_canonical_sig", None)
    if cached is None:
        payload = repr(canonical_launch(launch)).encode()
        cached = hashlib.sha256(payload).hexdigest()
        launch._canonical_sig = cached
    return cached


def simulated_block_coords(
    grid: tuple[int, int, int], sim_blocks: int
) -> tuple[tuple[int, int, int], ...]:
    """Block coordinates the wave simulator materializes, in order.

    Mirrors the decomposition in :class:`repro.gpu.sm.SmWave` exactly;
    ``lin_bid`` recomputed from these coordinates equals the plain block
    index under *any* grid, so the coordinates are the only channel
    through which the grid reaches the wave.
    """
    gx, gy, _ = grid
    return tuple(
        (bi % gx, (bi // gx) % gy, bi // (gx * gy)) for bi in range(sim_blocks)
    )


def wave_class(launch: KernelLaunch, sim_blocks: int, warm: bool) -> tuple:
    """Grid-free identity of one resident-wave simulation.

    Two launches in the same wave class drive :class:`repro.gpu.sm.SmWave`
    with identical inputs — same decoded program, block geometry, active
    mask, simulated block coordinates and L2 pre-warming — and therefore
    produce identical unscaled wave statistics and hierarchy counters.
    Everything grid-dependent (block scaling, wave count, launch
    overhead) happens in the per-launch scaling step outside the class.
    """
    return (
        CANONICAL_VERSION,
        "wave",
        launch.block,
        launch.active_threads,
        sim_blocks,
        simulated_block_coords(launch.grid, sim_blocks),
        bool(warm),
        tuple(r.size_bytes for r in launch.regions),
        _canonical_program(launch.program, _base_renamer(launch)),
    )
