"""Static kernel-IR verification and linting.

Every figure the reproduction emits is a function of the instruction
and address streams of the compiled kernels, so a silently malformed
thread program — an out-of-bounds affine address, a read of a register
nothing wrote, a missing barrier between shared-memory phases —
corrupts downstream results without failing any runtime test.  This
package gates against that with four static passes that run over every
:class:`~repro.kernels.launch.KernelLaunch` of a compiled network,
without executing the simulator:

1. :mod:`repro.analysis.defuse` — register def-use over expanded-loop
   dataflow (unwritten reads, dead writes, max-live vs. declared regs);
2. :mod:`repro.analysis.addresses` — conservative interval evaluation
   of every affine address against the declared memory regions;
3. :mod:`repro.analysis.races` — shared-memory race detection between
   barrier phases plus footprint checking against ``smem_bytes``;
4. :mod:`repro.analysis.lints` — performance/plausibility lints
   (uncoalesced warps, degenerate loops, dtype mixing, stranded
   geometry).

Two whole-network companions extend the per-kernel passes:

5. :mod:`repro.analysis.netflow` — inter-kernel dataflow over the
   serial launch order (undefined tensor reads, dead writes, WAR/WAW
   reorder hazards, producer/consumer extent mismatches);
6. :mod:`repro.analysis.canonical` — translation-invariant canonical
   kernel forms whose SHA-256 signatures the simulator uses to
   deduplicate repeated launches (see DESIGN.md section 12).

Entry points::

    from repro.analysis import analyze_network
    report = analyze_network("alexnet")     # LintReport
    report.has_errors                       # gate condition
    print(report.format())                  # per-kernel grouped text
    report.to_json()                        # machine-readable

    python -m repro lint --all              # CLI over the whole suite

The compiler integrates the strict form: ``compile_network(graph,
verify=True)`` raises :class:`KernelVerificationError` when any
error-severity diagnostic is found.
"""

from repro.analysis.addresses import check_addresses
from repro.analysis.canonical import (
    CANONICAL_VERSION,
    canonical_launch,
    canonical_signature,
)
from repro.analysis.defuse import check_defuse
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.driver import (
    KernelVerificationError,
    analyze_launch,
    analyze_launches,
    analyze_network,
    verify_launches,
)
from repro.analysis.intervals import Interval
from repro.analysis.lints import check_lints
from repro.analysis.netflow import (
    TensorAccess,
    analyze_network_flow,
    check_network_flow,
    launch_flow,
)
from repro.analysis.races import check_shared

__all__ = [
    "CANONICAL_VERSION",
    "Diagnostic",
    "Interval",
    "KernelVerificationError",
    "LintReport",
    "Severity",
    "TensorAccess",
    "analyze_launch",
    "analyze_launches",
    "analyze_network",
    "analyze_network_flow",
    "canonical_launch",
    "canonical_signature",
    "check_addresses",
    "check_defuse",
    "check_lints",
    "check_network_flow",
    "check_shared",
    "launch_flow",
    "verify_launches",
]
