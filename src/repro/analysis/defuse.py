"""Pass 1 — register def-use analysis over expanded-loop dataflow.

Three checks, all per launch:

* **unwritten-read** (error): an instruction reads a virtual register
  that is neither entry-live (thread ids, parameter pointers) nor
  written by any earlier instruction — in the simulator such a register
  silently scores as ready-at-0, so the dependence structure (and every
  stall figure derived from it) is wrong.  Loop bodies are scanned twice
  (:func:`repro.analysis.walk.linearize_twice`) so loop-carried
  definitions do not false-positive, while a genuine iteration-0 read of
  a never-initialized accumulator still fires.
* **dead-write** (note): a register is written but never read anywhere,
  not even as a store operand.  The builders emit some of these on
  purpose — nvcc's warp-index ``shl``/``shr`` pair is part of the
  paper's observed op mix whether or not the kernel uses both — so this
  is informational.
* **reg-count-exceeded** (error): the liveness high-water mark
  (:func:`repro.isa.program.max_live_registers`, the paper's Figure 12
  "Max Live Registers") exceeds the launch's declared Table III ``regs``
  — the declared register file could not actually hold the program.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.walk import linearize_twice
from repro.isa.program import max_live_registers
from repro.kernels.launch import KernelLaunch

PASS = "defuse"


def check_defuse(launch: KernelLaunch) -> list[Diagnostic]:
    """Run the def-use checks on one launch."""
    program = launch.program
    diags: list[Diagnostic] = []
    linear = linearize_twice(program)

    defined = {reg.index for reg in program.entry_regs}
    flagged: set[int] = set()
    read: set[int] = set()
    for instr in linear:
        for src in instr.srcs:
            read.add(src.index)
            if src.index not in defined and src.index not in flagged:
                flagged.add(src.index)
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        "unwritten-read",
                        PASS,
                        launch.name,
                        f"register {src} is read but never written before use",
                        instr=instr.describe(),
                        data={"register": src.index},
                    )
                )
        if instr.dst is not None:
            defined.add(instr.dst.index)

    seen_dead: set[int] = set()
    for instr in linear:
        dst = instr.dst
        if dst is None or dst.index in read or dst.index in seen_dead:
            continue
        seen_dead.add(dst.index)
        diags.append(
            Diagnostic(
                Severity.NOTE,
                "dead-write",
                PASS,
                launch.name,
                f"register {dst} is written but never read",
                instr=instr.describe(),
                data={"register": dst.index},
            )
        )

    live = max_live_registers(program)
    if live.max_live > launch.regs:
        diags.append(
            Diagnostic(
                Severity.ERROR,
                "reg-count-exceeded",
                PASS,
                launch.name,
                f"max live registers {live.max_live} exceeds the declared "
                f"per-thread allocation of {launch.regs}",
                data={"max_live": live.max_live, "declared": launch.regs},
            )
        )
    return diags
