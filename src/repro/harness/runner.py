"""Disk-cached simulation runner shared by all experiments.

A full harness sweep needs each (network, platform, L1 size, scheduler)
combination exactly once; simulations are deterministic, so results are
cached as JSON under ``.tango_cache/`` keyed by a hash of the run
parameters plus a cache-format version.  Cached runs load as
:class:`CachedNetworkResult`, which exposes the same read API as
:class:`~repro.gpu.simulator.NetworkResult` (the power model and nvprof
front-end duck-type against it).
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.simulator import NetworkResult, simulate_network
from repro.gpu.sm import ENGINE_VERSION
from repro.profiling.stats import KernelStats

#: Bump when the cache format changes; the key also folds in the SM
#: engine version so issue-loop semantic changes discard stale results.
CACHE_VERSION = 6


@dataclass(frozen=True)
class KernelInfo:
    """Identity of one kernel in a cached result."""

    name: str
    node_name: str
    category: str


@dataclass
class CachedKernelResult:
    """Kernel entry of a cached run (API-compatible with KernelResult)."""

    kernel: KernelInfo
    stats: KernelStats

    @property
    def category(self) -> str:
        """Layer-type category."""
        return self.kernel.category


@dataclass
class CachedNetworkResult:
    """Cached network run exposing the NetworkResult read API."""

    network: str
    config: GpuConfig
    kernels: list[CachedKernelResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles."""
        return sum(k.stats.cycles for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        """End-to-end milliseconds at the platform clock."""
        return self.total_cycles / (self.config.clock_ghz * 1e6)

    def cycles_by_category(self) -> dict[str, float]:
        """Cycles per layer-type category."""
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.category] = out.get(k.category, 0.0) + k.stats.cycles
        return out

    def stats_by_category(self) -> dict[str, KernelStats]:
        """Merged counters per layer-type category."""
        out: dict[str, KernelStats] = {}
        for k in self.kernels:
            out.setdefault(k.category, KernelStats()).merge(k.stats)
        return out

    def aggregate(self) -> KernelStats:
        """Whole-network merged counters."""
        total = KernelStats()
        for k in self.kernels:
            total.merge(k.stats)
        return total


# ----------------------------------------------------------------------
# (de)serialization
# ----------------------------------------------------------------------
def stats_to_dict(stats: KernelStats) -> dict:
    """JSON-ready dict of one KernelStats (see KernelStats.to_dict)."""
    return stats.to_dict()


def stats_from_dict(data: dict) -> KernelStats:
    """Inverse of :func:`stats_to_dict`."""
    return KernelStats.from_dict(data)


def _result_to_dict(result: NetworkResult) -> dict:
    return {
        "network": result.network,
        "kernels": [
            {
                "name": k.kernel.name,
                "node_name": k.kernel.node_name,
                "category": k.category,
                "stats": stats_to_dict(k.stats),
            }
            for k in result.kernels
        ],
    }


def _result_from_dict(data: dict, config: GpuConfig) -> CachedNetworkResult:
    out = CachedNetworkResult(network=data["network"], config=config)
    for entry in data["kernels"]:
        out.kernels.append(
            CachedKernelResult(
                kernel=KernelInfo(entry["name"], entry["node_name"], entry["category"]),
                stats=stats_from_dict(entry["stats"]),
            )
        )
    return out


# ----------------------------------------------------------------------
class Runner:
    """Cached front door to :func:`simulate_network`."""

    def __init__(self, cache_dir: str | Path | None = ".tango_cache", verbose: bool = False):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.verbose = verbose
        self._memory: dict[str, CachedNetworkResult] = {}

    def _key(self, network: str, config: GpuConfig, options: SimOptions) -> str:
        payload = json.dumps(
            {
                "v": CACHE_VERSION,
                "engine": ENGINE_VERSION,
                "network": network,
                "config": [
                    config.name, config.num_sms, config.l1_size, config.l2_size,
                    config.mshr_entries, config.dram_gb_per_s, config.clock_ghz,
                    config.registers_per_sm, config.max_blocks_per_sm,
                ],
                "options": [
                    options.scheduler, options.max_trips, options.max_outer_trips,
                    options.max_sim_blocks, options.stall_sample,
                    options.queue_penalty, options.tlv_group,
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def _cache_path(self, network: str, config: GpuConfig, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{network}-{config.name}-{key}.json"

    def run(
        self,
        network: str,
        config: GpuConfig,
        options: SimOptions | None = None,
    ) -> CachedNetworkResult:
        """Run (or load) one network simulation."""
        options = options or SimOptions()
        key = self._key(network, config, options)
        if key in self._memory:
            return self._memory[key]
        path = self._cache_path(network, config, key)
        if path is not None and path.exists():
            data = json.loads(path.read_text())
            result = _result_from_dict(data, config)
        else:
            if self.verbose:
                print(f"[runner] simulating {network} on {config.name} "
                      f"(l1={config.l1_size}, sched={options.scheduler})")
            live = simulate_network(network, config, options)
            data = _result_to_dict(live)
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(data))
            result = _result_from_dict(data, config)
        self._memory[key] = result
        return result

    def prefetch(
        self,
        combos: list[tuple[str, GpuConfig, SimOptions]],
        jobs: int,
    ) -> int:
        """Simulate uncached *combos* across worker processes.

        Results are merged into this runner's memory/disk cache in
        *combos* order (submission order), so the cache contents — and
        any iteration over them — are deterministic no matter which
        worker finishes first.  Returns the number of fresh simulations.
        """
        pending: list[tuple[str, str, GpuConfig, SimOptions]] = []
        for network, config, options in combos:
            key = self._key(network, config, options)
            if key in self._memory:
                continue
            path = self._cache_path(network, config, key)
            if path is not None and path.exists():
                continue
            pending.append((key, network, config, options))
        if not pending:
            return 0
        if jobs <= 1 or len(pending) == 1:
            for _, network, config, options in pending:
                self.run(network, config, options)
            return len(pending)
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [
                pool.submit(_simulate_combo, network, config, options)
                for _, network, config, options in pending
            ]
            # Canonical-order merge: collect in submission order.
            for (key, network, config, _), future in zip(pending, futures):
                data = future.result()
                path = self._cache_path(network, config, key)
                if path is not None:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    path.write_text(json.dumps(data))
                self._memory[key] = _result_from_dict(data, config)
        return len(pending)


def _simulate_combo(network: str, config: GpuConfig, options: SimOptions) -> dict:
    """Module-level (picklable) worker: one full network simulation."""
    return _result_to_dict(simulate_network(network, config, options))
