"""Figure 10: instruction data-type breakdown throughout execution.

Paper: per-layer (invocation order) data-type mix for ResNet, stated to
be representative of all networks.  Claims checked (Observation 8):
f32 is *not* the dominant type — unsigned 32/16-bit integers are, due
to index arithmetic and ReLU-zeroed data; early layers run around 20%
f32 and the share does not grow in deeper layers.
"""

from __future__ import annotations

from repro.harness.report import Check
from repro.profiling.instmix import dtype_mix_per_kernel, f32_fraction
from repro.runs import Experiment, RunView
from repro.runs.registry import register


def _dominant_dtype(hist):
    """The typed data type with the largest dynamic share."""
    from repro.isa.dtypes import DType

    totals: dict = {}
    for (_op, dtype), count in hist.items():
        if dtype is not DType.NONE:
            totals[dtype] = totals.get(dtype, 0.0) + count
    return max(totals, key=lambda dt: totals[dt])


def _aggregate(view: RunView) -> dict:
    per_kernel = dtype_mix_per_kernel("resnet")
    # The figure plots every layer; the series keeps a readable sample
    # of the invocation order plus the aggregate.
    sampled = {
        kernel_name: {dtype: round(frac, 3) for dtype, frac in mix.items()}
        for kernel_name, mix in per_kernel[:: max(1, len(per_kernel) // 16)]
    }
    return {"per_kernel_sample": sampled, "f32_total": round(f32_fraction("resnet"), 3)}


def _checks(view: RunView, series: dict) -> list[Check]:
    from repro.profiling.instmix import network_histogram  # local import, cheap
    from repro.isa.dtypes import DType

    per_kernel = dtype_mix_per_kernel("resnet")
    f32_by_layer = [mix.get("f32", 0.0) for _, mix in per_kernel if mix]
    f32_total = f32_fraction("resnet")
    hist = network_histogram("resnet")
    typed_total = sum(v for (op, dt), v in hist.items() if dt is not DType.NONE)
    int_share_total = (
        sum(v for (op, dt), v in hist.items() if dt.is_integer) / typed_total
    )

    early = sum(f32_by_layer[:10]) / 10
    late = sum(f32_by_layer[-10:]) / 10
    return [
        Check(
            "f32 is not the dominant data type",
            f32_total < 0.5 and int_share_total > f32_total,
            f"f32={f32_total:.0%}, integer={int_share_total:.0%}",
        ),
        Check(
            "early layers run around 20% f32 instructions",
            0.10 <= early <= 0.40,
            f"mean f32 share of first 10 kernels = {early:.0%}",
        ),
        Check(
            "the f32 share does not grow in deeper layers",
            late <= early + 0.05,
            f"first-10 mean={early:.0%}, last-10 mean={late:.0%}",
        ),
        Check(
            "unsigned 32/16-bit integers are the most used data types",
            _dominant_dtype(hist).value in ("u32", "u16"),
            f"dominant type = {_dominant_dtype(hist).value}",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig10",
        title="Instruction Type Breakdown Throughout Execution (ResNet)",
        aggregate=_aggregate,
        checks=_checks,
        notes="analytic — no simulation required",
    )
)
