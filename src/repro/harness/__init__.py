"""The experiment harness: one module per paper table and figure.

Every ``figNN_*`` / ``tableN`` module exposes:

* ``run(runner) -> ExperimentResult`` — compute the experiment's data
  (series labelled as in the paper) and evaluate the paper's qualitative
  claims as named checks;
* the shared :class:`~repro.harness.report.ExperimentResult` carries a
  text rendering used by the CLI and EXPERIMENTS.md.

:mod:`repro.harness.runner` provides the disk-cached simulation runner
all experiments share, so a full harness sweep simulates each
(network, platform, L1, scheduler) combination exactly once.
"""

from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner

__all__ = ["Check", "ExperimentResult", "Runner"]
