"""The experiment harness: one module per paper table and figure.

Every ``figNN_*`` module (and :mod:`repro.harness.tables`) declares its
table or figure as a :class:`~repro.runs.experiment.Experiment`: the
runs it needs (``plan``), how its series aggregate from cached results
(``aggregate``), and the paper's qualitative claims (``checks``).  The
modules register themselves in :mod:`repro.runs.registry`; planning,
execution and caching live in :mod:`repro.runs`, so a full harness
sweep simulates each (network, platform, L1, scheduler) combination
exactly once and a repeat sweep simulates nothing.

:class:`~repro.harness.report.ExperimentResult` carries the shared text
rendering used by the CLI and EXPERIMENTS.md.
"""

from repro.harness.report import Check, ExperimentResult

__all__ = ["Check", "ExperimentResult"]
