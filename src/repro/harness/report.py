"""Shared experiment-result containers and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Check:
    """One qualitative claim from the paper, evaluated on our data."""

    claim: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.claim}{detail}"


@dataclass
class ExperimentResult:
    """Outcome of regenerating one paper table or figure."""

    exp_id: str
    title: str
    #: Labelled data series; structure is experiment-specific but always
    #: JSON-serializable (dicts/lists of floats/strings).
    series: dict[str, Any] = field(default_factory=dict)
    checks: list[Check] = field(default_factory=list)
    notes: str = ""

    @property
    def all_passed(self) -> bool:
        """True when every qualitative check holds."""
        return all(check.passed for check in self.checks)

    def format(self) -> str:
        """Human-readable rendering for the CLI and EXPERIMENTS.md."""
        lines = [f"=== {self.exp_id}: {self.title} ==="]
        for label, data in self.series.items():
            lines.append(f"  {label}: {_fmt(data)}")
        for check in self.checks:
            lines.append(f"  {check}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def _fmt(data: Any) -> str:
    if isinstance(data, dict):
        inner = ", ".join(f"{key}={_fmt(value)}" for key, value in data.items())
        return "{" + inner + "}"
    if isinstance(data, float):
        return f"{data:.4g}"
    if isinstance(data, (list, tuple)):
        return "[" + ", ".join(_fmt(item) for item in data) + "]"
    return str(data)


def markdown_table(headers: list[str], rows: list[list[Any]]) -> str:
    """A GitHub-flavoured markdown table; cells format via ``_fmt``."""
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    def line(items: list[str]) -> str:
        return "| " + " | ".join(item.ljust(width) for item, width in zip(items, widths)) + " |"
    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def markdown_report(title: str, sections: list[tuple[str, str]]) -> str:
    """A markdown document: a title plus (heading, body) sections."""
    parts = [f"# {title}"]
    for heading, body in sections:
        parts.append(f"## {heading}\n\n{body}")
    return "\n\n".join(parts) + "\n"
