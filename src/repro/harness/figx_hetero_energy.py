"""Figure-6-style energy comparison across heterogeneous accelerators.

The paper's Figure 6 compares one embedded GPU against one FPGA; this
extension experiment spans all three device kinds the platform registry
now covers — the Jetson TX1 (gpu), the ZCU102-class FPGA (fpga, via the
tiling mapper) and the SpiNNaker2-class NPU (npu, same mapper) — using
the same Wattsup methodology: energy = peak power x execution time.

Expected relationships (first-order device physics the models encode):
the wide-DSP FPGA finishes fastest, the near-threshold NPU draws the
least power and wins on energy, and the embedded GPU — paying GDDR
traffic and instruction overheads for every layer — is the least
energy-efficient of the three, just as Figure 6 found against the
much smaller PynQ.
"""

from __future__ import annotations

from repro.harness.common import display
from repro.harness.report import Check
from repro.platforms import S2NPU, TX1, ZCU102
from repro.power.wattsup import DeviceMeasurement, WattsupMeter
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext

NETWORKS = ("cifarnet", "squeezenet")

#: The three devices, one per registry kind.
DEVICES = (TX1, ZCU102, S2NPU)


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(
        RunSpec(name, config, ctx.options)
        for name in ctx.nets(NETWORKS)
        for config in DEVICES
    )


def _measure(view: RunView, name: str) -> dict[str, DeviceMeasurement]:
    """Wattsup measurement per device for one network."""
    return {
        config.name: WattsupMeter(config).measure(view.run(name, config))
        for config in DEVICES
    }


def _aggregate(view: RunView) -> dict:
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(NETWORKS):
        measured = _measure(view, name)
        baseline = measured["S2NPU"].energy_j
        row: dict[str, float] = {}
        for config in DEVICES:
            m = measured[config.name]
            row[f"{config.name} (norm energy)"] = round(m.energy_j / baseline, 3)
        for config in DEVICES:
            m = measured[config.name]
            row[f"{config.name.lower()}_peak_w"] = round(m.peak_watts, 2)
            row[f"{config.name.lower()}_time_ms"] = round(m.time_s * 1e3, 3)
        series[display(name)] = row
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    checks: list[Check] = []
    for name in view.nets(NETWORKS):
        m = _measure(view, name)
        gpu, fpga, npu = m["TX1"], m["ZCU102"], m["S2NPU"]
        checks.append(
            Check(
                f"{display(name)}: NPU is the most energy-efficient device",
                npu.energy_j < fpga.energy_j < gpu.energy_j,
                f"J: gpu {gpu.energy_j:.4f} > fpga {fpga.energy_j:.4f} "
                f"> npu {npu.energy_j:.4f}",
            )
        )
        checks.append(
            Check(
                f"{display(name)}: embedded GPU pays a large energy premium "
                f"(Figure 6 found 1.3-1.8x vs a far smaller FPGA)",
                gpu.energy_j / npu.energy_j > 5.0,
                f"measured gpu/npu {gpu.energy_j / npu.energy_j:.1f}x",
            )
        )
        checks.append(
            Check(
                f"{display(name)}: near-threshold NPU draws the lowest "
                f"peak power",
                npu.peak_watts < min(gpu.peak_watts, fpga.peak_watts),
                f"W: npu {npu.peak_watts:.2f}, fpga {fpga.peak_watts:.2f}, "
                f"gpu {gpu.peak_watts:.2f}",
            )
        )
        checks.append(
            Check(
                f"{display(name)}: wide-DSP FPGA finishes ahead of the "
                f"embedded GPU",
                fpga.time_s < gpu.time_s,
                f"s: fpga {fpga.time_s:.4f} vs gpu {gpu.time_s:.4f}",
            )
        )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="hetero",
        title="Energy Across GPU, FPGA and NPU Backends (Fig. 6 extended)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
