"""Figure 15: warp-scheduler sensitivity (GTO vs LRR vs TLV).

Paper: execution time of every network under the three GPGPU-Sim warp
schedulers, normalized to GTO.  Claims checked (Observation 12): the
RNNs show no considerable difference; AlexNet and ResNet improve
significantly under LRR thanks to conv's high data locality; TLV does
not beat LRR on the conv-heavy networks.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.common import ALL_NETWORKS, SCHEDULERS, display, sim_platform
from repro.harness.report import Check
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    platform = sim_platform()
    return tuple(
        RunSpec(name, platform, replace(ctx.options, scheduler=scheduler))
        for name in ctx.nets(ALL_NETWORKS)
        for scheduler in SCHEDULERS
    )


def _aggregate(view: RunView) -> dict:
    platform = sim_platform()
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(ALL_NETWORKS):
        cycles = {}
        for scheduler in SCHEDULERS:
            options = replace(view.ctx.options, scheduler=scheduler)
            cycles[scheduler.upper()] = view.run(name, platform, options).total_cycles
        base = cycles["GTO"]
        series[display(name)] = {s: round(v / base, 4) for s, v in cycles.items()}
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    return [
        Check(
            "RNNs show no considerable scheduler sensitivity",
            all(
                abs(series[rnn][s] - 1.0) < 0.06
                for rnn in ("GRU", "LSTM")
                for s in ("LRR", "TLV")
            ),
            f"GRU={series['GRU']} LSTM={series['LSTM']}",
        ),
        Check(
            "AlexNet improves significantly under LRR",
            series["AlexNet"]["LRR"] <= 0.90,
            f"AlexNet LRR = {series['AlexNet']['LRR']:.2f}",
        ),
        Check(
            "ResNet improves under LRR",
            series["ResNet"]["LRR"] <= 0.95,
            f"ResNet LRR = {series['ResNet']['LRR']:.2f}",
        ),
        Check(
            "LRR is at least as good as TLV on the conv-heavy networks",
            series["AlexNet"]["LRR"] <= series["AlexNet"]["TLV"]
            and series["ResNet"]["LRR"] <= series["ResNet"]["TLV"],
            "LRR <= TLV for AlexNet and ResNet",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig15",
        title="Warp Scheduler Sensitivity (normalized to GTO)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
