"""Figure 2: normalized execution time with various L1D sizes.

Paper: all seven networks run on GPGPU-Sim with the L1D bypassed, at
the Pascal default 64 KB, and at 2x/4x that, normalized to the bypassed
run.  Claims checked: RNNs show no meaningful improvement from larger
L1Ds while most CNNs improve significantly (Observation 2); AlexNet's
64 KB run is around 2x faster than No-L1; CNN execution improves again
(by around 10%) moving from 64 KB to 128 KB on the most cache-sensitive
network.
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS, L1_SWEEP, display, sim_platform
from repro.harness.report import Check
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext

#: Improvement thresholds separating "significant" from "negligible".
RNN_MAX_GAIN = 0.25
CNN_MIN_GAIN = 0.30


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    platform = sim_platform()
    return tuple(
        RunSpec(name, platform.with_l1(l1_size), ctx.options)
        for name in ctx.nets(ALL_NETWORKS)
        for _, l1_size in L1_SWEEP
    )


def _aggregate(view: RunView) -> dict:
    platform = sim_platform()
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(ALL_NETWORKS):
        cycles = {}
        for label, l1_size in L1_SWEEP:
            result = view.run(name, platform.with_l1(l1_size))
            cycles[label] = result.total_cycles
        base = cycles["No L1"]
        series[display(name)] = {label: round(v / base, 4) for label, v in cycles.items()}
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    checks = []
    for rnn in ("GRU", "LSTM"):
        gain = 1.0 - series[rnn]["4xL1"]
        flat = abs(series[rnn]["L1"] - series[rnn]["4xL1"]) < 0.03
        checks.append(
            Check(
                f"{rnn}: no meaningful improvement from (larger) L1Ds",
                gain < RNN_MAX_GAIN and flat,
                f"total gain={gain:.0%}, 64K->256K delta="
                f"{series[rnn]['L1'] - series[rnn]['4xL1']:.3f}",
            )
        )
    cnn_gains = {}
    for name in ("cifarnet", "alexnet", "squeezenet", "resnet", "vggnet"):
        cnn_gains[display(name)] = 1.0 - series[display(name)]["L1"]
    significant = [label for label, gain in cnn_gains.items() if gain >= CNN_MIN_GAIN]
    checks.append(
        Check(
            "most CNNs improve significantly with an L1D",
            len(significant) >= 3,
            ", ".join(f"{k}:{v:.0%}" for k, v in cnn_gains.items()),
        )
    )
    checks.append(
        Check(
            "AlexNet speeds up by roughly 2x with the 64KB L1D",
            series["AlexNet"]["L1"] <= 0.67,
            f"normalized time with L1 = {series['AlexNet']['L1']:.2f}",
        )
    )
    rnn_best = max(1.0 - series["GRU"]["L1"], 1.0 - series["LSTM"]["L1"])
    cnn_best = max(cnn_gains.values())
    checks.append(
        Check(
            "CNN cache gains dwarf RNN cache gains",
            cnn_best > 2 * max(rnn_best, 1e-9),
            f"best CNN gain={cnn_best:.0%}, best RNN gain={rnn_best:.0%}",
        )
    )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="fig02",
        title="Normalized Execution Time with Various L1D Sizes",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
