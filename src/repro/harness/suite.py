"""Run the whole experiment harness: every table and figure.

``python -m repro.harness.suite`` regenerates all 20 experiments (4
tables + 16 figures), prints each one's series and qualitative checks,
and exits non-zero if any check fails.  Results are cached under
``.tango_cache`` so a re-run is fast.

Options: ``--chart`` renders each figure's series as terminal bar
charts; ``--json DIR`` writes each experiment's data as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable

from repro.harness import fig01_exec_breakdown
from repro.harness import fig02_l1_sensitivity
from repro.harness import fig03_peak_power
from repro.harness import fig04_layer_power
from repro.harness import fig05_component_power
from repro.harness import fig06_tx1_pynq
from repro.harness import fig07_stall_breakdown
from repro.harness import fig08_op_breakdown
from repro.harness import fig09_top_ops
from repro.harness import fig10_dtype_breakdown
from repro.harness import fig11_memfootprint
from repro.harness import fig12_register_usage
from repro.harness import fig13_l2_misses
from repro.harness import fig14_l2_miss_ratio
from repro.harness import fig15_scheduler
from repro.harness import fig16_scheduler_alexnet
from repro.harness import tables
from repro.harness.report import ExperimentResult
from repro.harness.runner import Runner

#: Every experiment in paper order: id -> run callable.
EXPERIMENTS: dict[str, Callable[[Runner], ExperimentResult]] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
    "table4": tables.run_table4,
    "fig01": fig01_exec_breakdown.run,
    "fig02": fig02_l1_sensitivity.run,
    "fig03": fig03_peak_power.run,
    "fig04": fig04_layer_power.run,
    "fig05": fig05_component_power.run,
    "fig06": fig06_tx1_pynq.run,
    "fig07": fig07_stall_breakdown.run,
    "fig08": fig08_op_breakdown.run,
    "fig09": fig09_top_ops.run,
    "fig10": fig10_dtype_breakdown.run,
    "fig11": fig11_memfootprint.run,
    "fig12": fig12_register_usage.run,
    "fig13": fig13_l2_misses.run,
    "fig14": fig14_l2_miss_ratio.run,
    "fig15": fig15_scheduler.run,
    "fig16": fig16_scheduler_alexnet.run,
}


def run_all(
    ids: list[str] | None = None,
    cache_dir: str | None = ".tango_cache",
    verbose: bool = True,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run the selected (default: all) experiments and return results.

    With ``jobs > 1`` every simulation the full suite needs is first
    prefetched across that many worker processes
    (:meth:`Runner.prefetch` over :func:`harness_combos`); the
    experiments then run serially against the populated cache.
    """
    runner = Runner(cache_dir=cache_dir, verbose=verbose)
    if jobs > 1:
        from repro.harness.common import harness_combos

        fresh = runner.prefetch(harness_combos(), jobs)
        if verbose and fresh:
            print(f"[suite] prefetched {fresh} simulations with {jobs} jobs",
                  flush=True)
    selected = ids or list(EXPERIMENTS)
    results = []
    for exp_id in selected:
        if exp_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {exp_id!r}")
        start = time.time()
        result = EXPERIMENTS[exp_id](runner)
        result.notes = (result.notes + f" [{time.time() - start:.1f}s]").strip()
        results.append(result)
        if verbose:
            print(result.format(), flush=True)
    return results


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    parser.add_argument("--chart", action="store_true",
                        help="render series as terminal bar charts")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="write each experiment's series/checks as JSON under DIR")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="prefetch all needed simulations with N worker "
                             "processes before running the experiments")
    args = parser.parse_args(argv)
    results = run_all(
        ids=args.experiments or None,
        cache_dir=None if args.no_cache else ".tango_cache",
        jobs=args.jobs,
    )
    if args.chart:
        from repro.harness.render import render_experiment

        for result in results:
            chart = render_experiment(result)
            if chart:
                print("\n" + chart)
    if args.json:
        out_dir = Path(args.json)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in results:
            payload = {
                "id": result.exp_id,
                "title": result.title,
                "series": result.series,
                "checks": [
                    {"claim": c.claim, "passed": c.passed, "detail": c.detail}
                    for c in result.checks
                ],
                "notes": result.notes,
            }
            (out_dir / f"{result.exp_id}.json").write_text(json.dumps(payload, indent=2))
        print(f"wrote {len(results)} JSON files under {out_dir}/")
    failed = [
        f"{r.exp_id}: {c.claim}" for r in results for c in r.checks if not c.passed
    ]
    print(f"\n{len(results)} experiments, "
          f"{sum(len(r.checks) for r in results)} checks, {len(failed)} failed")
    for line in failed:
        print(f"  FAIL {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
