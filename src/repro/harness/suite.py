"""Run the whole experiment harness: every table and figure.

``python -m repro.harness.suite`` regenerates all 21 experiments (4
tables + 16 figures) through the declarative plan -> execute ->
aggregate pipeline: the planner collects every registered experiment's
required runs and dedupes them into a minimal matrix, the executor
materializes the matrix against the unified result store
(``.repro-cache/`` or ``$REPRO_CACHE_DIR``), and each experiment then
aggregates its series and checks from pure cache hits.  A re-run
performs zero simulations.

Options: ``--chart`` renders each figure's series as terminal bar
charts; ``--json DIR`` writes each experiment's data as JSON;
``--jobs N`` fans fresh simulations over N worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.harness.report import ExperimentResult
from repro.runs import Executor, PlanContext, ResultStore, build_plan, run_experiment
from repro.runs.registry import all_experiments

#: Sentinel: ``run_all(cache_dir=DEFAULT_STORE)`` opens the unified
#: store at its default location ($REPRO_CACHE_DIR or .repro-cache).
DEFAULT_STORE = object()

#: Every experiment in paper order: id -> Experiment spec (legacy name,
#: kept for callers that enumerate the suite).
EXPERIMENTS = all_experiments()


def run_all(
    ids: list[str] | None = None,
    cache_dir=DEFAULT_STORE,
    verbose: bool = True,
    jobs: int = 1,
    ctx: PlanContext | None = None,
) -> list[ExperimentResult]:
    """Plan, execute and aggregate the selected (default: all) experiments.

    ``cache_dir=None`` keeps everything in memory (no disk IO); any
    other value opens a :class:`~repro.runs.store.ResultStore` there;
    the default resolves through ``$REPRO_CACHE_DIR``.  With
    ``jobs > 1`` the plan's missing runs fan out across worker
    processes before aggregation.
    """
    experiments = all_experiments()
    selected = ids or list(experiments)
    for exp_id in selected:
        if exp_id not in experiments:
            raise KeyError(f"unknown experiment {exp_id!r}")
    if cache_dir is None:
        store = None
    elif cache_dir is DEFAULT_STORE:
        store = ResultStore()
    else:
        store = ResultStore(cache_dir)
    ctx = ctx or PlanContext()
    chosen = [experiments[exp_id] for exp_id in selected]
    plan = build_plan(chosen, ctx)
    executor = Executor(store, verbose=verbose)
    if verbose and plan.specs:
        print(plan.describe(), flush=True)
    report = executor.execute(plan, jobs=jobs)
    if verbose and plan.specs:
        print(report.summary(), flush=True)
    results = []
    for experiment in chosen:
        start = time.time()
        result = run_experiment(experiment, executor, ctx)
        result.notes = (result.notes + f" [{time.time() - start:.1f}s]").strip()
        results.append(result)
        if verbose:
            print(result.format(), flush=True)
    return results


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    parser.add_argument("--chart", action="store_true",
                        help="render series as terminal bar charts")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="write each experiment's series/checks as JSON under DIR")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="execute the planned run matrix with N worker "
                             "processes before aggregating")
    args = parser.parse_args(argv)
    results = run_all(
        ids=args.experiments or None,
        cache_dir=None if args.no_cache else DEFAULT_STORE,
        jobs=args.jobs,
    )
    if args.chart:
        from repro.harness.render import render_experiment

        for result in results:
            chart = render_experiment(result)
            if chart:
                print("\n" + chart)
    if args.json:
        write_json(results, args.json)
    failed = [
        f"{r.exp_id}: {c.claim}" for r in results for c in r.checks if not c.passed
    ]
    print(f"\n{len(results)} experiments, "
          f"{sum(len(r.checks) for r in results)} checks, {len(failed)} failed")
    for line in failed:
        print(f"  FAIL {line}")
    return 1 if failed else 0


def result_payload(result: ExperimentResult) -> dict:
    """One experiment's JSON form (shared by file and stdout output)."""
    return {
        "id": result.exp_id,
        "title": result.title,
        "series": result.series,
        "checks": [
            {"claim": c.claim, "passed": c.passed, "detail": c.detail}
            for c in result.checks
        ],
        "notes": result.notes,
    }


def write_json(
    results: list[ExperimentResult], out_dir: str | Path, verbose: bool = True
) -> None:
    """Write one ``<exp_id>.json`` per result under *out_dir*."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for result in results:
        (out / f"{result.exp_id}.json").write_text(
            json.dumps(result_payload(result), indent=2)
        )
    if verbose:
        print(f"wrote {len(results)} JSON files under {out}/")


if __name__ == "__main__":
    sys.exit(main())
