"""Figure 5: breakdown of average power by hardware component.

Paper: stacked-percentage power per GPUWattch component for every
network.  Claim checked: the key consumers are the register file (RF),
the L2 cache (L2C) and idle-core power (IDLE_CORE).
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS, display, sim_platform
from repro.harness.report import Check
from repro.power.gpuwattch import GpuWattchModel
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(
        RunSpec(name, sim_platform(), ctx.options) for name in ctx.nets(ALL_NETWORKS)
    )


def _aggregate(view: RunView) -> dict:
    platform = sim_platform()
    model = GpuWattchModel(platform)
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(ALL_NETWORKS):
        result = view.run(name, platform)
        breakdown = model.network_breakdown(result).fractions()
        series[display(name)] = {
            comp: round(frac, 4) for comp, frac in breakdown.items() if frac >= 0.001
        }
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    checks = []
    for name in ("alexnet", "resnet"):
        fracs = series[display(name)]
        top3 = sorted(fracs, key=lambda c: fracs[c], reverse=True)[:4]
        expected = {"RF", "L2C", "IDLE_CORE"}
        checks.append(
            Check(
                f"{display(name)}: RF, L2C and IDLE_CORE are among the key consumers",
                len(expected & set(top3)) >= 2,
                f"top components: {', '.join(top3)}",
            )
        )
    rf_heavy = sum(1 for name in ALL_NETWORKS if series[display(name)].get("RF", 0) >= 0.10)
    checks.append(
        Check(
            "the register file is a first-order consumer across the suite",
            rf_heavy >= 4,
            f"{rf_heavy}/7 networks spend >=10% of power in RF",
        )
    )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="fig05",
        title="Breakdown of Average Power Consumption (component shares)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
        render="stack",
    )
)
