"""Figure 6: energy on the embedded GPU (TX1) vs the embedded FPGA (PynQ).

Paper: Wattsup-metered peak power x execution time for CifarNet and
SqueezeNet on the Jetson TX1 and the PynQ-Z1, normalized to PynQ.
Measured relationships checked: TX1 draws 2.28x / 3.2x higher peak
power, finishes 1.7x / 1.8x faster, and ends up 1.34x / 1.74x *less*
energy efficient than the FPGA.
"""

from __future__ import annotations

from repro.core.suite import get_network
from repro.harness.common import display
from repro.harness.report import Check
from repro.platforms import TX1, PynqZ1Model
from repro.power.wattsup import WattsupMeter
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext

NETWORKS = ("cifarnet", "squeezenet")

#: Paper-measured ratios (TX1 / PynQ) with generous tolerance bands.
PAPER_POWER_RATIO = {"cifarnet": 2.28, "squeezenet": 3.2}
PAPER_SPEED_RATIO = {"cifarnet": 1.7, "squeezenet": 1.8}
PAPER_ENERGY_RATIO = {"cifarnet": 1.34, "squeezenet": 1.74}


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(RunSpec(name, TX1, ctx.options) for name in ctx.nets(NETWORKS))


def _measure(view: RunView, name: str):
    """(wattsup measurement, pynq run) for one network."""
    meter = WattsupMeter(TX1)
    fpga = PynqZ1Model()
    tx1 = meter.measure(view.run(name, TX1))
    pynq = fpga.run_network(get_network(name))
    return tx1, pynq


def _aggregate(view: RunView) -> dict:
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(NETWORKS):
        tx1, pynq = _measure(view, name)
        energy_ratio = tx1.energy_j / pynq.energy_j
        series[display(name)] = {
            "TX1 (norm energy)": round(energy_ratio, 3),
            "PynQ (norm energy)": 1.0,
            "tx1_peak_w": round(tx1.peak_watts, 2),
            "pynq_peak_w": round(pynq.peak_watts, 2),
            "tx1_time_s": round(tx1.time_s, 4),
            "pynq_time_s": round(pynq.time_s, 4),
        }
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    checks: list[Check] = []
    for name in view.nets(NETWORKS):
        tx1, pynq = _measure(view, name)
        power_ratio = tx1.peak_watts / pynq.peak_watts
        speed_ratio = pynq.time_s / tx1.time_s
        energy_ratio = tx1.energy_j / pynq.energy_j
        checks.append(
            Check(
                f"{display(name)}: TX1 peak power well above PynQ "
                f"(paper {PAPER_POWER_RATIO[name]}x)",
                1.5 <= power_ratio <= 6.0,
                f"measured ratio {power_ratio:.2f}x",
            )
        )
        checks.append(
            Check(
                f"{display(name)}: TX1 finishes faster than PynQ "
                f"(paper {PAPER_SPEED_RATIO[name]}x)",
                1.1 <= speed_ratio <= 4.0,
                f"measured ratio {speed_ratio:.2f}x",
            )
        )
        checks.append(
            Check(
                f"{display(name)}: PynQ is the more energy-efficient platform "
                f"(paper: TX1 uses {PAPER_ENERGY_RATIO[name]}x more energy)",
                energy_ratio > 1.0,
                f"measured TX1/PynQ energy {energy_ratio:.2f}x",
            )
        )
    checks.append(
        Check(
            "SqueezeNet's TX1 energy penalty exceeds CifarNet's (1.74x vs 1.34x)",
            series["SqueezeNet"]["TX1 (norm energy)"]
            > series["CifarNet"]["TX1 (norm energy)"],
            f"{series['SqueezeNet']['TX1 (norm energy)']:.2f} vs "
            f"{series['CifarNet']['TX1 (norm energy)']:.2f}",
        )
    )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="fig06",
        title="Energy on Embedded GPU (TX1) vs Embedded FPGA (PynQ)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
