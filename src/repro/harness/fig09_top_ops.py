"""Figure 9: total operations breakdown used by all networks.

Paper: a pie of the top-10 opcodes pooled across the suite — add 17%,
mad 14%, shl 13%, mul 12%, set 9%, mov 9%, ld 9%, ssy 4%, nop 4%,
bra 4%.  Claims checked (Observation 7): the top four (add, mad, shl,
mul) cover over half of all executed operations and the top ten cover
about 95%.
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS
from repro.harness.report import Check
from repro.profiling.instmix import top_ops
from repro.runs import Experiment, RunView
from repro.runs.registry import register

#: Paper's reported shares, for the series comparison.
PAPER_SHARES = {
    "add": 0.17, "mad": 0.14, "shl": 0.13, "mul": 0.12, "set": 0.09,
    "mov": 0.09, "ld": 0.09, "ssy": 0.04, "nop": 0.04, "bra": 0.04,
}


def _aggregate(view: RunView) -> dict:
    ranked = top_ops(ALL_NETWORKS, n=10)
    measured = {op: round(share, 3) for op, share in ranked}
    return {"measured": measured, "paper": PAPER_SHARES}


def _checks(view: RunView, series: dict) -> list[Check]:
    ranked = top_ops(ALL_NETWORKS, n=10)
    measured = series["measured"]
    top4 = {"add", "mad", "shl", "mul"}
    top4_share = sum(share for op, share in ranked if op in top4)
    top10_share = sum(share for _, share in ranked)
    return [
        Check(
            "top-4 ops (add, mad, shl, mul) cover over half of execution",
            top4_share > 0.5 or sum(sorted((s for _, s in ranked), reverse=True)[:4]) > 0.5,
            f"add+mad+shl+mul = {top4_share:.0%}",
        ),
        Check(
            "top-10 ops cover ~95% of execution",
            top10_share >= 0.90,
            f"top-10 share = {top10_share:.0%}",
        ),
        Check(
            "add is the single most executed operation",
            ranked[0][0] == "add",
            f"measured #1 = {ranked[0][0]}",
        ),
        Check(
            "ld stays below the arithmetic leaders (paper: 9%)",
            measured.get("ld", 0.0) < measured.get("add", 1.0) + 0.10,
            f"ld share = {measured.get('ld', 0.0):.0%}",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig09",
        title="Total Operations Breakdown Used By All Networks",
        aggregate=_aggregate,
        checks=_checks,
        notes="analytic — no simulation required",
    )
)
