"""Figure 8: operation-type breakdown per network.

Paper: dynamic opcode mix of each network.  Claims checked: GRU and
LSTM share one breakdown pattern and the CNNs another; RNNs use add,
ld, mad and set the most; CNNs additionally use shl and mul heavily
(warp-unit index arithmetic).
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS, display
from repro.harness.report import Check
from repro.profiling.instmix import opcode_mix
from repro.runs import Experiment, RunView
from repro.runs.registry import register


def _mixes(view: RunView) -> dict[str, dict[str, float]]:
    return {name: opcode_mix(name) for name in view.nets(ALL_NETWORKS)}


def _aggregate(view: RunView) -> dict:
    series: dict[str, dict[str, float]] = {}
    for name, mix in _mixes(view).items():
        series[display(name)] = {
            op: round(frac, 3)
            for op, frac in sorted(mix.items(), key=lambda kv: -kv[1])
            if frac >= 0.005
        }
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    mixes = _mixes(view)

    def top_ops(name: str, n: int = 4) -> set[str]:
        return set(sorted(mixes[name], key=lambda op: -mixes[name][op])[:n])

    rnn_top = top_ops("gru", 5) | top_ops("lstm", 5)
    return [
        Check(
            "RNNs use add, ld, mad and set the most",
            {"add", "ld", "mad", "set"} <= rnn_top,
            f"GRU/LSTM top ops: {sorted(rnn_top)}",
        ),
        Check(
            "CNNs additionally use shl and mul heavily",
            all(
                mixes[cnn].get("shl", 0) >= 0.04 and mixes[cnn].get("mul", 0) >= 0.04
                for cnn in ("cifarnet", "alexnet", "squeezenet", "resnet", "vggnet")
            ),
            "shl/mul share >= 4% in every CNN",
        ),
        Check(
            "RNNs barely use shl (no warp-unit spatial indexing)",
            max(mixes["gru"].get("shl", 0), mixes["lstm"].get("shl", 0))
            < min(mixes[c].get("shl", 1) for c in ("cifarnet", "alexnet", "resnet")),
            f"GRU shl={mixes['gru'].get('shl', 0):.1%}",
        ),
        Check(
            "GRU and LSTM share one mix pattern; CNNs share another",
            len(top_ops("gru") ^ top_ops("lstm")) <= 2
            and len(top_ops("alexnet") ^ top_ops("vggnet")) <= 2,
            "top-4 opcode sets nearly identical within each family",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig08",
        title="Operation Type Breakdown",
        aggregate=_aggregate,
        checks=_checks,
        render="stack",
        notes="analytic — no simulation required",
    )
)
