"""Figure 12: per-SM register file usage (max allocated vs max live).

Paper: for each network, the maximum registers allocated by the
compiler and the maximum live registers, in KB per SM, on the Pascal
configuration (256 KB register file per SM).  Claims checked
(Observation 10): AlexNet and ResNet allocate over 50% of the register
file while live registers stay a bit lower; all other networks stay
under 100 KB; the RNNs use under ~20 KB; so the register file is
significantly underutilized overall.
"""

from __future__ import annotations

from repro.gpu.occupancy import compute_occupancy
from repro.harness.common import ALL_NETWORKS, display, sim_platform
from repro.harness.report import Check
from repro.isa.program import max_live_registers
from repro.kernels.compile import compiled_network
from repro.kernels.launch import WARP_SIZE
from repro.runs import Experiment, RunView
from repro.runs.registry import register

KB = 1024.0


def register_usage(name: str) -> tuple[float, float]:
    """(max allocated KB, max live KB) over the network's kernels."""
    config = sim_platform()
    alloc_peak = 0.0
    live_peak = 0.0
    for kernel in compiled_network(name):
        occ = compute_occupancy(kernel, config)
        alloc_kb = occ.allocated_register_bytes / KB
        live = max_live_registers(kernel.program).max_live
        live_kb = live * occ.warps * WARP_SIZE * 4 / KB
        alloc_peak = max(alloc_peak, alloc_kb)
        live_peak = max(live_peak, min(live_kb, alloc_kb))
    return alloc_peak, live_peak


def _usage(view: RunView) -> dict[str, tuple[float, float]]:
    return {name: register_usage(name) for name in view.nets(ALL_NETWORKS)}


def _aggregate(view: RunView) -> dict:
    series: dict[str, dict[str, float]] = {}
    for name, (alloc, live) in _usage(view).items():
        series[display(name)] = {
            "Max Allocated Registers (KB)": round(alloc, 1),
            "Max Live Registers (KB)": round(live, 1),
        }
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    usage = _usage(view)
    rf_kb = sim_platform().register_file_bytes_per_sm / KB
    return [
        Check(
            "AlexNet and ResNet allocate over 50% of the 256KB register file",
            usage["alexnet"][0] > rf_kb / 2 and usage["resnet"][0] > rf_kb / 2,
            f"AlexNet={usage['alexnet'][0]:.0f}KB ResNet={usage['resnet'][0]:.0f}KB "
            f"of {rf_kb:.0f}KB",
        ),
        Check(
            "live registers stay below the allocation",
            all(live <= alloc for alloc, live in usage.values()),
            "max-live <= max-allocated for every network",
        ),
        Check(
            "RNNs use a small fraction of the register file (<~20KB)",
            usage["gru"][0] <= 24 and usage["lstm"][0] <= 24,
            f"GRU={usage['gru'][0]:.1f}KB LSTM={usage['lstm'][0]:.1f}KB",
        ),
        Check(
            "the register file is significantly underutilized overall",
            sum(alloc for alloc, _ in usage.values()) / len(usage) < rf_kb,
            f"mean allocation {sum(a for a, _ in usage.values())/len(usage):.0f}KB "
            f"< {rf_kb:.0f}KB",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig12",
        title="Register File Usage in KB (per SM)",
        aggregate=_aggregate,
        checks=_checks,
        notes="analytic — no simulation required",
    )
)
