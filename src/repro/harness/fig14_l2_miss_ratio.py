"""Figure 14: L2 miss *ratio* per layer type with the L1D bypassed.

Paper: conv layers have far lower L2 miss ratios (average under ~1%)
than fully-connected layers (~10%) despite their high absolute miss
counts — i.e. convolution has high data locality (Observation 11), so
on-chip memory mainly helps convolution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.gpu.config import SimOptions
from repro.harness.common import CNNS, display, sim_platform
from repro.harness.report import Check
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _options(base: SimOptions) -> SimOptions:
    # Full (unsampled) per-thread outer loops: cache reuse across a
    # thread's outputs is part of what this figure measures, so the
    # outer-loop sampling budget is lifted for these runs.
    return replace(base, max_outer_trips=None)


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    platform = sim_platform().with_l1(0)
    return tuple(
        RunSpec(name, platform, _options(ctx.options)) for name in ctx.nets(CNNS)
    )


def _ratios(view: RunView) -> dict[str, dict[str, float]]:
    platform = sim_platform().with_l1(0)
    out: dict[str, dict[str, float]] = {}
    for name in view.nets(CNNS):
        result = view.run(name, platform, _options(view.ctx.options))
        out[name] = {
            cat: stats.l2_miss_ratio
            for cat, stats in result.stats_by_category().items()
            if stats.l2_accesses > 0
        }
    return out


def _aggregate(view: RunView) -> dict:
    return {
        display(name): {cat: round(v, 4) for cat, v in per_cat.items()}
        for name, per_cat in _ratios(view).items()
    }


def _checks(view: RunView, series: dict) -> list[Check]:
    ratios = _ratios(view)
    conv_ratios = [r["Conv"] for r in ratios.values() if "Conv" in r]
    fc_ratios = [r["FC"] for r in ratios.values() if "FC" in r]
    conv_avg = sum(conv_ratios) / len(conv_ratios)
    fc_avg = sum(fc_ratios) / len(fc_ratios)
    fire_low = all(
        ratios["squeezenet"].get(cat, 0.0)
        <= max(3.0 * ratios["squeezenet"].get("Conv", 1.0), 0.06)
        for cat in ("Fire_Squeeze", "Fire_Expand")
    )
    return [
        Check(
            "conv L2 miss ratio is around 1% on average",
            conv_avg <= 0.04,
            f"average conv miss ratio = {conv_avg:.2%}",
        ),
        Check(
            "FC miss ratio (paper ~10%) is an order of magnitude above conv",
            fc_avg >= 4 * conv_avg,
            f"FC avg = {fc_avg:.1%} vs conv avg = {conv_avg:.2%}",
        ),
        Check(
            "convolution has the lowest miss ratio class in SqueezeNet/ResNet",
            ratios["resnet"].get("Conv", 1.0)
            <= min(v for c, v in ratios["resnet"].items() if c != "Conv") + 0.02
            and fire_low,
            "conv/fire locality beats the elementwise layers",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig14",
        title="L2 Miss Ratio per Layer Type without L1D",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
