"""Figure 14: L2 miss *ratio* per layer type with the L1D bypassed.

Paper: conv layers have far lower L2 miss ratios (average under ~1%)
than fully-connected layers (~10%) despite their high absolute miss
counts — i.e. convolution has high data locality (Observation 11), so
on-chip memory mainly helps convolution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.common import CNNS, default_options, display, sim_platform
from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner


def run(runner: Runner) -> ExperimentResult:
    """Regenerate Figure 14 (No-L1 simulation)."""
    platform = sim_platform().with_l1(0)
    # Full (unsampled) per-thread outer loops: cache reuse across a
    # thread's outputs is part of what this figure measures, so the
    # outer-loop sampling budget is lifted for these runs.
    options = replace(default_options(), max_outer_trips=None)
    series: dict[str, dict[str, float]] = {}
    ratios: dict[str, dict[str, float]] = {}
    for name in CNNS:
        result = runner.run(name, platform, options)
        per_cat = {
            cat: stats.l2_miss_ratio
            for cat, stats in result.stats_by_category().items()
            if stats.l2_accesses > 0
        }
        ratios[name] = per_cat
        series[display(name)] = {cat: round(v, 4) for cat, v in per_cat.items()}

    conv_ratios = [r["Conv"] for r in ratios.values() if "Conv" in r]
    fc_ratios = [r["FC"] for r in ratios.values() if "FC" in r]
    conv_avg = sum(conv_ratios) / len(conv_ratios)
    fc_avg = sum(fc_ratios) / len(fc_ratios)
    fire_low = all(
        ratios["squeezenet"].get(cat, 0.0)
        <= max(3.0 * ratios["squeezenet"].get("Conv", 1.0), 0.06)
        for cat in ("Fire_Squeeze", "Fire_Expand")
    )
    checks = [
        Check(
            "conv L2 miss ratio is around 1% on average",
            conv_avg <= 0.04,
            f"average conv miss ratio = {conv_avg:.2%}",
        ),
        Check(
            "FC miss ratio (paper ~10%) is an order of magnitude above conv",
            fc_avg >= 4 * conv_avg,
            f"FC avg = {fc_avg:.1%} vs conv avg = {conv_avg:.2%}",
        ),
        Check(
            "convolution has the lowest miss ratio class in SqueezeNet/ResNet",
            ratios["resnet"].get("Conv", 1.0)
            <= min(v for c, v in ratios["resnet"].items() if c != "Conv") + 0.02
            and fire_low,
            "conv/fire locality beats the elementwise layers",
        ),
    ]
    return ExperimentResult(
        exp_id="fig14",
        title="L2 Miss Ratio per Layer Type without L1D",
        series=series,
        checks=checks,
    )
