"""Figure 3: peak power consumption across layers, per network.

Paper: the maximum power ever measured while running each network
(GPUWattch over GPGPU-Sim).  Claims checked: peak power correlates with
layer size — networks with larger layers (AlexNet, ResNet) peak higher
(Observation 3), with AlexNet's peak around 5x CifarNet's.
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS, default_options, display, sim_platform
from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner
from repro.power.gpuwattch import GpuWattchModel


def run(runner: Runner) -> ExperimentResult:
    """Regenerate Figure 3."""
    platform = sim_platform()
    model = GpuWattchModel(platform)
    peaks: dict[str, float] = {}
    for name in ALL_NETWORKS:
        result = runner.run(name, platform, default_options())
        peaks[display(name)] = round(model.peak_power(result), 1)

    checks = [
        Check(
            "networks with larger layers peak higher (AlexNet > CifarNet)",
            peaks["AlexNet"] > peaks["CifarNet"],
            f"AlexNet={peaks['AlexNet']}W CifarNet={peaks['CifarNet']}W",
        ),
        Check(
            "AlexNet peak is roughly 5x CifarNet peak",
            3.0 <= peaks["AlexNet"] / peaks["CifarNet"] <= 8.0,
            f"ratio = {peaks['AlexNet'] / peaks['CifarNet']:.2f}",
        ),
        Check(
            "ResNet is among the highest-peak networks",
            peaks["ResNet"] >= sorted(peaks.values())[-3],
            f"ResNet={peaks['ResNet']}W",
        ),
        Check(
            "RNNs peak lower than every large CNN",
            max(peaks["GRU"], peaks["LSTM"])
            < min(peaks["AlexNet"], peaks["ResNet"], peaks["VGGNet"]),
            f"GRU={peaks['GRU']}W LSTM={peaks['LSTM']}W",
        ),
    ]
    return ExperimentResult(
        exp_id="fig03",
        title="Peak Power Consumption Across Layers (W)",
        series={"peak_watts": peaks},
        checks=checks,
    )
