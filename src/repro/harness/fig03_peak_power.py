"""Figure 3: peak power consumption across layers, per network.

Paper: the maximum power ever measured while running each network
(GPUWattch over GPGPU-Sim).  Claims checked: peak power correlates with
layer size — networks with larger layers (AlexNet, ResNet) peak higher
(Observation 3), with AlexNet's peak around 5x CifarNet's.
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS, display, sim_platform
from repro.harness.report import Check
from repro.power.gpuwattch import GpuWattchModel
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(
        RunSpec(name, sim_platform(), ctx.options) for name in ctx.nets(ALL_NETWORKS)
    )


def _aggregate(view: RunView) -> dict:
    platform = sim_platform()
    model = GpuWattchModel(platform)
    peaks: dict[str, float] = {}
    for name in view.nets(ALL_NETWORKS):
        result = view.run(name, platform)
        peaks[display(name)] = round(model.peak_power(result), 1)
    return {"peak_watts": peaks}


def _checks(view: RunView, series: dict) -> list[Check]:
    peaks = series["peak_watts"]
    return [
        Check(
            "networks with larger layers peak higher (AlexNet > CifarNet)",
            peaks["AlexNet"] > peaks["CifarNet"],
            f"AlexNet={peaks['AlexNet']}W CifarNet={peaks['CifarNet']}W",
        ),
        Check(
            "AlexNet peak is roughly 5x CifarNet peak",
            3.0 <= peaks["AlexNet"] / peaks["CifarNet"] <= 8.0,
            f"ratio = {peaks['AlexNet'] / peaks['CifarNet']:.2f}",
        ),
        Check(
            "ResNet is among the highest-peak networks",
            peaks["ResNet"] >= sorted(peaks.values())[-3],
            f"ResNet={peaks['ResNet']}W",
        ),
        Check(
            "RNNs peak lower than every large CNN",
            max(peaks["GRU"], peaks["LSTM"])
            < min(peaks["AlexNet"], peaks["ResNet"], peaks["VGGNet"]),
            f"GRU={peaks['GRU']}W LSTM={peaks['LSTM']}W",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig03",
        title="Peak Power Consumption Across Layers (W)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
