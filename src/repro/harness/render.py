"""Terminal rendering of experiment results: bar charts and stacks.

The paper's figures are bar charts; this module renders the harness's
series as unicode bar charts so a full reproduction can be *seen* in a
terminal without a plotting stack:

    python -m repro.harness.suite fig02 --chart
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.harness.report import ExperimentResult

#: Width of the bar area in characters.
BAR_WIDTH = 44
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, peak: float, width: int = BAR_WIDTH) -> str:
    """A unicode bar scaled so *peak* fills *width* characters."""
    if peak <= 0:
        return ""
    cells = value / peak * width
    full = int(cells)
    frac = int((cells - full) * (len(_BLOCKS) - 1))
    return "█" * full + (_BLOCKS[frac] if frac else "")


def _numeric_items(data: Mapping[str, Any]) -> list[tuple[str, float]]:
    out = []
    for key, value in data.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append((str(key), float(value)))
    return out


def render_series(label: str, data: Mapping[str, Any], log_note: bool = False) -> str:
    """Render one flat series as a labelled bar chart."""
    items = _numeric_items(data)
    if not items:
        return ""
    peak = max(value for _, value in items) or 1.0
    key_width = max(len(key) for key, _ in items)
    lines = [f"{label}:"]
    for key, value in items:
        lines.append(f"  {key:<{key_width}} {_bar(value, peak)} {value:g}")
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Render every chartable series of *result*.

    Flat numeric series ({name: value}) render directly; nested series
    ({group: {name: value}}) render one chart per group.
    """
    sections = [f"### {result.exp_id}: {result.title}"]
    for label, data in result.series.items():
        if not isinstance(data, Mapping):
            continue
        items = _numeric_items(data)
        if items:
            sections.append(render_series(label, data))
            continue
        # Nested: one chart per sub-mapping (e.g. per-network breakdowns).
        for group, sub in data.items():
            if isinstance(sub, Mapping) and _numeric_items(sub):
                sections.append(render_series(f"{label} / {group}", sub))
    return "\n\n".join(section for section in sections if section)
