"""Shared helpers for the experiment harness modules."""

from __future__ import annotations

from dataclasses import replace

from repro.core.suite import BENCHMARK_INFO, CNN_BREAKDOWN_ORDER, NETWORK_ORDER
from repro.gpu.config import GpuConfig, SimOptions
from repro.platforms import GK210, GP102, TX1

#: Display labels in figure order.
def display(name: str) -> str:
    """Paper-style display name of a network."""
    return BENCHMARK_INFO[name].display_name


#: Networks plotted in the per-layer-type CNN figures (1, 4, 13, 14).
CNNS = CNN_BREAKDOWN_ORDER
#: All seven networks in figure order.
ALL_NETWORKS = NETWORK_ORDER

#: Layer-type ordering used across the stacked figures.
CATEGORY_ORDER = (
    "Conv",
    "Pooling",
    "FC",
    "Norm",
    "Fire_Squeeze",
    "Fire_Expand",
    "Eltwise",
    "Scale",
    "Relu",
    "Others",
    "GRU",
    "LSTM",
)

KB = 1024

#: The Figure 2 sweep: Pascal's default L1D is 64 KB.
L1_SWEEP = (("No L1", 0), ("L1", 64 * KB), ("2xL1", 128 * KB), ("4xL1", 256 * KB))

#: The Figure 15/16 scheduler sweep (GTO is GPGPU-Sim's default).
SCHEDULERS = ("gto", "lrr", "tlv")


def sim_platform() -> GpuConfig:
    """The architecture-simulator platform (GPGPU-Sim Pascal GP102)."""
    return GP102


def default_options() -> SimOptions:
    """Default simulation options shared by the harness."""
    return SimOptions()


def harness_combos() -> list[tuple[str, GpuConfig, SimOptions]]:
    """Every unique (network, config, options) the full suite simulates.

    Canonical order — networks in figure order, then each network's
    sweeps — so a parallel prefetch (``Runner.prefetch``) populates the
    cache deterministically regardless of worker completion order.
    Covers Figures 1-5 and 8-12 (GP102 defaults, inside the L1 sweep),
    Figure 2 (L1 sweep), Figure 7 (GK210), Figures 15-16 (schedulers),
    Figures 13-14 (No-L1, unsampled outer loops) and Figure 6 (TX1).
    """
    platform = sim_platform()
    opts = default_options()
    combos: list[tuple[str, GpuConfig, SimOptions]] = []
    for name in ALL_NETWORKS:
        for _, l1_size in L1_SWEEP:
            combos.append((name, platform.with_l1(l1_size), opts))
        for scheduler in SCHEDULERS:
            if scheduler != opts.scheduler:
                combos.append((name, platform, replace(opts, scheduler=scheduler)))
        combos.append((name, GK210, opts))
    full_outer = replace(opts, max_outer_trips=None)
    for name in CNNS:
        combos.append((name, platform.with_l1(0), full_outer))
    for name in ("cifarnet", "squeezenet"):
        combos.append((name, TX1, opts))
    return combos
