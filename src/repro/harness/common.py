"""Shared helpers for the experiment harness modules."""

from __future__ import annotations

from repro.core.suite import BENCHMARK_INFO, CNN_BREAKDOWN_ORDER, NETWORK_ORDER
from repro.gpu.config import GpuConfig, SimOptions
from repro.platforms import GP102

#: Display labels in figure order.
def display(name: str) -> str:
    """Paper-style display name of a network."""
    return BENCHMARK_INFO[name].display_name


#: Networks plotted in the per-layer-type CNN figures (1, 4, 13, 14).
CNNS = CNN_BREAKDOWN_ORDER
#: All seven networks in figure order.
ALL_NETWORKS = NETWORK_ORDER

#: Layer-type ordering used across the stacked figures.
CATEGORY_ORDER = (
    "Conv",
    "Pooling",
    "FC",
    "Norm",
    "Fire_Squeeze",
    "Fire_Expand",
    "Eltwise",
    "Scale",
    "Relu",
    "Others",
    "GRU",
    "LSTM",
)

KB = 1024

#: The Figure 2 sweep: Pascal's default L1D is 64 KB.
L1_SWEEP = (("No L1", 0), ("L1", 64 * KB), ("2xL1", 128 * KB), ("4xL1", 256 * KB))

#: The Figure 15/16 scheduler sweep (GTO is GPGPU-Sim's default).
SCHEDULERS = ("gto", "lrr", "tlv")


def sim_platform() -> GpuConfig:
    """The architecture-simulator platform (GPGPU-Sim Pascal GP102)."""
    return GP102


def default_options() -> SimOptions:
    """Default simulation options shared by the harness."""
    return SimOptions()


def harness_combos() -> list[tuple[str, GpuConfig, SimOptions]]:
    """Every unique (network, config, options) the full suite simulates.

    A thin wrapper over the planner: the registered experiments declare
    their required runs, :func:`repro.runs.planner.build_plan` dedupes
    them, and this returns the unique matrix in canonical plan order.
    Covers Figures 1-5 and 8-12 (GP102 defaults, inside the L1 sweep),
    Figure 2 (L1 sweep), Figure 7 (GK210), Figures 15-16 (schedulers),
    Figures 13-14 (No-L1, unsampled outer loops) and Figure 6 (TX1).
    """
    # Imported here: the registry imports the experiment modules, which
    # import this module for the shared sweep constants.
    from repro.runs.planner import build_plan
    from repro.runs.registry import all_experiments

    plan = build_plan(all_experiments().values())
    return [(spec.network, spec.config, spec.options) for spec in plan.specs]
