"""Shared helpers for the experiment harness modules."""

from __future__ import annotations

from repro.core.suite import BENCHMARK_INFO, CNN_BREAKDOWN_ORDER, NETWORK_ORDER
from repro.gpu.config import GpuConfig, SimOptions
from repro.platforms import GP102

#: Display labels in figure order.
def display(name: str) -> str:
    """Paper-style display name of a network."""
    return BENCHMARK_INFO[name].display_name


#: Networks plotted in the per-layer-type CNN figures (1, 4, 13, 14).
CNNS = CNN_BREAKDOWN_ORDER
#: All seven networks in figure order.
ALL_NETWORKS = NETWORK_ORDER

#: Layer-type ordering used across the stacked figures.
CATEGORY_ORDER = (
    "Conv",
    "Pooling",
    "FC",
    "Norm",
    "Fire_Squeeze",
    "Fire_Expand",
    "Eltwise",
    "Scale",
    "Relu",
    "Others",
    "GRU",
    "LSTM",
)

KB = 1024

#: The Figure 2 sweep: Pascal's default L1D is 64 KB.
L1_SWEEP = (("No L1", 0), ("L1", 64 * KB), ("2xL1", 128 * KB), ("4xL1", 256 * KB))

#: The Figure 15/16 scheduler sweep (GTO is GPGPU-Sim's default).
SCHEDULERS = ("gto", "lrr", "tlv")


def sim_platform() -> GpuConfig:
    """The architecture-simulator platform (GPGPU-Sim Pascal GP102)."""
    return GP102


def default_options() -> SimOptions:
    """Default simulation options shared by the harness."""
    return SimOptions()
