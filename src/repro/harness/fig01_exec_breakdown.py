"""Figure 1: execution-time breakdown with respect to layer type.

Paper: stacked-percentage bars for CifarNet, AlexNet, SqueezeNet and
ResNet on the GPGPU-Sim platform.  Claims checked: convolution is the
most time-consuming layer type of every CNN (Observation 1); CifarNet
and ResNet spend over 90% of their time in convolution; SqueezeNet's
fire-expand layers outweigh its plain convolutions while its single
longest kernel is still conv10.
"""

from __future__ import annotations

from repro.harness.common import CNNS, default_options, display, sim_platform
from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner


def run(runner: Runner) -> ExperimentResult:
    """Regenerate Figure 1."""
    series: dict[str, dict[str, float]] = {}
    checks: list[Check] = []
    conv10_note = ""
    for name in CNNS:
        result = runner.run(name, sim_platform(), default_options())
        by_cat = result.cycles_by_category()
        total = sum(by_cat.values())
        fractions = {cat: cycles / total for cat, cycles in by_cat.items()}
        series[display(name)] = {cat: round(frac, 4) for cat, frac in fractions.items()}

        conv_like = fractions.get("Conv", 0.0)
        if name == "squeezenet":
            conv_like += fractions.get("Fire_Squeeze", 0.0) + fractions.get("Fire_Expand", 0.0)
        checks.append(
            Check(
                f"{display(name)}: convolution-class layers dominate execution time",
                conv_like == max(
                    conv_like,
                    *(frac for cat, frac in fractions.items()
                      if cat not in ("Conv", "Fire_Squeeze", "Fire_Expand")),
                )
                and conv_like > 0.5,
                f"conv-class share = {conv_like:.0%}",
            )
        )
        if name in ("cifarnet", "resnet"):
            checks.append(
                Check(
                    f"{display(name)}: over 90% of time in convolution layers",
                    fractions.get("Conv", 0.0) > 0.90,
                    f"conv share = {fractions.get('Conv', 0.0):.1%}",
                )
            )
        if name == "squeezenet":
            checks.append(
                Check(
                    "SqueezeNet: fire-expand layers take more time than plain conv",
                    fractions.get("Fire_Expand", 0.0) > fractions.get("Conv", 0.0),
                    f"expand={fractions.get('Fire_Expand', 0.0):.0%} "
                    f"conv={fractions.get('Conv', 0.0):.0%}",
                )
            )
            longest = max(result.kernels, key=lambda k: k.stats.cycles)
            conv10_note = f"longest SqueezeNet kernel: {longest.kernel.name}"
            checks.append(
                Check(
                    "SqueezeNet: the single longest kernel is conv10",
                    longest.kernel.node_name == "conv10",
                    conv10_note,
                )
            )
    return ExperimentResult(
        exp_id="fig01",
        title="Execution Time Breakdown w.r.t. Layer Type",
        series=series,
        checks=checks,
    )
