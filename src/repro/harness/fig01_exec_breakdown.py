"""Figure 1: execution-time breakdown with respect to layer type.

Paper: stacked-percentage bars for CifarNet, AlexNet, SqueezeNet and
ResNet on the GPGPU-Sim platform.  Claims checked: convolution is the
most time-consuming layer type of every CNN (Observation 1); CifarNet
and ResNet spend over 90% of their time in convolution; SqueezeNet's
fire-expand layers outweigh its plain convolutions while its single
longest kernel is still conv10.
"""

from __future__ import annotations

from repro.harness.common import CNNS, display, sim_platform
from repro.harness.report import Check
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(RunSpec(name, sim_platform(), ctx.options) for name in ctx.nets(CNNS))


def _fractions(view: RunView, name: str) -> dict[str, float]:
    result = view.run(name, sim_platform())
    by_cat = result.cycles_by_category()
    total = sum(by_cat.values())
    return {cat: cycles / total for cat, cycles in by_cat.items()}


def _aggregate(view: RunView) -> dict:
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(CNNS):
        fractions = _fractions(view, name)
        series[display(name)] = {cat: round(frac, 4) for cat, frac in fractions.items()}
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    checks: list[Check] = []
    for name in view.nets(CNNS):
        fractions = _fractions(view, name)
        conv_like = fractions.get("Conv", 0.0)
        if name == "squeezenet":
            conv_like += fractions.get("Fire_Squeeze", 0.0) + fractions.get("Fire_Expand", 0.0)
        checks.append(
            Check(
                f"{display(name)}: convolution-class layers dominate execution time",
                conv_like == max(
                    conv_like,
                    *(frac for cat, frac in fractions.items()
                      if cat not in ("Conv", "Fire_Squeeze", "Fire_Expand")),
                )
                and conv_like > 0.5,
                f"conv-class share = {conv_like:.0%}",
            )
        )
        if name in ("cifarnet", "resnet"):
            checks.append(
                Check(
                    f"{display(name)}: over 90% of time in convolution layers",
                    fractions.get("Conv", 0.0) > 0.90,
                    f"conv share = {fractions.get('Conv', 0.0):.1%}",
                )
            )
        if name == "squeezenet":
            checks.append(
                Check(
                    "SqueezeNet: fire-expand layers take more time than plain conv",
                    fractions.get("Fire_Expand", 0.0) > fractions.get("Conv", 0.0),
                    f"expand={fractions.get('Fire_Expand', 0.0):.0%} "
                    f"conv={fractions.get('Conv', 0.0):.0%}",
                )
            )
            result = view.run(name, sim_platform())
            longest = max(result.kernels, key=lambda k: k.stats.cycles)
            checks.append(
                Check(
                    "SqueezeNet: the single longest kernel is conv10",
                    longest.kernel.node_name == "conv10",
                    f"longest SqueezeNet kernel: {longest.kernel.name}",
                )
            )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="fig01",
        title="Execution Time Breakdown w.r.t. Layer Type",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
        render="stack",
    )
)
