"""Figure 13: total L2 misses per layer type with the L1D bypassed.

Paper: log-scale total L2 misses per layer type of the four CNNs with
no L1D.  Claims checked: convolution and fully-connected layers are the
most data-intensive (highest L2 miss counts); in CifarNet the FC miss
count is comparable to conv; in AlexNet the FC layers out-miss conv.
"""

from __future__ import annotations

from dataclasses import replace

from repro.gpu.config import SimOptions
from repro.harness.common import CNNS, display, sim_platform
from repro.harness.report import Check
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _options(base: SimOptions) -> SimOptions:
    # Full (unsampled) per-thread outer loops: cache reuse across a
    # thread's outputs is part of what this figure measures, so the
    # outer-loop sampling budget is lifted for these runs.
    return replace(base, max_outer_trips=None)


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    platform = sim_platform().with_l1(0)
    return tuple(
        RunSpec(name, platform, _options(ctx.options)) for name in ctx.nets(CNNS)
    )


def _misses(view: RunView) -> dict[str, dict[str, float]]:
    platform = sim_platform().with_l1(0)
    out: dict[str, dict[str, float]] = {}
    for name in view.nets(CNNS):
        result = view.run(name, platform, _options(view.ctx.options))
        out[name] = {
            cat: stats.l2_misses for cat, stats in result.stats_by_category().items()
        }
    return out


def _aggregate(view: RunView) -> dict:
    return {
        display(name): {cat: round(v, 0) for cat, v in per_cat.items()}
        for name, per_cat in _misses(view).items()
    }


def _checks(view: RunView, series: dict) -> list[Check]:
    misses = _misses(view)

    def top2(name: str) -> list[str]:
        cats = misses[name]
        return sorted(cats, key=lambda c: -cats[c])[:2]

    return [
        Check(
            "conv and FC are the most data-intensive layer types (CifarNet)",
            set(top2("cifarnet")) <= {"Conv", "FC", "Pooling"}
            and "Conv" in top2("cifarnet"),
            f"CifarNet top-2 by misses: {top2('cifarnet')}",
        ),
        Check(
            "AlexNet FC layers show comparable-or-greater L2 misses than conv",
            misses["alexnet"].get("FC", 0) >= 0.3 * misses["alexnet"].get("Conv", 1),
            f"FC={misses['alexnet'].get('FC', 0):.2e} "
            f"Conv={misses['alexnet'].get('Conv', 0):.2e}",
        ),
        Check(
            "ResNet non-conv layers miss comparably to its conv layers",
            sum(v for c, v in misses["resnet"].items() if c != "Conv")
            >= 0.3 * misses["resnet"].get("Conv", 1),
            "shortcut/normalization traffic is substantial",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig13",
        title="Total L2 Misses per Layer Type without L1D",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
