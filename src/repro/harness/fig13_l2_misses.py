"""Figure 13: total L2 misses per layer type with the L1D bypassed.

Paper: log-scale total L2 misses per layer type of the four CNNs with
no L1D.  Claims checked: convolution and fully-connected layers are the
most data-intensive (highest L2 miss counts); in CifarNet the FC miss
count is comparable to conv; in AlexNet the FC layers out-miss conv.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.common import CNNS, default_options, display, sim_platform
from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner


def run(runner: Runner) -> ExperimentResult:
    """Regenerate Figure 13 (No-L1 simulation)."""
    platform = sim_platform().with_l1(0)
    # Full (unsampled) per-thread outer loops: cache reuse across a
    # thread's outputs is part of what this figure measures, so the
    # outer-loop sampling budget is lifted for these runs.
    options = replace(default_options(), max_outer_trips=None)
    series: dict[str, dict[str, float]] = {}
    misses: dict[str, dict[str, float]] = {}
    for name in CNNS:
        result = runner.run(name, platform, options)
        per_cat = {
            cat: stats.l2_misses for cat, stats in result.stats_by_category().items()
        }
        misses[name] = per_cat
        series[display(name)] = {cat: round(v, 0) for cat, v in per_cat.items()}

    def top2(name: str) -> list[str]:
        cats = misses[name]
        return sorted(cats, key=lambda c: -cats[c])[:2]

    checks = [
        Check(
            "conv and FC are the most data-intensive layer types (CifarNet)",
            set(top2("cifarnet")) <= {"Conv", "FC", "Pooling"}
            and "Conv" in top2("cifarnet"),
            f"CifarNet top-2 by misses: {top2('cifarnet')}",
        ),
        Check(
            "AlexNet FC layers show comparable-or-greater L2 misses than conv",
            misses["alexnet"].get("FC", 0) >= 0.3 * misses["alexnet"].get("Conv", 1),
            f"FC={misses['alexnet'].get('FC', 0):.2e} "
            f"Conv={misses['alexnet'].get('Conv', 0):.2e}",
        ),
        Check(
            "ResNet non-conv layers miss comparably to its conv layers",
            sum(v for c, v in misses["resnet"].items() if c != "Conv")
            >= 0.3 * misses["resnet"].get("Conv", 1),
            "shortcut/normalization traffic is substantial",
        ),
    ]
    return ExperimentResult(
        exp_id="fig13",
        title="Total L2 Misses per Layer Type without L1D",
        series=series,
        checks=checks,
    )
