"""Figure 16: per-layer warp-scheduler sensitivity of AlexNet.

Paper: normalized execution time per AlexNet layer under GTO/LRR/TLV.
Claim checked: LRR's whole-network win comes mainly from the
convolution layers (high data locality means data returns quickly from
cache, so LRR's lack of ready/pending queue shuffling pays off).
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.common import SCHEDULERS, sim_platform
from repro.harness.report import Check
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext

NETWORK = "alexnet"


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    platform = sim_platform()
    return tuple(
        RunSpec(name, platform, replace(ctx.options, scheduler=scheduler))
        for name in ctx.nets((NETWORK,))
        for scheduler in SCHEDULERS
    )


def _per_sched(view: RunView) -> dict[str, dict[str, float]]:
    platform = sim_platform()
    per_sched: dict[str, dict[str, float]] = {}
    for scheduler in SCHEDULERS:
        options = replace(view.ctx.options, scheduler=scheduler)
        result = view.run(NETWORK, platform, options)
        per_node: dict[str, float] = {}
        for k in result.kernels:
            per_node[k.kernel.node_name] = per_node.get(k.kernel.node_name, 0.0) + k.stats.cycles
        per_sched[scheduler] = per_node
    return per_sched


def _aggregate(view: RunView) -> dict:
    if NETWORK not in view.nets((NETWORK,)):
        return {}
    per_sched = _per_sched(view)
    series: dict[str, dict[str, float]] = {}
    for node, gto_cycles in per_sched["gto"].items():
        series[node] = {
            s.upper(): round(per_sched[s][node] / gto_cycles, 4) for s in SCHEDULERS
        }
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    per_sched = _per_sched(view)
    conv_nodes = [n for n in series if n.startswith("conv")]
    conv_gain = sum(1.0 - series[n]["LRR"] for n in conv_nodes) / len(conv_nodes)
    pool_nodes = [n for n in series if n.startswith("pool")]
    pool_gain = sum(1.0 - series[n]["LRR"] for n in pool_nodes) / len(pool_nodes)
    total_gto = sum(per_sched["gto"].values())
    conv_contrib = sum(
        per_sched["gto"][n] - per_sched["lrr"][n] for n in conv_nodes
    )
    total_saved = total_gto - sum(per_sched["lrr"].values())
    return [
        Check(
            "convolution layers improve under LRR",
            conv_gain > 0.03,
            f"mean conv improvement = {conv_gain:.1%}",
        ),
        Check(
            "LRR's win is acquired mainly in the convolution layers",
            total_saved > 0 and conv_contrib >= 0.5 * total_saved,
            f"conv contributes {conv_contrib / max(total_saved, 1e-9):.0%} of the savings",
        ),
        Check(
            "dependency-bound pooling layers benefit least from LRR",
            pool_gain <= conv_gain,
            f"pooling mean improvement = {pool_gain:.1%} vs conv {conv_gain:.1%}",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig16",
        title="Per-Layer Warp Scheduler Sensitivity of AlexNet",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
    )
)
