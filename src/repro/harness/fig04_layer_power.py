"""Figure 4: average power consumption per layer type.

Paper: stacked-percentage power shares per layer type for the four
CNNs.  Claim checked (Observation 4): although convolution dominates
execution *time*, per-layer-type average *power* is far more balanced —
e.g. CifarNet's pooling layers draw power comparable to its convolution
layers — because every layer type pays cache and memory access energy.
"""

from __future__ import annotations

from repro.harness.common import CNNS, display, sim_platform
from repro.harness.report import Check
from repro.power.gpuwattch import GpuWattchModel
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(RunSpec(name, sim_platform(), ctx.options) for name in ctx.nets(CNNS))


def _conv_balance(view: RunView, name: str) -> tuple[float, float]:
    """(conv time share, conv power share), unrounded."""
    platform = sim_platform()
    model = GpuWattchModel(platform)
    result = view.run(name, platform)
    watts = model.category_power(result)
    total = sum(watts.values())
    time_by_cat = result.cycles_by_category()
    time_total = sum(time_by_cat.values())
    return (
        time_by_cat.get("Conv", 0.0) / time_total,
        watts.get("Conv", 0.0) / total,
    )


def _aggregate(view: RunView) -> dict:
    platform = sim_platform()
    model = GpuWattchModel(platform)
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(CNNS):
        result = view.run(name, platform)
        watts = model.category_power(result)
        total = sum(watts.values())
        series[display(name)] = {cat: round(w / total, 4) for cat, w in watts.items()}
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    checks = []
    for name in view.nets(CNNS):
        conv_time_share, conv_power_share = _conv_balance(view, name)
        checks.append(
            Check(
                f"{display(name)}: power is more balanced across layer types than time",
                conv_power_share < conv_time_share,
                f"conv time share={conv_time_share:.0%} vs power share={conv_power_share:.0%}",
            )
        )
    cifar = series["CifarNet"]
    checks.append(
        Check(
            "CifarNet: pooling power is comparable to convolution power",
            cifar.get("Pooling", 0.0) >= 0.4 * cifar.get("Conv", 1.0),
            f"pool={cifar.get('Pooling', 0.0):.0%} conv={cifar.get('Conv', 0.0):.0%}",
        )
    )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="fig04",
        title="Average Power Consumption per Layer Type (shares)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
        render="stack",
    )
)
