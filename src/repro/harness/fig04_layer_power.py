"""Figure 4: average power consumption per layer type.

Paper: stacked-percentage power shares per layer type for the four
CNNs.  Claim checked (Observation 4): although convolution dominates
execution *time*, per-layer-type average *power* is far more balanced —
e.g. CifarNet's pooling layers draw power comparable to its convolution
layers — because every layer type pays cache and memory access energy.
"""

from __future__ import annotations

from repro.harness.common import CNNS, default_options, display, sim_platform
from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner
from repro.power.gpuwattch import GpuWattchModel


def run(runner: Runner) -> ExperimentResult:
    """Regenerate Figure 4."""
    platform = sim_platform()
    model = GpuWattchModel(platform)
    series: dict[str, dict[str, float]] = {}
    balance: dict[str, tuple[float, float]] = {}
    for name in CNNS:
        result = runner.run(name, platform, default_options())
        watts = model.category_power(result)
        total = sum(watts.values())
        series[display(name)] = {cat: round(w / total, 4) for cat, w in watts.items()}
        time_by_cat = result.cycles_by_category()
        time_total = sum(time_by_cat.values())
        conv_time_share = time_by_cat.get("Conv", 0.0) / time_total
        conv_power_share = watts.get("Conv", 0.0) / total
        balance[name] = (conv_time_share, conv_power_share)

    checks = []
    for name in CNNS:
        conv_time_share, conv_power_share = balance[name]
        checks.append(
            Check(
                f"{display(name)}: power is more balanced across layer types than time",
                conv_power_share < conv_time_share,
                f"conv time share={conv_time_share:.0%} vs power share={conv_power_share:.0%}",
            )
        )
    cifar = series["CifarNet"]
    checks.append(
        Check(
            "CifarNet: pooling power is comparable to convolution power",
            cifar.get("Pooling", 0.0) >= 0.4 * cifar.get("Conv", 1.0),
            f"pool={cifar.get('Pooling', 0.0):.0%} conv={cifar.get('Conv', 0.0):.0%}",
        )
    )
    return ExperimentResult(
        exp_id="fig04",
        title="Average Power Consumption per Layer Type (shares)",
        series=series,
        checks=checks,
    )
