"""Figure 11: maximum device memory usage per network (TX1, nvprof).

Paper: log-scale footprint in KB for GRU, LSTM, CifarNet, AlexNet,
SqueezeNet and ResNet.  Claims checked (Observation 9): the RNNs use
under 500 KB (small enough for a PynQ-class device) while every CNN
needs at least 1 MB; footprint tracks pre-trained model size.
"""

from __future__ import annotations

from repro.harness.report import Check
from repro.profiling.memfootprint import footprint
from repro.runs import Experiment, RunView
from repro.runs.registry import register

#: Figure 11 plots these six networks.
NETWORKS = ("gru", "lstm", "cifarnet", "alexnet", "squeezenet", "resnet")

#: Reference pre-trained model sizes (MB) of the Table I artifacts.
REFERENCE_MODEL_MB = {
    "alexnet": 244,
    "squeezenet": 4.8,
    "resnet": 98,
}


def _aggregate(view: RunView) -> dict:
    reports = {name: footprint(name) for name in NETWORKS}
    return {
        "footprint_kb": {name: round(rep.total_kb, 1) for name, rep in reports.items()}
    }


def _checks(view: RunView, series: dict) -> list[Check]:
    reports = {name: footprint(name) for name in NETWORKS}
    checks = [
        Check(
            "GRU and LSTM fit in under 500 KB",
            reports["gru"].total_kb < 500 and reports["lstm"].total_kb < 500,
            f"GRU={reports['gru'].total_kb:.0f}KB LSTM={reports['lstm'].total_kb:.0f}KB",
        ),
        Check(
            "most of the CNNs use at least 1 MB of device memory",
            sum(reports[n].total_kb >= 1024
                for n in ("cifarnet", "alexnet", "squeezenet", "resnet")) >= 3,
            ", ".join(f"{n}={reports[n].total_kb/1024:.1f}MB"
                      for n in ("cifarnet", "alexnet", "squeezenet", "resnet")),
        ),
        Check(
            "footprint tracks pre-trained model size (AlexNet > ResNet > SqueezeNet)",
            reports["alexnet"].total_bytes > reports["resnet"].total_bytes
            > reports["squeezenet"].total_bytes,
            "ordering matches the reference model sizes",
        ),
    ]
    for name, ref_mb in REFERENCE_MODEL_MB.items():
        measured_mb = reports[name].weight_bytes / (1024 * 1024)
        checks.append(
            Check(
                f"{name}: synthesized model size matches the reference artifact",
                0.8 * ref_mb <= measured_mb <= 1.25 * ref_mb,
                f"reference ~{ref_mb}MB, ours {measured_mb:.1f}MB",
            )
        )
    return checks


EXPERIMENT = register(
    Experiment(
        exp_id="fig11",
        title="Memory Footprint (TX1), KB",
        aggregate=_aggregate,
        checks=_checks,
        notes="analytic — no simulation required",
    )
)
