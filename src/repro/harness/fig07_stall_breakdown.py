"""Figure 7: breakdown of stall cycles per layer type (GK210).

Paper: nvprof stall-reason breakdowns per layer type of every network,
plus per-network summaries, on the Kepler GK210.  Claims checked
(Observation 5): fully-connected layers suffer memory throttling more
than other layer types; convolution and normalization layers see more
pipe-busy stalls; pooling layers show relatively high data-dependency
stalls; GRU patterns resemble convolution while LSTM (three gates vs
two) shows more data dependency than GRU.
"""

from __future__ import annotations

from repro.harness.common import ALL_NETWORKS, display
from repro.harness.report import Check
from repro.platforms import GK210
from repro.profiling.nvprof import profiles_from_result
from repro.profiling.stall import StallReason
from repro.runs import Experiment, RunSpec, RunView
from repro.runs.registry import register
from repro.runs.spec import PlanContext


def _plan(ctx: PlanContext) -> tuple[RunSpec, ...]:
    return tuple(RunSpec(name, GK210, ctx.options) for name in ctx.nets(ALL_NETWORKS))


def _per_net_cat(view: RunView) -> dict[str, dict[str, dict[StallReason, float]]]:
    out: dict[str, dict[str, dict[StallReason, float]]] = {}
    for name in view.nets(ALL_NETWORKS):
        categories, _ = profiles_from_result(view.run(name, GK210))
        out[name] = {p.scope: p.fractions for p in categories}
    return out


def _aggregate(view: RunView) -> dict:
    series: dict[str, dict[str, float]] = {}
    for name in view.nets(ALL_NETWORKS):
        categories, summary = profiles_from_result(view.run(name, GK210))
        for profile in categories:
            label = f"{display(name)}/{profile.scope}"
            series[label] = {
                reason.value: round(frac, 3)
                for reason, frac in sorted(
                    profile.fractions.items(), key=lambda kv: -kv[1]
                )
                if frac >= 0.01
            }
        series[f"{display(name)} (summary)"] = {
            reason.value: round(frac, 3)
            for reason, frac in sorted(summary.fractions.items(), key=lambda kv: -kv[1])
            if frac >= 0.01
        }
    return series


def _checks(view: RunView, series: dict) -> list[Check]:
    per_net_cat = _per_net_cat(view)

    def category_avg(category: str, reason: StallReason) -> float:
        values = [
            fracs[category].get(reason, 0.0)
            for fracs in per_net_cat.values()
            if category in fracs
        ]
        return sum(values) / len(values) if values else 0.0

    fc_throttle = category_avg("FC", StallReason.MEMORY_THROTTLE)
    other_throttle = max(
        category_avg(cat, StallReason.MEMORY_THROTTLE)
        for cat in ("Conv", "Pooling", "Norm")
    )
    conv_pipe = category_avg("Conv", StallReason.PIPE_BUSY)
    fc_pipe = category_avg("FC", StallReason.PIPE_BUSY)
    pool_dep = category_avg("Pooling", StallReason.EXEC_DEPENDENCY) + category_avg(
        "Pooling", StallReason.MEMORY_DEPENDENCY
    )
    gru_dep = per_net_cat["gru"]["GRU"].get(StallReason.EXEC_DEPENDENCY, 0.0)
    lstm_dep = per_net_cat["lstm"]["LSTM"].get(StallReason.EXEC_DEPENDENCY, 0.0)

    return [
        Check(
            "FC layers suffer memory throttling more than other layer types",
            fc_throttle > other_throttle,
            f"FC={fc_throttle:.1%} vs best other={other_throttle:.1%}",
        ),
        Check(
            "convolution layers see more pipe-busy stalls than FC layers",
            conv_pipe > fc_pipe,
            f"Conv={conv_pipe:.1%} FC={fc_pipe:.1%}",
        ),
        Check(
            "pooling layers show substantial data-dependency stalls",
            pool_dep > 0.15,
            f"Pooling dependency share={pool_dep:.1%}",
        ),
        Check(
            "LSTM (3 gates) shows more exec dependency than GRU (2 gates)",
            lstm_dep >= gru_dep,
            f"LSTM={lstm_dep:.1%} GRU={gru_dep:.1%}",
        ),
    ]


EXPERIMENT = register(
    Experiment(
        exp_id="fig07",
        title="Breakdown of Stall Cycles (GK210)",
        plan=_plan,
        aggregate=_aggregate,
        checks=_checks,
        render="stack",
    )
)
