"""Tables I-IV of the paper.

* Table I — input data, pre-trained model and output per network.
* Table II — GPU architectures used for evaluation.
* Table III — per-kernel launch configuration and SRAM usage.
* Table IV — the FPGA platform.

Table III is the load-bearing one: its grid/block geometries are
checked against the paper's listed entries exactly.  All four tables
are analytic (compile-time) experiments: they plan no simulations.
"""

from __future__ import annotations

from repro.core.suite import BENCHMARK_INFO, NETWORK_ORDER
from repro.harness.report import Check
from repro.kernels.compile import compiled_network
from repro.platforms import GK210, GP102, PYNQ_Z1, TX1
from repro.runs import Experiment, RunView
from repro.runs.registry import register

#: Paper Table III entries (kernel name -> (grid, block)) used as the
#: ground truth for the geometry checks.  Names follow our kernel names.
PAPER_TABLE3: dict[str, dict[str, tuple[tuple[int, int, int], tuple[int, int, int]]]] = {
    "gru": {"GRU Layer (t=0)": ((1, 1, 1), (10, 10, 1))},
    "lstm": {"LSTM Layer (t=0)": ((1, 1, 1), (100, 1, 1))},
    "cifarnet": {
        "conv1": ((1, 1, 1), (32, 32, 1)),
        "pool1": ((1, 1, 1), (32, 32, 1)),
        "conv2": ((1, 1, 1), (32, 32, 1)),
        "conv3": ((1, 1, 1), (32, 32, 1)),
        "fc1": ((1, 1, 1), (64, 1, 1)),
        "fc2": ((1, 1, 1), (32, 1, 1)),
    },
    "alexnet": {
        "conv1-1": ((96, 1, 1), (32, 32, 1)),
        "conv1-2": ((96, 1, 1), (32, 23, 1)),
        "conv1-3": ((96, 1, 1), (23, 32, 1)),
        "conv1-4": ((96, 1, 1), (23, 23, 1)),
        "pool1": ((96, 1, 1), (27, 27, 1)),
        "conv2-1": ((128, 1, 1), (27, 27, 1)),
        "conv2-2": ((128, 1, 1), (27, 27, 1)),
        "norm2": ((256, 1, 1), (27, 27, 1)),
        "pool2": ((256, 1, 1), (13, 13, 1)),
        "conv3": ((384, 1, 1), (13, 13, 1)),
        "conv4-1": ((192, 1, 1), (13, 13, 1)),
        "conv4-2": ((192, 1, 1), (13, 13, 1)),
        "conv5-1": ((128, 1, 1), (13, 13, 1)),
        "conv5-2": ((128, 1, 1), (13, 13, 1)),
        "pool5": ((256, 1, 1), (6, 6, 1)),
        "fc6": ((4096, 1, 1), (1, 1, 1)),
        "fc7": ((4096, 1, 1), (1, 1, 1)),
        "fc8": ((1000, 1, 1), (1, 1, 1)),
    },
    "squeezenet": {
        "conv1": ((111, 1, 1), (111, 1, 1)),
        "pool1": ((111, 1, 1), (111, 1, 1)),
        "fire2/squeeze1x1": ((55, 1, 1), (55, 1, 1)),
        "fire2/expand1x1": ((55, 1, 1), (55, 1, 1)),
        "fire5/squeeze1x1": ((27, 1, 1), (27, 1, 1)),
        "fire9/squeeze1x1": ((13, 1, 1), (13, 1, 1)),
        "conv10": ((15, 1, 1), (15, 1, 1)),
        "pool10": ((1, 1, 1), (1000, 1, 1)),
    },
    "resnet": {
        "conv1": ((64, 1, 1), (32, 32, 1)),
        "bn_conv1": ((64, 1, 1), (32, 32, 1)),
        "scale_conv1": ((64, 1, 1), (32, 32, 1)),
        "relu_conv1": ((64, 1, 1), (32, 32, 1)),
        "pool1": ((64, 1, 1), (32, 32, 1)),
        "res2a_branch1": ((256, 1, 1), (32, 32, 1)),
        "res2a_branch2a": ((64, 1, 1), (32, 32, 1)),
        "res2a_eltwise": ((256, 1, 1), (32, 32, 1)),
    },
    "vggnet": {
        "conv1_1": ((16, 16, 64), (14, 14, 1)),
        "conv1_2": ((16, 16, 64), (14, 14, 1)),
        "pool1": ((8, 8, 64), (14, 14, 1)),
        "conv2_1": ((8, 8, 128), (14, 14, 1)),
        "pool2": ((8, 8, 128), (7, 7, 1)),
        "conv3_1": ((8, 8, 256), (7, 7, 1)),
        "pool3": ((7, 7, 256), (4, 4, 1)),
        "conv4_1": ((7, 7, 512), (4, 4, 1)),
        "pool4": ((7, 7, 512), (2, 2, 1)),
        "conv5_1": ((7, 7, 512), (2, 2, 1)),
        "fc6": ((4, 4, 4), (8, 8, 1)),
        "fc8": ((1, 1, 10), (10, 10, 1)),
    },
}


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def _table1_aggregate(view: RunView) -> dict:
    return {
        info.display_name: {
            "input": info.input_description,
            "model": info.model_description,
            "output": info.output_description,
        }
        for info in (BENCHMARK_INFO[name] for name in NETWORK_ORDER)
    }


def _table1_checks(view: RunView, series: dict) -> list[Check]:
    return [
        Check(
            "all seven networks carry Table I metadata",
            len(series) == 7,
            f"{len(series)} networks",
        )
    ]


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def _table2_aggregate(view: RunView) -> dict:
    series = {}
    for config in (GK210, TX1, GP102):
        series[config.name] = {
            "cuda_cores": config.total_cuda_cores,
            "sms": config.num_sms,
            "l1_kb": config.l1_size // 1024,
            "l2_kb": config.l2_size // 1024,
            "registers_per_sm": config.registers_per_sm,
            "clock_ghz": config.clock_ghz,
        }
    return series


def _table2_checks(view: RunView, series: dict) -> list[Check]:
    return [
        Check(
            "TX1 has 256 CUDA cores (Table II)",
            TX1.total_cuda_cores == 256,
            f"{TX1.total_cuda_cores}",
        ),
        Check(
            "GP102 has 3584 CUDA cores (Table II)",
            GP102.total_cuda_cores == 3584,
            f"{GP102.total_cuda_cores}",
        ),
        Check(
            "TX1 register file is 32768 per SM (Table II)",
            TX1.registers_per_sm == 32768,
            f"{TX1.registers_per_sm}",
        ),
    ]


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def _table3_aggregate(view: RunView) -> dict:
    series: dict[str, dict] = {}
    for network in PAPER_TABLE3:
        kernels = {k.name: k for k in compiled_network(network)}
        series[network] = {
            k.name: {
                "grid": list(k.grid),
                "block": list(k.block),
                "regs": k.regs,
                "smem": k.smem_bytes,
                "cmem": k.cmem_bytes,
            }
            for k in list(kernels.values())[:24]
        }
    return series


def _table3_checks(view: RunView, series: dict) -> list[Check]:
    checks: list[Check] = []
    for network, expected in PAPER_TABLE3.items():
        kernels = {k.name: k for k in compiled_network(network)}
        mismatches = []
        for kernel_name, (grid, block) in expected.items():
            kernel = kernels.get(kernel_name)
            if kernel is None:
                mismatches.append(f"{kernel_name}: missing")
            elif kernel.grid != grid or kernel.block != block:
                mismatches.append(
                    f"{kernel_name}: got {kernel.grid}x{kernel.block}, "
                    f"paper {grid}x{block}"
                )
        checks.append(
            Check(
                f"{network}: launch geometry matches the paper's Table III entries",
                not mismatches,
                "; ".join(mismatches) or f"{len(expected)} entries match",
            )
        )
    all_regs = [
        k.regs for network in PAPER_TABLE3 for k in compiled_network(network)
    ]
    checks.append(
        Check(
            "register counts stay in the paper's per-thread ballpark (5-48)",
            all(5 <= r <= 48 for r in all_regs),
            f"min={min(all_regs)} max={max(all_regs)}",
        )
    )
    return checks


# ----------------------------------------------------------------------
# Table IV
# ----------------------------------------------------------------------
def _table4_aggregate(view: RunView) -> dict:
    p = PYNQ_Z1
    return {
        p.name: {
            "processor": p.processor,
            "memory": p.memory,
            "storage_gb": p.storage_gb,
            "programmable_logic": p.programmable_logic,
            "logic_slices": p.logic_slices,
            "bram_kb": p.bram_bytes // 1024,
        }
    }


def _table4_checks(view: RunView, series: dict) -> list[Check]:
    p = PYNQ_Z1
    return [
        Check("Zynq Z7020 with 13,300 logic slices", p.logic_slices == 13300, ""),
        Check("630KB BRAM", p.bram_bytes == 630 * 1024, ""),
    ]


TABLE1 = register(
    Experiment(
        exp_id="table1",
        title="Input/Output and Pre-trained Models",
        aggregate=_table1_aggregate,
        checks=_table1_checks,
        render="none",
    )
)

TABLE2 = register(
    Experiment(
        exp_id="table2",
        title="GPU architectures used for evaluation",
        aggregate=_table2_aggregate,
        checks=_table2_checks,
        render="none",
    )
)

TABLE3 = register(
    Experiment(
        exp_id="table3",
        title="Network Configuration and SRAM Usage",
        aggregate=_table3_aggregate,
        checks=_table3_checks,
        render="none",
        notes="regs/smem/cmem are derived from our builders (approximate); "
        "grid/block geometries are exact.",
    )
)

TABLE4 = register(
    Experiment(
        exp_id="table4",
        title="FPGA platform used for evaluation",
        aggregate=_table4_aggregate,
        checks=_table4_checks,
        render="none",
    )
)
