"""Declarative campaign specs: files (TOML/JSON) or dicts -> validated grids.

A campaign describes a design-space sweep over six axes —

    network x platform x l1_kb x scheduler x fidelity x batch

— as data rather than code, the way the VTR task runner describes flow
sweeps.  The grammar (TOML shown; the JSON/dict form is the same tree):

.. code-block:: toml

    [campaign]
    name = "l1-sweep"              # required
    description = "..."            # optional
    mode = "cartesian"             # "cartesian" (default) or "zip"
    fidelity = "light"             # base fidelity when not an axis

    [axes]                         # every axis takes a value list
    network = ["alexnet", "gru"]   # required, validated vs the suite
    platform = ["gp102"]           # validated vs platforms.registry
    l1_kb = [0, 64, 128, 256]      # KB; "default" keeps the platform L1
    scheduler = ["gto", "lrr"]     # warp schedulers
    batch = [1, 4, 8]              # inference batch sizes

    [[filters]]                    # drop points matching ALL entries
    network = ["gru", "lstm"]
    l1_kb = [128, 256]

    [frontier]                     # optional
    objectives = ["latency_ms", "energy_per_inf_j", "footprint_kb"]
    tolerance = 0.02               # compare tolerance (relative)

``mode = "zip"`` pairs the axes element-wise instead of taking the
cross product: every multi-valued axis must then have the same length
(single-valued axes broadcast).  Objectives minimize by default; prefix
with ``max:`` to maximize (e.g. ``"max:throughput_rps"``).

Everything is validated at load time — unknown networks, platforms,
schedulers, metrics, axes or filter axes raise :class:`CampaignError`
with the offending value named — so a campaign that plans at all can
execute.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.expand import AXIS_ORDER
from repro.campaign.qor import QOR_METRICS
from repro.core.suite import EXTENSION_NETWORKS, NETWORK_ORDER
from repro.platforms import list_platforms

#: Warp schedulers the simulator implements (Figures 15-16).
SCHEDULERS = ("gto", "lrr", "tlv")

#: Simulation fidelities (sampling budgets) a campaign may request.
FIDELITIES = ("default", "light")

#: Default Pareto objectives: the paper's cycles/energy/footprint
#: trade-off, batch-amortized.  All minimized.
DEFAULT_OBJECTIVES = ("latency_ms", "energy_per_inf_j", "footprint_kb")

#: Expansion-size guard: campaigns beyond this are almost certainly a
#: spec typo (e.g. a batch list pasted into l1_kb).
MAX_POINTS = 1_000_000


class CampaignError(ValueError):
    """A malformed or unsatisfiable campaign spec."""


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign: metadata, axis grids, filters, frontier."""

    name: str
    description: str = ""
    #: "cartesian" (cross product) or "zip" (element-wise pairing).
    mode: str = "cartesian"
    #: axis name -> value tuple, complete over :data:`AXIS_ORDER`.
    axes: dict = field(default_factory=dict)
    #: Drop rules: a point matching every entry of any rule is dropped.
    filters: tuple = ()
    #: ``(metric, sign)`` pairs; sign +1 minimizes, -1 maximizes.
    objectives: tuple = ()
    #: Relative tolerance for golden-frontier comparison.
    tolerance: float = 0.02

    def axis(self, name: str) -> tuple:
        """The validated value tuple of one axis."""
        return self.axes[name]

    def objective_labels(self) -> tuple[str, ...]:
        """Objectives in their serialized ``min:metric`` spelling."""
        return tuple(
            f"{'min' if sign > 0 else 'max'}:{metric}"
            for metric, sign in self.objectives
        )


def _fail(message: str) -> "CampaignError":
    return CampaignError(f"campaign spec: {message}")


def _as_tuple(value) -> tuple:
    """A single scalar or a list, as a tuple."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def _known_networks() -> tuple[str, ...]:
    return tuple(NETWORK_ORDER) + tuple(EXTENSION_NETWORKS)


def _validate_axis(name: str, values: tuple) -> tuple:
    """One axis' values: typed, known, non-empty, deduplicated."""
    if not values:
        raise _fail(f"axis {name!r} has no values")
    if len(set(values)) != len(values):
        raise _fail(f"axis {name!r} repeats a value: {list(values)}")
    if name == "network":
        known = _known_networks()
        for value in values:
            if value not in known:
                raise _fail(
                    f"unknown network {value!r}; available: {', '.join(known)}"
                )
        return values
    if name == "platform":
        known = list_platforms()
        out = []
        for value in values:
            if not isinstance(value, str) or value.lower() not in known:
                raise _fail(
                    f"unknown platform {value!r}; available: {', '.join(known)}"
                )
            out.append(value.lower())
        return tuple(out)
    if name == "l1_kb":
        out = []
        for value in values:
            if value == "default":
                out.append(None)
            elif isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise _fail(
                    f"l1_kb values must be KB integers >= 0 or 'default', "
                    f"got {value!r}"
                )
            else:
                out.append(value)
        return tuple(out)
    if name == "scheduler":
        for value in values:
            if value not in SCHEDULERS:
                raise _fail(
                    f"unknown scheduler {value!r}; "
                    f"available: {', '.join(SCHEDULERS)}"
                )
        return values
    if name == "fidelity":
        for value in values:
            if value not in FIDELITIES:
                raise _fail(
                    f"unknown fidelity {value!r}; "
                    f"available: {', '.join(FIDELITIES)}"
                )
        return values
    if name == "batch":
        for value in values:
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise _fail(f"batch values must be integers >= 1, got {value!r}")
        return values
    raise _fail(f"unknown axis {name!r}; known axes: {', '.join(AXIS_ORDER)}")


def _validate_filters(raw_filters) -> tuple:
    rules = []
    for rule in raw_filters:
        if not isinstance(rule, dict) or not rule:
            raise _fail(f"each [[filters]] entry must be a non-empty table, got {rule!r}")
        clean = {}
        for axis, values in rule.items():
            if axis not in AXIS_ORDER:
                raise _fail(
                    f"filter names unknown axis {axis!r}; "
                    f"known axes: {', '.join(AXIS_ORDER)}"
                )
            clean[axis] = _as_tuple(values)
        rules.append(clean)
    return tuple(rules)


def _parse_objective(raw: str) -> tuple[str, int]:
    sign = 1
    metric = raw
    if ":" in raw:
        direction, metric = raw.split(":", 1)
        if direction == "max":
            sign = -1
        elif direction != "min":
            raise _fail(
                f"objective direction must be 'min' or 'max', got {raw!r}"
            )
    if metric not in QOR_METRICS:
        raise _fail(
            f"unknown QoR metric {metric!r}; "
            f"available: {', '.join(QOR_METRICS)}"
        )
    return metric, sign


def campaign_from_dict(data: dict) -> CampaignSpec:
    """Validate a raw spec tree into a :class:`CampaignSpec`."""
    if not isinstance(data, dict):
        raise _fail(f"expected a table/dict at the top level, got {type(data).__name__}")
    meta = data.get("campaign", {})
    if not isinstance(meta, dict) or not meta.get("name"):
        raise _fail("missing [campaign] name")
    mode = meta.get("mode", "cartesian")
    if mode not in ("cartesian", "zip"):
        raise _fail(f"mode must be 'cartesian' or 'zip', got {mode!r}")
    base_fidelity = meta.get("fidelity", "default")
    if base_fidelity not in FIDELITIES:
        raise _fail(
            f"unknown fidelity {base_fidelity!r}; "
            f"available: {', '.join(FIDELITIES)}"
        )

    raw_axes = data.get("axes", {})
    if not isinstance(raw_axes, dict):
        raise _fail("[axes] must be a table of value lists")
    unknown = [name for name in raw_axes if name not in AXIS_ORDER]
    if unknown:
        raise _fail(
            f"unknown axis {unknown[0]!r}; known axes: {', '.join(AXIS_ORDER)}"
        )
    if "network" not in raw_axes:
        raise _fail("axis 'network' is required")
    defaults = {
        "platform": ("gp102",),
        "l1_kb": (None,),
        "scheduler": ("gto",),
        "fidelity": (base_fidelity,),
        "batch": (1,),
    }
    axes = {}
    for name in AXIS_ORDER:
        if name in raw_axes:
            axes[name] = _validate_axis(name, _as_tuple(raw_axes[name]))
        else:
            axes[name] = defaults[name]

    if mode == "zip":
        lengths = {len(values) for values in axes.values() if len(values) > 1}
        if len(lengths) > 1:
            detail = ", ".join(
                f"{name}={len(values)}" for name, values in axes.items()
            )
            raise _fail(f"zip mode needs equal-length axes, got {detail}")
        size = lengths.pop() if lengths else 1
    else:
        size = 1
        for values in axes.values():
            size *= len(values)
    if size > MAX_POINTS:
        raise _fail(f"campaign expands to {size} points (limit {MAX_POINTS})")

    filters = _validate_filters(data.get("filters", ()))

    frontier = data.get("frontier", {})
    if not isinstance(frontier, dict):
        raise _fail("[frontier] must be a table")
    raw_objectives = frontier.get("objectives", list(DEFAULT_OBJECTIVES))
    objectives = tuple(_parse_objective(raw) for raw in _as_tuple(raw_objectives))
    if not objectives:
        raise _fail("frontier objectives must not be empty")
    tolerance = frontier.get("tolerance", 0.02)
    if not isinstance(tolerance, (int, float)) or tolerance < 0:
        raise _fail(f"frontier tolerance must be >= 0, got {tolerance!r}")

    return CampaignSpec(
        name=str(meta["name"]),
        description=str(meta.get("description", "")),
        mode=mode,
        axes=axes,
        filters=filters,
        objectives=objectives,
        tolerance=float(tolerance),
    )


def load_campaign(source) -> CampaignSpec:
    """Load a campaign from a TOML/JSON file path or a raw dict.

    File format follows the suffix (``.toml`` / ``.json``); anything
    else is tried as TOML first, then JSON.  Parse errors, IO errors
    and validation errors all surface as :class:`CampaignError`.
    """
    if isinstance(source, dict):
        return campaign_from_dict(source)
    path = Path(source)
    try:
        text = path.read_text()
    except OSError as exc:
        raise _fail(f"cannot read {path}: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".json":
        parsers = (_parse_json,)
    elif suffix == ".toml":
        parsers = (_parse_toml,)
    else:
        parsers = (_parse_toml, _parse_json)
    errors = []
    for parse in parsers:
        try:
            return campaign_from_dict(parse(text))
        except CampaignError:
            raise
        except ValueError as exc:
            errors.append(str(exc))
    raise _fail(f"cannot parse {path}: {'; '.join(errors)}")


def _parse_toml(text: str) -> dict:
    import tomllib

    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"TOML: {exc}") from exc


def _parse_json(text: str) -> dict:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"JSON: {exc}") from exc
