"""Pareto frontiers and golden-frontier QoR comparison.

The aggregation end of a campaign: project every QoR row onto the
spec's objective vector (signs applied so every objective minimizes),
filter dominated points, and diff the surviving frontier against a
committed golden frontier the way the PR-7 bench gate diffs timing
samples — regressions exit non-zero, improvements are reported and
tolerated.

Dominance here is the standard product order: ``a`` dominates ``b``
when ``a`` is no worse on every objective and strictly better on at
least one.  It is a strict partial order (irreflexive, antisymmetric,
transitive), which gives the frontier its algebra — the frontier of a
frontier is itself, and adding a dominated point never changes it;
``tests/test_campaign_frontier.py`` pins those properties with
hypothesis.

Comparison semantics (relative tolerance ``tol``, per objective,
on the sign-applied values):

* **frontier retreat** — a golden point no current point attains
  (``current <= golden * (1 + tol)`` component-wise, sign-adjusted).
  The capability the golden frontier promised is gone.
* **dominated point** — a current frontier point some golden point
  dominates by more than ``tol`` on at least one objective.  The new
  frontier carries a point the old one strictly beat.

Either condition is a regression; a frontier that merely *gains*
points, or moves points inward (improvements), compares clean.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.campaign.qor import QorRow

#: Absolute slack added to every tolerance band so zero-valued
#: objectives never flap on float noise.
EPSILON = 1e-9

Objective = tuple[str, int]


def objective_vector(metrics: dict, objectives: Sequence[Objective]) -> tuple:
    """*metrics* projected onto the objectives, signs applied so every
    component minimizes."""
    return tuple(sign * float(metrics[name]) for name, sign in objectives)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector *a* Pareto-dominates *b* (minimization)."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_frontier(
    rows: Iterable[QorRow], objectives: Sequence[Objective]
) -> list[QorRow]:
    """The non-dominated subset of *rows*, in first-seen order.

    Ties (identical objective vectors) all stay: none dominates the
    others, and which axes reach the same QoR point is itself signal.
    """
    rows = list(rows)
    vectors = [objective_vector(row.metrics, objectives) for row in rows]
    frontier = []
    for i, row in enumerate(rows):
        if not any(
            dominates(vectors[j], vectors[i])
            for j in range(len(rows))
            if j != i
        ):
            frontier.append(row)
    return frontier


def frontier_payload(
    name: str,
    objective_labels: Sequence[str],
    frontier: Sequence[QorRow],
    tolerance: float = 0.02,
) -> dict:
    """The golden-frontier JSON form of a computed frontier."""
    return {
        "campaign": name,
        "objectives": list(objective_labels),
        "tolerance": tolerance,
        "points": [row.to_dict() for row in frontier],
    }


def _band(value: float, tolerance: float) -> float:
    """The upper edge of *value*'s tolerance band."""
    return value + tolerance * abs(value) + EPSILON


def _attains(current: Sequence[float], golden: Sequence[float], tol: float) -> bool:
    """Current point is at least as good as golden, within tolerance."""
    return all(c <= _band(g, tol) for c, g in zip(current, golden))


def _beaten_beyond(
    current: Sequence[float], golden: Sequence[float], tol: float
) -> bool:
    """Golden dominates current by more than tolerance somewhere.

    The domination side is strict (no epsilon slack): two mutually
    non-dominated points can differ hugely on one objective and
    microscopically on another, and slack on the ``all`` side would
    flag them against each other — a frontier must always compare
    clean against itself.
    """
    return all(g <= c for g, c in zip(golden, current)) and any(
        _band(g, tol) < c for g, c in zip(golden, current)
    )


def _point_vectors(payload: dict, objectives: Sequence[Objective]) -> list[tuple]:
    return [
        objective_vector(point["metrics"], objectives)
        for point in payload.get("points", ())
    ]


def parse_objective_labels(labels: Sequence[str]) -> tuple[Objective, ...]:
    """``min:metric`` / ``max:metric`` labels back into objectives."""
    out = []
    for label in labels:
        direction, _, metric = label.partition(":")
        out.append((metric, -1 if direction == "max" else 1))
    return tuple(out)


def compare_frontiers(
    golden: dict, current: dict, tolerance: float | None = None
) -> dict:
    """Diff a current frontier payload against a committed golden one.

    Returns a JSON-ready report; ``report["ok"]`` is False on any
    regression (objective mismatch, frontier retreat, or a current
    point a golden point dominates beyond tolerance).  ``tolerance``
    defaults to the golden file's own (or 0.02).
    """
    report: dict = {
        "campaign": current.get("campaign", golden.get("campaign", "?")),
        "objectives": golden.get("objectives", []),
        "golden_points": len(golden.get("points", ())),
        "current_points": len(current.get("points", ())),
        "retreats": [],
        "dominated": [],
        "improvements": 0,
        "errors": [],
        "ok": True,
    }
    if tolerance is None:
        tolerance = golden.get("tolerance", 0.02)
    report["tolerance"] = tolerance
    if golden.get("objectives") != current.get("objectives"):
        report["errors"].append(
            f"objective mismatch: golden {golden.get('objectives')} "
            f"vs current {current.get('objectives')}"
        )
        report["ok"] = False
        return report
    objectives = parse_objective_labels(golden.get("objectives", ()))
    if not objectives:
        report["errors"].append("golden frontier declares no objectives")
        report["ok"] = False
        return report

    golden_vectors = _point_vectors(golden, objectives)
    current_vectors = _point_vectors(current, objectives)

    for g_point, g_vec in zip(golden["points"], golden_vectors):
        if not any(_attains(c_vec, g_vec, tolerance) for c_vec in current_vectors):
            report["retreats"].append(g_point)
    for c_point, c_vec in zip(current["points"], current_vectors):
        if any(_beaten_beyond(c_vec, g_vec, tolerance) for g_vec in golden_vectors):
            report["dominated"].append(c_point)
        elif any(
            dominates(c_vec, g_vec) and not _attains(g_vec, c_vec, tolerance)
            for g_vec in golden_vectors
        ):
            report["improvements"] += 1

    report["ok"] = not (report["retreats"] or report["dominated"] or report["errors"])
    return report


def format_compare(report: dict) -> str:
    """Human-readable rendering of a comparison report."""
    lines = [
        f"[compare] campaign {report['campaign']}: "
        f"{report['golden_points']} golden vs {report['current_points']} "
        f"current frontier points (tolerance {report['tolerance']:g})"
    ]
    for error in report["errors"]:
        lines.append(f"[compare]   ERROR {error}")
    for point in report["retreats"]:
        lines.append(f"[compare]   RETREAT golden point no longer attained: "
                     f"{point['axes']}")
    for point in report["dominated"]:
        lines.append(f"[compare]   DOMINATED current point beaten by golden: "
                     f"{point['axes']}")
    if report["improvements"]:
        lines.append(f"[compare]   {report['improvements']} current point(s) "
                     f"improve on the golden frontier")
    lines.append(
        "[compare] OK — frontier holds" if report["ok"]
        else "[compare] REGRESSION — frontier retreated"
    )
    return "\n".join(lines)
