"""Quality-of-result metrics for campaign design points.

Every executed point gets one :class:`QorRow`: the axis values plus a
fixed metric catalogue (:data:`QOR_METRICS`) derived from the stored
batch-1 simulation —

* **timing** comes from the serving latency model
  (:mod:`repro.serve.profiles`): batch-``b`` latency follows the
  per-kernel wave analysis exactly (it reproduces
  ``total_time_ms`` at ``b=1``), so every batch variant of a combo is
  priced from one simulation;
* **energy** splits the GPUWattch model (:mod:`repro.power`) into its
  activity-proportional and static halves: dynamic energy scales with
  the batch (every activation computed ``b`` times) while static power
  integrates over the batched latency;
* **memory footprint** follows Figure 11's allocation scheme: the whole
  pre-trained model resides on the device while live activations scale
  with the batch.

Values are rounded to 6 decimals so QoR tables and golden frontiers
serialize stably.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.campaign.expand import CampaignPoint
from repro.power.accel import power_model_for
from repro.serve.profiles import profile_from_result

#: The metric catalogue, in reporting order.  All derive from one
#: batch-1 simulation plus the analytic batch/energy/footprint models.
QOR_METRICS = (
    "latency_ms",        # end-to-end batched inference latency
    "cycles",            # the same latency in core cycles
    "throughput_rps",    # steady-state inferences/second at this batch
    "energy_j",          # energy of one batched inference
    "energy_per_inf_j",  # energy amortized per inference
    "peak_power_w",      # hottest kernel's average power (Figure 3)
    "footprint_kb",      # weights + batch-scaled live activations
    "edp_js",            # energy-delay product (J * s) per inference
)


@dataclass(frozen=True)
class QorRow:
    """One design point's axis values and computed metrics."""

    point: CampaignPoint
    metrics: dict

    def to_dict(self) -> dict:
        """Stable JSON form: axes plus metrics."""
        return {"axes": self.point.axes(), "metrics": dict(self.metrics)}

    def describe(self) -> str:
        """One-line log form."""
        m = self.metrics
        return (
            f"{self.point.describe()}: lat={m['latency_ms']:.3f}ms "
            f"e/inf={m['energy_per_inf_j']:.4f}J fp={m['footprint_kb']:.0f}KB"
        )


@lru_cache(maxsize=None)
def _footprint_parts(network: str) -> tuple[int, int]:
    """(weight bytes, peak live-activation bytes) of one network."""
    from repro.profiling.memfootprint import footprint

    report = footprint(network)
    return report.weight_bytes, report.peak_activation_bytes


class QorModel:
    """Per-run derived quantities, memoized across batch variants.

    Campaign points sharing a :class:`~repro.runs.spec.RunSpec` (batch
    variants) also share the latency profile and the energy split, so
    both are computed once per run key, not once per point.
    """

    def __init__(self) -> None:
        self._per_run: dict[str, tuple] = {}

    def _run_terms(self, run_key: str, result, config) -> tuple:
        terms = self._per_run.get(run_key)
        if terms is None:
            profile = profile_from_result(result)
            model = power_model_for(config)
            aggregate = result.aggregate()
            terms = (
                profile,
                model.dynamic_energy_joules(aggregate),
                model.static_watts,
                model.peak_power(result),
            )
            self._per_run[run_key] = terms
        return terms

    def row(self, point: CampaignPoint, run_key: str, result) -> QorRow:
        """The QoR row of one point, given its stored simulation."""
        config = result.config
        profile, dynamic_j, static_w, peak_w = self._run_terms(
            run_key, result, config
        )
        batch = point.batch
        latency_ms = profile.latency_ms(batch)
        cycles = latency_ms * config.clock_ghz * 1e6
        energy_j = dynamic_j * batch + static_w * latency_ms / 1e3
        energy_per_inf = energy_j / batch
        weight_bytes, activation_bytes = _footprint_parts(point.network)
        footprint_kb = (weight_bytes + batch * activation_bytes) / 1024.0
        metrics = {
            "latency_ms": latency_ms,
            "cycles": cycles,
            "throughput_rps": profile.throughput_rps(batch),
            "energy_j": energy_j,
            "energy_per_inf_j": energy_per_inf,
            "peak_power_w": peak_w,
            "footprint_kb": footprint_kb,
            "edp_js": energy_per_inf * latency_ms / 1e3,
        }
        return QorRow(
            point=point,
            metrics={key: round(value, 6) for key, value in metrics.items()},
        )
