"""Campaign reporting: per-axis QoR tables and text rendering.

The human-facing end of ``repro campaign run``: per-axis tables show
how each swept axis value moves the headline metrics (the VTR
``parse_vtr_task`` QoR-table shape), and the frontier listing names
every surviving design point.  Everything renders from the same
JSON-ready :class:`~repro.campaign.runner.CampaignResult` payload the
``--json`` path emits.
"""

from __future__ import annotations

from repro.campaign.expand import AXIS_ORDER
from repro.campaign.qor import QorRow
from repro.campaign.runner import CampaignResult

#: Headline metrics of the per-axis tables: (metric, better-direction).
TABLE_METRICS = (
    ("latency_ms", min),
    ("throughput_rps", max),
    ("energy_per_inf_j", min),
    ("footprint_kb", min),
)


def axis_table(rows: list[QorRow], axis: str) -> list[dict]:
    """Best headline metrics per value of *axis*, sorted by value.

    "Best" is the per-group optimum (min or max as appropriate), the
    useful per-axis view of a sweep: what is attainable at this axis
    setting, letting every other axis float.
    """
    groups: dict = {}
    for row in rows:
        groups.setdefault(row.point.axes()[axis], []).append(row)
    table = []
    for value in sorted(groups, key=lambda v: (str(type(v)), v)):
        group = groups[value]
        entry = {"value": value, "points": len(group)}
        for metric, best in TABLE_METRICS:
            entry[metric] = best(r.metrics[metric] for r in group)
        table.append(entry)
    return table


def varying_axes(result: CampaignResult) -> list[str]:
    """The axes that actually sweep (more than one distinct value)."""
    out = []
    for axis in AXIS_ORDER:
        values = {row.point.axes()[axis] for row in result.rows}
        if len(values) > 1:
            out.append(axis)
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_table(axis: str, table: list[dict]) -> str:
    headers = ["value", "points"] + [metric for metric, _ in TABLE_METRICS]
    widths = {h: len(h) for h in headers}
    cells = []
    for entry in table:
        row = [_fmt(entry["value"]), str(entry["points"])] + [
            _fmt(entry[metric]) for metric, _ in TABLE_METRICS
        ]
        cells.append(row)
        for header, cell in zip(headers, row):
            widths[header] = max(widths[header], len(cell))
    lines = [f"  by {axis}:"]
    lines.append("    " + "  ".join(h.rjust(widths[h]) for h in headers))
    for row in cells:
        lines.append(
            "    " + "  ".join(c.rjust(widths[h]) for h, c in zip(headers, row))
        )
    return "\n".join(lines)


def format_campaign(result: CampaignResult, max_frontier: int = 24) -> str:
    """The full text report of one campaign run."""
    spec = result.spec
    lines = [f"=== campaign {spec.name} ==="]
    if spec.description:
        lines.append(f"  {spec.description}")
    lines.append(
        f"  {result.plan.requested} points -> {len(result.plan.specs)} unique "
        f"runs ({result.plan.deduped} deduplicated); "
        f"{result.report.fresh} fresh, {result.report.cached} cached"
    )
    for entry in result.skipped:
        lines.append(f"  SKIPPED {entry['axes']}: {entry['error']}")
    for axis in varying_axes(result):
        lines.append(_render_table(axis, axis_table(result.rows, axis)))
    labels = ", ".join(spec.objective_labels())
    lines.append(
        f"  frontier ({labels}): {len(result.frontier)} of "
        f"{len(result.rows)} points non-dominated"
    )
    for row in result.frontier[:max_frontier]:
        lines.append(f"    {row.describe()}")
    if len(result.frontier) > max_frontier:
        lines.append(
            f"    ... {len(result.frontier) - max_frontier} more "
            f"(use --json for all)"
        )
    return "\n".join(lines)
