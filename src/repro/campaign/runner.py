"""Campaign orchestration: expand -> plan -> execute -> QoR -> frontier.

One call, :func:`run_campaign`, drives a whole design-space-exploration
campaign through the existing run pipeline: the campaign plan dedupes
the requested points onto unique :class:`~repro.runs.spec.RunSpec` s,
the shared :class:`~repro.runs.executor.Executor` materializes them
(process-pool fan-out, content-addressed store read-through — a warm
re-run simulates nothing), and the QoR layer prices every requested
point from its stored run.  Failed runs (surfaced per-spec by the
executor rather than aborting the batch) skip their points; everything
else aggregates into QoR rows and the Pareto frontier.

Observability: ``campaign.*`` counters (points, unique_runs, deduped,
rows, skipped, frontier_points) and wall-clock spans for the plan, QoR
and frontier phases when a tracer is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.expand import CampaignPlan, plan_campaign
from repro.campaign.frontier import frontier_payload, pareto_frontier
from repro.campaign.qor import QorModel, QorRow
from repro.campaign.spec import CampaignSpec
from repro.obs.tracer import WALL_S, get_tracer
from repro.runs.executor import ExecutionReport, Executor


@dataclass
class CampaignResult:
    """Everything one campaign pass produced."""

    spec: CampaignSpec
    plan: CampaignPlan
    report: ExecutionReport
    #: One QoR row per successfully executed point, in expansion order.
    rows: list[QorRow] = field(default_factory=list)
    #: The non-dominated rows under the spec's objectives.
    frontier: list[QorRow] = field(default_factory=list)
    #: Points whose runs failed: ``{"axes": ..., "error": ...}``.
    skipped: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every requested point produced a QoR row."""
        return not self.skipped

    def frontier_payload(self) -> dict:
        """The golden-frontier JSON form of this campaign's frontier."""
        return frontier_payload(
            self.spec.name,
            self.spec.objective_labels(),
            self.frontier,
            tolerance=self.spec.tolerance,
        )

    def to_dict(self) -> dict:
        """Full campaign outcome as one JSON document."""
        return {
            "campaign": self.spec.name,
            "description": self.spec.description,
            "mode": self.spec.mode,
            "points": self.plan.requested,
            "unique_runs": len(self.plan.specs),
            "deduped": self.plan.deduped,
            "execution": self.report.to_dict(),
            "objectives": list(self.spec.objective_labels()),
            "rows": [row.to_dict() for row in self.rows],
            "frontier": self.frontier_payload(),
            "skipped": list(self.skipped),
        }

    def summary(self) -> str:
        """One-line outcome for logs."""
        skipped = f", {len(self.skipped)} skipped" if self.skipped else ""
        return (
            f"[campaign] {self.spec.name}: {self.plan.requested} points, "
            f"{len(self.plan.specs)} unique runs "
            f"({self.report.fresh} fresh, {self.report.cached} cached), "
            f"frontier {len(self.frontier)}/{len(self.rows)} points{skipped}"
        )


def run_campaign(
    spec: CampaignSpec,
    store=None,
    executor: Executor | None = None,
    jobs: int = 1,
    verbose: bool = False,
) -> CampaignResult:
    """Plan, execute and aggregate one campaign.

    ``store=None`` with no executor keeps results in memory only;
    passing a :class:`~repro.runs.store.ResultStore` (the default CLI
    path) makes the campaign resumable: re-running after an interrupt
    — or after extending the spec with new axis values — only
    simulates combos the store has never seen.
    """
    tracer = get_tracer()
    plan = plan_campaign(spec)
    if verbose:
        print(plan.describe(), flush=True)
    if executor is None:
        executor = Executor(store, verbose=verbose)
    report = executor.execute(plan.specs, jobs=jobs)
    if verbose:
        print(f"[campaign] {report.summary()}", flush=True)

    qor_start = tracer.wall()
    model = QorModel()
    rows: list[QorRow] = []
    skipped: list[dict] = []
    for point, run in zip(plan.points, plan.specs_by_point):
        key = run.key()
        error = report.failed.get(key)
        if error is not None:
            skipped.append({"axes": point.axes(), "error": error})
            continue
        rows.append(model.row(point, key, executor.run(run)))
    if tracer.enabled:
        tracer.metrics.counter("campaign.rows").inc(len(rows))
        if skipped:
            tracer.metrics.counter("campaign.skipped").inc(len(skipped))
        tracer.span(
            f"qor {spec.name}", "campaign", WALL_S,
            qor_start, tracer.wall() - qor_start,
            process="campaign", thread="qor",
            args={"rows": len(rows), "skipped": len(skipped)},
        )

    frontier_start = tracer.wall()
    frontier = pareto_frontier(rows, spec.objectives)
    if tracer.enabled:
        tracer.metrics.counter("campaign.frontier_points").inc(len(frontier))
        tracer.span(
            f"frontier {spec.name}", "campaign", WALL_S,
            frontier_start, tracer.wall() - frontier_start,
            process="campaign", thread="frontier",
            args={"frontier": len(frontier), "rows": len(rows)},
        )
    result = CampaignResult(
        spec=spec, plan=plan, report=report,
        rows=rows, frontier=frontier, skipped=skipped,
    )
    if verbose:
        print(result.summary(), flush=True)
    return result
