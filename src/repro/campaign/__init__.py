"""Declarative design-space-exploration campaigns.

The campaign subsystem generalizes the fixed paper-experiment harness
into an open-ended architecture-exploration tool, the way the VTR task
runner generalizes one flow run into QoR-tracked sweeps:

* :mod:`repro.campaign.spec` — the declarative campaign grammar
  (TOML/JSON files or Python dicts): six sweep axes (network x
  platform x l1_kb x scheduler x fidelity x batch), cartesian or
  zipped expansion, filter rules, Pareto objectives — all validated at
  load time against the network and platform registries.
* :mod:`repro.campaign.expand` — expansion into concrete points and
  lowering onto the run pipeline: one point -> one
  :class:`~repro.runs.spec.RunSpec`, deduped by content key into a
  :class:`CampaignPlan` the shared executor materializes (warm re-runs
  simulate nothing).
* :mod:`repro.campaign.qor` — per-point quality-of-result metrics
  (batched latency/cycles/throughput, GPUWattch energy split,
  batch-scaled memory footprint) from each point's stored batch-1 run.
* :mod:`repro.campaign.frontier` — Pareto-dominance filtering and the
  golden-frontier comparison gate (retreats and newly dominated points
  regress; improvements pass).
* :mod:`repro.campaign.runner` / :mod:`repro.campaign.report` — the
  one-call orchestration and the per-axis QoR tables.

CLI: ``repro campaign run|compare|list SPEC`` (see ``repro campaign
--help``); DESIGN.md section 14 documents the grammar and algorithms.
"""

from repro.campaign.expand import (
    AXIS_ORDER,
    CampaignPlan,
    CampaignPoint,
    expand_points,
    plan_campaign,
    point_spec,
)
from repro.campaign.frontier import (
    compare_frontiers,
    dominates,
    format_compare,
    frontier_payload,
    pareto_frontier,
)
from repro.campaign.qor import QOR_METRICS, QorModel, QorRow
from repro.campaign.report import axis_table, format_campaign
from repro.campaign.runner import CampaignResult, run_campaign
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    campaign_from_dict,
    load_campaign,
)

__all__ = [
    "AXIS_ORDER",
    "CampaignError",
    "CampaignPlan",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "QOR_METRICS",
    "QorModel",
    "QorRow",
    "axis_table",
    "campaign_from_dict",
    "compare_frontiers",
    "dominates",
    "expand_points",
    "format_campaign",
    "format_compare",
    "frontier_payload",
    "load_campaign",
    "pareto_frontier",
    "plan_campaign",
    "point_spec",
    "run_campaign",
]
