"""Campaign expansion: axis grids -> points -> deduped run plans.

A :class:`~repro.campaign.spec.CampaignSpec` names value lists for the
six sweep axes; this module turns them into concrete
:class:`CampaignPoint` s (cartesian or zipped, minus filtered combos)
and lowers each point onto the existing run pipeline: one point maps to
exactly one :class:`~repro.runs.spec.RunSpec`, and points that differ
only in axes the simulator cannot observe (``batch``, which is modelled
analytically from the batch-1 run) collapse onto the same spec.  The
resulting :class:`CampaignPlan` is the campaign-scale analogue of
:class:`repro.runs.planner.Plan`: thousands of requested runs, deduped
by content key, executed once each through the shared
:class:`~repro.runs.executor.Executor` and the content-addressed store
— which is what makes campaign re-runs incremental and effectively
free when warm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.gpu.config import SimOptions
from repro.obs.tracer import WALL_S, get_tracer
from repro.platforms import make_config
from repro.runs.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.campaign.spec import CampaignSpec

#: Axis names in canonical expansion order (slowest-varying first).
AXIS_ORDER = ("network", "platform", "l1_kb", "scheduler", "fidelity", "batch")


@dataclass(frozen=True)
class CampaignPoint:
    """One concrete design point of a campaign sweep."""

    network: str
    platform: str
    #: L1D size override in KB (``None`` keeps the platform default).
    l1_kb: int | None
    scheduler: str
    fidelity: str
    batch: int

    def axes(self) -> dict:
        """JSON-ready axis values, ``l1_kb`` resolved to real KB."""
        return {
            "network": self.network,
            "platform": self.platform,
            "l1_kb": self.resolved_l1_kb(),
            "scheduler": self.scheduler,
            "fidelity": self.fidelity,
            "batch": self.batch,
        }

    def resolved_l1_kb(self) -> int:
        """The effective L1D size in KB (platform default resolved)."""
        if self.l1_kb is not None:
            return self.l1_kb
        return make_config(self.platform).l1_size // 1024

    def describe(self) -> str:
        """One-line human identity, stable across runs."""
        return (
            f"{self.network}@{self.platform}"
            f" l1={self.resolved_l1_kb()}K sched={self.scheduler}"
            f" fid={self.fidelity} b={self.batch}"
        )


def point_options(point: CampaignPoint) -> SimOptions:
    """The :class:`SimOptions` a point's simulation runs under."""
    options = SimOptions(scheduler=point.scheduler)
    if point.fidelity == "light":
        options = options.light()
    return options


def point_spec(point: CampaignPoint) -> RunSpec:
    """Lower one point onto the run pipeline.

    ``batch`` deliberately does not appear in the spec: batch-``b``
    behaviour is derived analytically from the batch-1 simulation
    (:mod:`repro.serve.profiles`), so every batch variant of a combo
    shares — and dedupes onto — a single simulated run.
    """
    config = make_config(point.platform, l1_kb=point.l1_kb)
    return RunSpec(point.network, config, point_options(point))


def _value_of(point: CampaignPoint, axis: str):
    """A point's value on *axis*, with ``l1_kb`` resolved."""
    if axis == "l1_kb":
        return point.resolved_l1_kb()
    return getattr(point, axis)


def _matches_filter(point: CampaignPoint, rule: dict) -> bool:
    """True when the point matches *every* axis constraint of *rule*."""
    for axis, values in rule.items():
        if _value_of(point, axis) not in values:
            return False
    return True


def expand_points(spec: "CampaignSpec") -> tuple[CampaignPoint, ...]:
    """All requested design points: cartesian or zipped, minus filters."""
    grids = [spec.axis(name) for name in AXIS_ORDER]
    if spec.mode == "zip":
        length = max(len(grid) for grid in grids)
        # Single-value axes broadcast along the zip; the spec validator
        # guarantees every other axis has exactly `length` values.
        rows: Iterable[tuple] = zip(
            *(grid * length if len(grid) == 1 else grid for grid in grids)
        )
    else:
        rows = itertools.product(*grids)
    points = [CampaignPoint(*row) for row in rows]
    if spec.filters:
        points = [
            point
            for point in points
            if not any(_matches_filter(point, rule) for rule in spec.filters)
        ]
    return tuple(points)


@dataclass
class CampaignPlan:
    """A campaign lowered onto the run pipeline, deduped by content key."""

    #: Every requested point, in expansion order.
    points: tuple[CampaignPoint, ...] = ()
    #: The point-aligned specs (``specs_by_point[i]`` runs ``points[i]``).
    specs_by_point: tuple[RunSpec, ...] = ()
    #: Unique specs in first-seen order — what the executor simulates.
    specs: tuple[RunSpec, ...] = ()

    @property
    def requested(self) -> int:
        """RunSpecs requested before deduplication (one per point)."""
        return len(self.points)

    @property
    def deduped(self) -> int:
        """Requested runs that collapsed onto an already-planned spec."""
        return self.requested - len(self.specs)

    def describe(self) -> str:
        """Planner-style log: points -> requested -> unique runs."""
        return (
            f"[campaign] {self.requested} points -> "
            f"{self.requested} requested runs -> {len(self.specs)} unique "
            f"({self.deduped} deduplicated)"
        )


def plan_campaign(spec: "CampaignSpec") -> CampaignPlan:
    """Expand a campaign and dedupe its runs into a minimal matrix."""
    tracer = get_tracer()
    start = tracer.wall()
    points = expand_points(spec)
    specs_by_point = tuple(point_spec(point) for point in points)
    seen: set[str] = set()
    unique: list[RunSpec] = []
    for run in specs_by_point:
        key = run.key()
        if key not in seen:
            seen.add(key)
            unique.append(run)
    plan = CampaignPlan(
        points=points, specs_by_point=specs_by_point, specs=tuple(unique)
    )
    if tracer.enabled:
        tracer.metrics.counter("campaign.points").inc(plan.requested)
        tracer.metrics.counter("campaign.unique_runs").inc(len(plan.specs))
        tracer.metrics.counter("campaign.deduped").inc(plan.deduped)
        tracer.span(
            f"plan {spec.name}", "campaign", WALL_S,
            start, tracer.wall() - start,
            process="campaign", thread="planner",
            args={
                "campaign": spec.name,
                "points": plan.requested,
                "unique": len(plan.specs),
            },
        )
    return plan
