"""Backward (training-phase) passes for the layer primitives.

The paper ships inference only but states: "we plan to extend the suite
to also provide back-propagation code for training phase" (Section
II-C).  This module provides that extension at the functional level:
the gradient of every primitive the seven networks use, validated
against numerical differentiation in the test suite.

Conventions match :mod:`repro.core.layers.functional`: CHW tensors, no
batch dimension.  Each ``*_backward`` takes the upstream gradient plus
whatever forward context it needs and returns gradients in the order
``(d_input, d_weight..., d_bias...)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.layers import functional as F


def conv2d_backward(
    d_out: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`~repro.core.layers.functional.conv2d`.

    Returns ``(d_x, d_weight, d_bias)``.
    """
    c_out, c_in, kh, kw = weight.shape
    _, out_h, out_w = d_out.shape
    cols = F.im2col(x, kh, kw, stride, pad)  # (C*kh*kw, OH*OW)
    d_flat = d_out.reshape(c_out, -1)  # (C_out, OH*OW)

    d_weight = (d_flat @ cols.T).reshape(weight.shape)
    d_bias = d_flat.sum(axis=1)

    # d_cols = W^T @ d_out, then fold the columns back (col2im).
    d_cols = weight.reshape(c_out, -1).T @ d_flat  # (C*kh*kw, OH*OW)
    c, h, w = x.shape
    d_padded = np.zeros((c, h + 2 * pad, w + 2 * pad))
    d_cols = d_cols.reshape(c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            d_padded[:, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                d_cols[:, i, j]
            )
    if pad:
        d_x = d_padded[:, pad:-pad, pad:-pad]
    else:
        d_x = d_padded
    return d_x, d_weight, d_bias


def fc_backward(
    d_out: np.ndarray, x: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the fully-connected layer: ``(d_x, d_w, d_b)``."""
    flat = x.reshape(-1)
    d_w = np.outer(d_out, flat)
    d_b = d_out.copy()
    d_x = (weight.T @ d_out).reshape(x.shape)
    return d_x, d_w, d_b


def relu_backward(d_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of ReLU: passes where the input was positive."""
    return d_out * (x > 0)


def max_pool2d_backward(
    d_out: np.ndarray, x: np.ndarray, kernel: int, stride: int, pad: int = 0
) -> np.ndarray:
    """Gradient of max pooling: routes to each window's argmax."""
    c, h, w = x.shape
    _, out_h, out_w = d_out.shape
    xp = F.pad_chw(x, pad)
    d_padded = np.zeros_like(xp)
    for ch in range(c):
        for oy in range(out_h):
            for ox in range(out_w):
                window = xp[ch, oy * stride : oy * stride + kernel,
                            ox * stride : ox * stride + kernel]
                iy, ix = np.unravel_index(np.argmax(window), window.shape)
                d_padded[ch, oy * stride + iy, ox * stride + ix] += d_out[ch, oy, ox]
    if pad:
        return d_padded[:, pad:-pad, pad:-pad]
    return d_padded


def avg_pool2d_backward(
    d_out: np.ndarray, x_shape: tuple[int, int, int], kernel: int, stride: int, pad: int = 0
) -> np.ndarray:
    """Gradient of average pooling: spreads evenly over each window."""
    c, h, w = x_shape
    _, out_h, out_w = d_out.shape
    d_padded = np.zeros((c, h + 2 * pad, w + 2 * pad))
    share = 1.0 / (kernel * kernel)
    for oy in range(out_h):
        for ox in range(out_w):
            d_padded[:, oy * stride : oy * stride + kernel,
                     ox * stride : ox * stride + kernel] += (
                d_out[:, oy : oy + 1, ox : ox + 1] * share
            )
    if pad:
        return d_padded[:, pad:-pad, pad:-pad]
    return d_padded


def softmax_cross_entropy_backward(probs: np.ndarray, label: int) -> np.ndarray:
    """Gradient of softmax + cross-entropy w.r.t. the logits."""
    grad = probs.copy()
    grad[label] -= 1.0
    return grad


def batch_norm_backward(
    d_out: np.ndarray, x: np.ndarray, mean: np.ndarray, var: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Gradient of inference batch-norm w.r.t. the input.

    With stored (frozen) statistics the transform is affine per channel,
    so the gradient is a per-channel rescale.
    """
    shape = (-1,) + (1,) * (x.ndim - 1)
    return d_out / np.sqrt(var.reshape(shape) + eps)


def scale_backward(
    d_out: np.ndarray, x: np.ndarray, gamma: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the Scale layer: ``(d_x, d_gamma, d_beta)``."""
    shape = (-1,) + (1,) * (x.ndim - 1)
    d_x = d_out * gamma.reshape(shape)
    axes = tuple(range(1, x.ndim))
    d_gamma = (d_out * x).sum(axis=axes)
    d_beta = d_out.sum(axis=axes)
    return d_x, d_gamma, d_beta


def sigmoid_backward(d_out: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Gradient through a sigmoid given its *output* ``s``."""
    return d_out * s * (1.0 - s)


def tanh_backward(d_out: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Gradient through a tanh given its *output* ``t``."""
    return d_out * (1.0 - t * t)


def gru_cell_backward(
    d_h_next: np.ndarray,
    x: np.ndarray,
    h: np.ndarray,
    weights: dict[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Gradients of one GRU step w.r.t. every parameter and ``h``.

    ``weights`` uses the layer's tensor names (``w_z``, ``u_z``, ``b_z``,
    ...).  Returns a dict with ``d_<name>`` entries plus ``d_h`` and
    ``d_x``.
    """
    z = F.sigmoid(weights["w_z"] @ x + weights["u_z"] @ h + weights["b_z"])
    r = F.sigmoid(weights["w_r"] @ x + weights["u_r"] @ h + weights["b_r"])
    h_tilde = np.tanh(weights["w_h"] @ x + weights["u_h"] @ (r * h) + weights["b_h"])

    d_z = d_h_next * (h_tilde - h)
    d_h_tilde = d_h_next * z
    d_h = d_h_next * (1.0 - z)

    d_a_h = tanh_backward(d_h_tilde, h_tilde)
    d_a_z = sigmoid_backward(d_z, z)

    d_rh = weights["u_h"].T @ d_a_h
    d_r = d_rh * h
    d_h = d_h + d_rh * r
    d_a_r = sigmoid_backward(d_r, r)

    grads = {
        "d_w_z": np.outer(d_a_z, x), "d_u_z": np.outer(d_a_z, h), "d_b_z": d_a_z,
        "d_w_r": np.outer(d_a_r, x), "d_u_r": np.outer(d_a_r, h), "d_b_r": d_a_r,
        "d_w_h": np.outer(d_a_h, x), "d_u_h": np.outer(d_a_h, r * h), "d_b_h": d_a_h,
    }
    d_h = d_h + weights["u_z"].T @ d_a_z + weights["u_r"].T @ d_a_r
    d_x = (
        weights["w_z"].T @ d_a_z
        + weights["w_r"].T @ d_a_r
        + weights["w_h"].T @ d_a_h
    )
    grads["d_h"] = d_h
    grads["d_x"] = d_x
    return grads
