"""Pure NumPy implementations of the Tango layer primitives.

The paper decomposes every network layer into "fundamental mathematical
computations" so the suite needs no cuDNN or framework; this module is
the NumPy equivalent of those decompositions.  All image tensors use CHW
layout (channels, height, width) without a batch dimension — the paper's
kernels run single-image inference, one thread per neuron.

Every function is a plain array-in/array-out transformation so that unit
and property-based tests can check each primitive against an independent
reference (e.g. :func:`conv2d` against ``scipy.signal.correlate``).
"""

from __future__ import annotations

import numpy as np


def pad_chw(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of a CHW tensor by *pad* pixels."""
    if pad == 0:
        return x
    if pad < 0:
        raise ValueError("pad must be non-negative")
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)))


def conv_out_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window (k={kernel}, s={stride}, p={pad}) does not fit input of size {size}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold a CHW tensor into convolution columns.

    Returns an array of shape ``(C*kh*kw, out_h*out_w)`` whose columns
    are the receptive fields, the standard lowering that turns
    convolution into a matrix product.
    """
    c, h, w = x.shape
    out_h = conv_out_dim(h, kh, stride, pad)
    out_w = conv_out_dim(w, kw, stride, pad)
    xp = pad_chw(x, pad)
    # Gather windows via stride tricks: shape (C, kh, kw, out_h, out_w).
    s0, s1, s2 = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s1 * stride, s2 * stride),
        writeable=False,
    )
    return windows.reshape(c * kh * kw, out_h * out_w)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """2-D cross-correlation (CNN "convolution") over a CHW tensor.

    Args:
        x: Input of shape ``(C_in, H, W)``.
        weight: Filters of shape ``(C_out, C_in, kh, kw)``.
        bias: Optional per-output-channel bias of shape ``(C_out,)``.
        stride: Spatial stride.
        pad: Symmetric zero padding.

    Returns:
        Output of shape ``(C_out, out_h, out_w)``.
    """
    c_out, c_in, kh, kw = weight.shape
    if x.shape[0] != c_in:
        raise ValueError(f"input has {x.shape[0]} channels, filters expect {c_in}")
    out_h = conv_out_dim(x.shape[1], kh, stride, pad)
    out_w = conv_out_dim(x.shape[2], kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad)
    out = weight.reshape(c_out, c_in * kh * kw) @ cols
    if bias is not None:
        out += bias[:, None]
    return out.reshape(c_out, out_h, out_w)


def _pool(x: np.ndarray, kernel: int, stride: int, pad: int, reduce_fn) -> np.ndarray:
    """Shared window-reduction driver for max/avg pooling."""
    c, h, w = x.shape
    out_h = conv_out_dim(h, kernel, stride, pad)
    out_w = conv_out_dim(w, kernel, stride, pad)
    xp = pad_chw(x, pad)
    s0, s1, s2 = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(c, out_h, out_w, kernel, kernel),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    return reduce_fn(windows, axis=(3, 4))


def max_pool2d(x: np.ndarray, kernel: int, stride: int, pad: int = 0) -> np.ndarray:
    """Max pooling over a CHW tensor."""
    return _pool(x, kernel, stride, pad, np.max)


def avg_pool2d(x: np.ndarray, kernel: int, stride: int, pad: int = 0) -> np.ndarray:
    """Average pooling over a CHW tensor."""
    return _pool(x, kernel, stride, pad, np.mean)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling: CHW -> C vector (SqueezeNet's final layer)."""
    return x.mean(axis=(1, 2))


def fully_connected(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully-connected layer: ``y = W @ flatten(x) + b``."""
    flat = x.reshape(-1)
    if weight.shape[1] != flat.shape[0]:
        raise ValueError(f"weight expects {weight.shape[1]} inputs, got {flat.shape[0]}")
    y = weight @ flat
    if bias is not None:
        y = y + bias
    return y


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def lrn(x: np.ndarray, local_size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 1.0) -> np.ndarray:
    """Local response normalization across channels (AlexNet's Norm layer).

    Implements Krizhevsky's formula: each activation is divided by
    ``(k + alpha/n * sum of squares over n neighbouring channels)**beta``.
    """
    c = x.shape[0]
    sq = x * x
    half = local_size // 2
    denom = np.empty_like(x)
    # Prefix sums over channels give each window sum in O(C).
    csum = np.concatenate([np.zeros_like(sq[:1]), np.cumsum(sq, axis=0)])
    for i in range(c):
        lo = max(0, i - half)
        hi = min(c, i + half + 1)
        denom[i] = csum[hi] - csum[lo]
    return x / (k + (alpha / local_size) * denom) ** beta


def batch_norm(
    x: np.ndarray, mean: np.ndarray, var: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Inference-time batch normalization with stored statistics.

    ResNet (as released for Caffe) splits normalization into a BatchNorm
    layer (this function) followed by a separate Scale layer
    (:func:`scale`), and the paper's Table III lists both as distinct
    kernels; we keep the split.
    """
    shape = (-1,) + (1,) * (x.ndim - 1)
    return (x - mean.reshape(shape)) / np.sqrt(var.reshape(shape) + eps)


def scale(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Per-channel affine scale layer (ResNet's Scale kernels)."""
    shape = (-1,) + (1,) * (x.ndim - 1)
    return x * gamma.reshape(shape) + beta.reshape(shape)


def eltwise_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition (ResNet's shortcut Eltwise kernels)."""
    if a.shape != b.shape:
        raise ValueError(f"eltwise operands differ in shape: {a.shape} vs {b.shape}")
    return a + b


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over a vector of class scores."""
    shifted = x - np.max(x)
    e = np.exp(shifted)
    return e / e.sum()


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid (RNN gate activation)."""
    return 1.0 / (1.0 + np.exp(-x))


def gru_cell(
    x: np.ndarray,
    h: np.ndarray,
    w_z: np.ndarray,
    u_z: np.ndarray,
    b_z: np.ndarray,
    w_r: np.ndarray,
    u_r: np.ndarray,
    b_r: np.ndarray,
    w_h: np.ndarray,
    u_h: np.ndarray,
    b_h: np.ndarray,
) -> np.ndarray:
    """One GRU step (Cho et al.): update gate, reset gate, candidate.

    GRU merges LSTM's forget and input gates into a single update gate
    ``z`` and adds a reset gate ``r`` — two gates, as the paper notes.
    """
    z = sigmoid(w_z @ x + u_z @ h + b_z)
    r = sigmoid(w_r @ x + u_r @ h + b_r)
    h_tilde = np.tanh(w_h @ x + u_h @ (r * h) + b_h)
    return (1.0 - z) * h + z * h_tilde


def lstm_cell(
    x: np.ndarray,
    h: np.ndarray,
    c: np.ndarray,
    w_i: np.ndarray,
    u_i: np.ndarray,
    b_i: np.ndarray,
    w_f: np.ndarray,
    u_f: np.ndarray,
    b_f: np.ndarray,
    w_o: np.ndarray,
    u_o: np.ndarray,
    b_o: np.ndarray,
    w_g: np.ndarray,
    u_g: np.ndarray,
    b_g: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One LSTM step with input, forget and output gates.

    Returns ``(h_next, c_next)``.  Three gates, against GRU's two —
    the structural difference behind the paper's observation that LSTM
    shows more data-dependency stalls than GRU.
    """
    i = sigmoid(w_i @ x + u_i @ h + b_i)
    f = sigmoid(w_f @ x + u_f @ h + b_f)
    o = sigmoid(w_o @ x + u_o @ h + b_o)
    g = np.tanh(w_g @ x + u_g @ h + b_g)
    c_next = f * c + i * g
    h_next = o * np.tanh(c_next)
    return h_next, c_next


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Depthwise 2-D convolution: one filter per input channel.

    The core primitive of MobileNet's depthwise-separable blocks (the
    paper names MobileNet as the suite's next addition).

    Args:
        x: Input of shape ``(C, H, W)``.
        weight: Per-channel filters of shape ``(C, kh, kw)``.
        bias: Optional per-channel bias of shape ``(C,)``.
        stride: Spatial stride.
        pad: Symmetric zero padding.

    Returns:
        Output of shape ``(C, out_h, out_w)``.
    """
    c, h, w = x.shape
    if weight.shape[0] != c:
        raise ValueError(f"input has {c} channels, filters expect {weight.shape[0]}")
    _, kh, kw = weight.shape
    out_h = conv_out_dim(h, kh, stride, pad)
    out_w = conv_out_dim(w, kw, stride, pad)
    xp = pad_chw(x, pad)
    s0, s1, s2 = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(c, out_h, out_w, kh, kw),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    out = np.einsum("cyxij,cij->cyx", windows, weight)
    if bias is not None:
        out += bias[:, None, None]
    return out
