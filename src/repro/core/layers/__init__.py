"""Layer primitives used by the Tango networks.

:mod:`repro.core.layers.functional` holds the pure NumPy math;
:mod:`repro.core.layers.defs` holds the layer specification classes that
carry hyper-parameters, infer shapes, declare weight tensors, and invoke
the functional implementations.
"""

from repro.core.layers.defs import (
    DepthwiseConv2D,
    FC,
    LRN,
    BatchNorm,
    Concat,
    Conv2D,
    Eltwise,
    GRUCell,
    Layer,
    LSTMCell,
    Pool2D,
    ReLU,
    Scale,
    Softmax,
)

__all__ = [
    "DepthwiseConv2D",
    "BatchNorm",
    "Concat",
    "Conv2D",
    "Eltwise",
    "FC",
    "GRUCell",
    "LRN",
    "LSTMCell",
    "Layer",
    "Pool2D",
    "ReLU",
    "Scale",
    "Softmax",
]
