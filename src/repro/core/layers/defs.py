"""Layer specification classes.

A :class:`Layer` carries the hyper-parameters of one network layer and
knows how to (a) infer its output shape, (b) declare the weight tensors
it needs, (c) execute itself on NumPy arrays, and (d) label itself with
the layer-type *category* used throughout the paper's figures (Conv,
Pooling, FC, Norm, Fire_Squeeze, Fire_Expand, Relu, Scale, Eltwise, ...).

The same specification objects feed three consumers: the functional
executor (:mod:`repro.core.graph`), the kernel compiler
(:mod:`repro.kernels`), and the CUDA/OpenCL source emitters
(:mod:`repro.codegen`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.layers import functional as F

Shape = tuple[int, ...]


@dataclass
class Layer:
    """Base class for all layer specifications."""

    #: Category label used by the paper's per-layer-type figures.
    category: str = field(default="Others", init=False)

    @property
    def n_inputs(self) -> int:
        """Number of dataflow inputs the layer consumes."""
        return 1

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        """Infer the output tensor shape from the input shapes."""
        raise NotImplementedError

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        """Declare the weight tensors (name -> shape) this layer needs."""
        return {}

    def forward(
        self, inputs: Sequence[np.ndarray], weights: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Execute the layer on NumPy inputs."""
        raise NotImplementedError

    def macs(self, in_shapes: Sequence[Shape]) -> int:
        """Multiply-accumulate count, used by the FPGA analytic model."""
        return 0

    def activation_bytes(self, in_shapes: Sequence[Shape]) -> int:
        """Bytes of the output activation tensor (f32)."""
        return 4 * int(np.prod(self.out_shape(in_shapes)))

    def weight_bytes(self, in_shapes: Sequence[Shape]) -> int:
        """Bytes of all weight tensors (f32)."""
        return 4 * sum(
            int(np.prod(shape)) for shape in self.weight_shapes(in_shapes).values()
        )


@dataclass
class Conv2D(Layer):
    """2-D convolution, optionally fused with bias and ReLU.

    ``fire_role`` marks SqueezeNet fire-module convolutions so the
    characterization can separate Fire_Squeeze / Fire_Expand layers from
    plain convolutions, exactly as the paper's Figure 1 does.
    """

    out_channels: int = 0
    kernel: int = 1
    stride: int = 1
    pad: int = 0
    bias: bool = True
    relu: bool = False
    fire_role: str | None = None  # None | "squeeze" | "expand"

    def __post_init__(self) -> None:
        if self.fire_role is None:
            self.category = "Conv"
        elif self.fire_role == "squeeze":
            self.category = "Fire_Squeeze"
        elif self.fire_role == "expand":
            self.category = "Fire_Expand"
        else:
            raise ValueError(f"unknown fire_role {self.fire_role!r}")
        if self.out_channels <= 0:
            raise ValueError("Conv2D needs a positive out_channels")

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        c, h, w = in_shapes[0]
        oh = F.conv_out_dim(h, self.kernel, self.stride, self.pad)
        ow = F.conv_out_dim(w, self.kernel, self.stride, self.pad)
        return (self.out_channels, oh, ow)

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        c_in = in_shapes[0][0]
        shapes: dict[str, Shape] = {
            "weight": (self.out_channels, c_in, self.kernel, self.kernel)
        }
        if self.bias:
            shapes["bias"] = (self.out_channels,)
        return shapes

    def forward(self, inputs, weights):
        out = F.conv2d(
            inputs[0],
            weights["weight"],
            weights.get("bias"),
            stride=self.stride,
            pad=self.pad,
        )
        return F.relu(out) if self.relu else out

    def macs(self, in_shapes: Sequence[Shape]) -> int:
        c_in = in_shapes[0][0]
        _, oh, ow = self.out_shape(in_shapes)
        return self.out_channels * oh * ow * c_in * self.kernel * self.kernel


@dataclass
class Pool2D(Layer):
    """Max or average pooling; ``global_pool`` reduces the whole map."""

    kind: str = "max"  # "max" | "avg"
    kernel: int = 2
    stride: int = 2
    pad: int = 0
    global_pool: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("max", "avg"):
            raise ValueError(f"unknown pooling kind {self.kind!r}")
        self.category = "Pooling"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        c, h, w = in_shapes[0]
        if self.global_pool:
            return (c,)
        oh = F.conv_out_dim(h, self.kernel, self.stride, self.pad)
        ow = F.conv_out_dim(w, self.kernel, self.stride, self.pad)
        return (c, oh, ow)

    def forward(self, inputs, weights):
        x = inputs[0]
        if self.global_pool:
            return F.global_avg_pool(x)
        if self.kind == "max":
            return F.max_pool2d(x, self.kernel, self.stride, self.pad)
        return F.avg_pool2d(x, self.kernel, self.stride, self.pad)


@dataclass
class FC(Layer):
    """Fully-connected layer, optionally fused with ReLU."""

    out_features: int = 0
    relu: bool = False

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ValueError("FC needs a positive out_features")
        self.category = "FC"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.out_features,)

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        in_features = int(np.prod(in_shapes[0]))
        return {
            "weight": (self.out_features, in_features),
            "bias": (self.out_features,),
        }

    def forward(self, inputs, weights):
        out = F.fully_connected(inputs[0], weights["weight"], weights["bias"])
        return F.relu(out) if self.relu else out

    def macs(self, in_shapes: Sequence[Shape]) -> int:
        return self.out_features * int(np.prod(in_shapes[0]))


@dataclass
class LRN(Layer):
    """Local response normalization (AlexNet's Norm layers)."""

    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75

    def __post_init__(self) -> None:
        self.category = "Norm"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def forward(self, inputs, weights):
        return F.lrn(inputs[0], self.local_size, self.alpha, self.beta)


@dataclass
class BatchNorm(Layer):
    """Inference batch normalization with stored mean/variance."""

    eps: float = 1e-5

    def __post_init__(self) -> None:
        self.category = "Norm"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        c = in_shapes[0][0]
        return {"mean": (c,), "var": (c,)}

    def forward(self, inputs, weights):
        return F.batch_norm(inputs[0], weights["mean"], weights["var"], self.eps)


@dataclass
class Scale(Layer):
    """Per-channel affine scale (ResNet's Scale kernels)."""

    def __post_init__(self) -> None:
        self.category = "Scale"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        c = in_shapes[0][0]
        return {"gamma": (c,), "beta": (c,)}

    def forward(self, inputs, weights):
        return F.scale(inputs[0], weights["gamma"], weights["beta"])


@dataclass
class ReLU(Layer):
    """Stand-alone rectified linear unit (ResNet lists ReLU kernels)."""

    def __post_init__(self) -> None:
        self.category = "Relu"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def forward(self, inputs, weights):
        return F.relu(inputs[0])


@dataclass
class Eltwise(Layer):
    """Element-wise addition of two tensors (ResNet shortcut join)."""

    def __post_init__(self) -> None:
        self.category = "Eltwise"

    @property
    def n_inputs(self) -> int:
        return 2

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if in_shapes[0] != in_shapes[1]:
            raise ValueError(f"eltwise inputs differ: {in_shapes[0]} vs {in_shapes[1]}")
        return in_shapes[0]

    def forward(self, inputs, weights):
        return F.eltwise_add(inputs[0], inputs[1])


@dataclass
class Concat(Layer):
    """Channel concatenation (SqueezeNet expand 1x1 || expand 3x3)."""

    def __post_init__(self) -> None:
        self.category = "Others"

    @property
    def n_inputs(self) -> int:
        return 2

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c0, h0, w0), (c1, h1, w1) = in_shapes[0], in_shapes[1]
        if (h0, w0) != (h1, w1):
            raise ValueError("concat inputs must share spatial dims")
        return (c0 + c1, h0, w0)

    def forward(self, inputs, weights):
        return np.concatenate([inputs[0], inputs[1]], axis=0)


@dataclass
class Softmax(Layer):
    """Softmax over class scores."""

    def __post_init__(self) -> None:
        self.category = "Others"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def forward(self, inputs, weights):
        return F.softmax(inputs[0])


@dataclass
class GRUCell(Layer):
    """One GRU layer applied over a short input sequence.

    The paper's GRU benchmark feeds two days of bitcoin prices through a
    single recurrent layer; the input shape is ``(seq_len, input_size)``
    and the output is the final hidden state.
    """

    hidden_size: int = 100
    input_size: int = 1

    def __post_init__(self) -> None:
        self.category = "GRU"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.hidden_size,)

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        h, i = self.hidden_size, self.input_size
        shapes: dict[str, Shape] = {}
        for gate in ("z", "r", "h"):
            shapes[f"w_{gate}"] = (h, i)
            shapes[f"u_{gate}"] = (h, h)
            shapes[f"b_{gate}"] = (h,)
        return shapes

    def forward(self, inputs, weights):
        seq = np.atleast_2d(inputs[0])
        h = np.zeros(self.hidden_size)
        for x_t in seq:
            h = F.gru_cell(
                x_t, h,
                weights["w_z"], weights["u_z"], weights["b_z"],
                weights["w_r"], weights["u_r"], weights["b_r"],
                weights["w_h"], weights["u_h"], weights["b_h"],
            )
        return h

    def macs(self, in_shapes: Sequence[Shape]) -> int:
        seq_len = in_shapes[0][0] if len(in_shapes[0]) > 0 else 1
        per_step = 3 * (self.hidden_size * self.input_size + self.hidden_size**2)
        return seq_len * per_step


@dataclass
class LSTMCell(Layer):
    """One LSTM layer applied over a short input sequence.

    Three gates (input, forget, output) plus the candidate path — one
    more gate than GRU, which the paper links to LSTM's higher
    data-dependency stall share.
    """

    hidden_size: int = 100
    input_size: int = 1

    def __post_init__(self) -> None:
        self.category = "LSTM"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.hidden_size,)

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        h, i = self.hidden_size, self.input_size
        shapes: dict[str, Shape] = {}
        for gate in ("i", "f", "o", "g"):
            shapes[f"w_{gate}"] = (h, i)
            shapes[f"u_{gate}"] = (h, h)
            shapes[f"b_{gate}"] = (h,)
        return shapes

    def forward(self, inputs, weights):
        seq = np.atleast_2d(inputs[0])
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        for x_t in seq:
            h, c = F.lstm_cell(
                x_t, h, c,
                weights["w_i"], weights["u_i"], weights["b_i"],
                weights["w_f"], weights["u_f"], weights["b_f"],
                weights["w_o"], weights["u_o"], weights["b_o"],
                weights["w_g"], weights["u_g"], weights["b_g"],
            )
        return h

    def macs(self, in_shapes: Sequence[Shape]) -> int:
        seq_len = in_shapes[0][0] if len(in_shapes[0]) > 0 else 1
        per_step = 4 * (self.hidden_size * self.input_size + self.hidden_size**2)
        return seq_len * per_step


@dataclass
class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution: one k x k filter per channel.

    The building block of MobileNet's depthwise-separable convolutions —
    the network the paper names as the suite's next addition ("We are
    currently developing more networks such as MobileNet").
    """

    kernel: int = 3
    stride: int = 1
    pad: int = 1
    bias: bool = True
    relu: bool = True

    def __post_init__(self) -> None:
        self.category = "Conv"

    def out_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        c, h, w = in_shapes[0]
        oh = F.conv_out_dim(h, self.kernel, self.stride, self.pad)
        ow = F.conv_out_dim(w, self.kernel, self.stride, self.pad)
        return (c, oh, ow)

    def weight_shapes(self, in_shapes: Sequence[Shape]) -> dict[str, Shape]:
        c = in_shapes[0][0]
        shapes: dict[str, Shape] = {"weight": (c, self.kernel, self.kernel)}
        if self.bias:
            shapes["bias"] = (c,)
        return shapes

    def forward(self, inputs, weights):
        out = F.depthwise_conv2d(
            inputs[0],
            weights["weight"],
            weights.get("bias"),
            stride=self.stride,
            pad=self.pad,
        )
        return F.relu(out) if self.relu else out

    def macs(self, in_shapes: Sequence[Shape]) -> int:
        c, oh, ow = self.out_shape(in_shapes)
        return c * oh * ow * self.kernel * self.kernel
