"""Post-training int8 quantization (the paper's planned extension).

Section IV-D of the paper: "To improve performance and power
efficiency, quantized networks have been recently introduced ...  We
plan to apply quantization for the proposed benchmark suite but the
current version uses 32-bit floating-point data".  This module supplies
that extension: symmetric per-tensor int8 quantization of the weight
store, integer-accumulated conv/FC kernels with float dequantization,
and a drop-in quantized inference runner.

The arithmetic follows the standard post-training scheme: a tensor
``x`` is stored as ``q = round(x / scale)`` clipped to [-127, 127], a
conv/FC computes in int32 (``sum(q_w * q_x)``) and rescales by
``scale_w * scale_x``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import INPUT, NetworkGraph
from repro.core.layers.defs import FC, Conv2D, DepthwiseConv2D
from repro.core.layers import functional as F

#: Symmetric int8 uses the full [-127, 127] range (no -128: keeps the
#: scheme symmetric and overflow-safe under negation).
QMAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8 tensor plus its dequantization scale."""

    values: np.ndarray  # int8
    scale: float

    def dequantize(self) -> np.ndarray:
        """Back to float32."""
        return self.values.astype(np.float32) * self.scale

    @property
    def nbytes(self) -> int:
        """Storage cost: one byte per element."""
        return self.values.size


def quantize(x: np.ndarray) -> QuantizedTensor:
    """Symmetric per-tensor int8 quantization."""
    peak = float(np.abs(x).max())
    scale = peak / QMAX if peak > 0 else 1.0
    q = np.clip(np.round(x / scale), -QMAX, QMAX).astype(np.int8)
    return QuantizedTensor(q, scale)


def quantization_error(x: np.ndarray) -> float:
    """Relative RMS error introduced by quantizing *x*."""
    q = quantize(x)
    err = q.dequantize() - x
    denom = float(np.sqrt((x * x).mean())) or 1.0
    return float(np.sqrt((err * err).mean())) / denom


def qconv2d(
    x: np.ndarray,
    q_weight: QuantizedTensor,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Convolution with int8 weights and int8-quantized activations.

    Activations are quantized on entry (per-tensor), the multiply-
    accumulate runs in int32 via the same im2col lowering as the float
    path, and the result is rescaled to float.
    """
    q_x = quantize(x)
    c_out, c_in, kh, kw = q_weight.values.shape
    cols = F.im2col(q_x.values.astype(np.int32), kh, kw, stride, pad)
    acc = q_weight.values.reshape(c_out, -1).astype(np.int32) @ cols
    out_h = F.conv_out_dim(x.shape[1], kh, stride, pad)
    out_w = F.conv_out_dim(x.shape[2], kw, stride, pad)
    out = acc.reshape(c_out, out_h, out_w).astype(np.float32)
    out *= q_weight.scale * q_x.scale
    if bias is not None:
        out += bias[:, None, None]
    return out


def qfc(
    x: np.ndarray, q_weight: QuantizedTensor, bias: np.ndarray | None
) -> np.ndarray:
    """Fully-connected layer with int8 weights/activations."""
    q_x = quantize(x.reshape(-1))
    acc = q_weight.values.astype(np.int32) @ q_x.values.astype(np.int32)
    out = acc.astype(np.float32) * (q_weight.scale * q_x.scale)
    if bias is not None:
        out = out + bias
    return out


#: Layer types whose weights get quantized (the MAC-heavy ones).
_QUANTIZABLE = (Conv2D, DepthwiseConv2D, FC)


def quantize_weights(
    graph: NetworkGraph, weights: dict[str, dict[str, np.ndarray]]
) -> dict[str, QuantizedTensor]:
    """Quantize every conv/FC weight tensor of the store.

    Returns node name -> quantized weight; biases stay float (standard
    practice — they are tiny and added after the int32 accumulate).
    """
    quantized: dict[str, QuantizedTensor] = {}
    for node in graph.nodes:
        if isinstance(node.layer, _QUANTIZABLE) and "weight" in weights.get(node.name, {}):
            quantized[node.name] = quantize(weights[node.name]["weight"])
    return quantized


def quantized_model_bytes(
    graph: NetworkGraph, weights: dict[str, dict[str, np.ndarray]]
) -> int:
    """Model size after int8-quantizing the conv/FC weights."""
    total = 0
    quantized_nodes = quantize_weights(graph, weights)
    for node_name, tensors in weights.items():
        for tensor_name, array in tensors.items():
            if tensor_name == "weight" and node_name in quantized_nodes:
                total += array.size  # 1 byte/element
            else:
                total += array.nbytes
    return total


def run_quantized(
    graph: NetworkGraph,
    x: np.ndarray,
    weights: dict[str, dict[str, np.ndarray]],
) -> np.ndarray:
    """Run inference with int8 conv/FC layers (others stay float).

    A drop-in counterpart to :meth:`NetworkGraph.run` for studying
    quantization effects on the suite's networks.
    """
    quantized = quantize_weights(graph, weights)
    values: dict[str, np.ndarray] = {INPUT: x}
    for node in graph.nodes:
        ins = [values[src] for src in node.inputs]
        layer = node.layer
        node_weights = weights.get(node.name, {})
        if node.name in quantized and isinstance(layer, Conv2D):
            out = qconv2d(
                ins[0], quantized[node.name], node_weights.get("bias"),
                stride=layer.stride, pad=layer.pad,
            )
            if layer.relu:
                out = F.relu(out)
        elif node.name in quantized and isinstance(layer, FC):
            out = qfc(ins[0], quantized[node.name], node_weights.get("bias"))
            if layer.relu:
                out = F.relu(out)
        elif node.name in quantized and isinstance(layer, DepthwiseConv2D):
            out = F.depthwise_conv2d(
                ins[0], quantized[node.name].dequantize(), node_weights.get("bias"),
                stride=layer.stride, pad=layer.pad,
            )
            if layer.relu:
                out = F.relu(out)
        else:
            out = layer.forward(ins, node_weights)
        values[node.name] = out
    return values[graph.output_name]
