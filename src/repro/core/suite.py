"""The Tango benchmark registry — the suite's public entry point.

Mirrors the released Tango repository: seven benchmarks, each pairing a
network with its standard input and (synthetic) pre-trained model, plus
the Table I metadata describing what the original artifacts were.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.core.graph import NetworkGraph
from repro.core.inputs import input_for
from repro.core.networks import BUILDERS
from repro.core.weights import synthesize_weights


@dataclass(frozen=True)
class BenchmarkInfo:
    """Table I metadata for one benchmark."""

    name: str
    display_name: str
    kind: str  # "cnn" | "rnn"
    input_description: str
    model_description: str
    output_description: str
    languages: tuple[str, ...] = ("cuda",)


#: Table I of the paper, one row per network.
BENCHMARK_INFO: dict[str, BenchmarkInfo] = {
    "gru": BenchmarkInfo(
        "gru", "GRU", "rnn",
        "Bitcoin stock price values of past two days (scaled)",
        "Trained with bitcoin stock price database (Kaggle team-ai)",
        "Projected next stock price based on past two days' stock price",
    ),
    "lstm": BenchmarkInfo(
        "lstm", "LSTM", "rnn",
        "Bitcoin stock price values of past two days (scaled)",
        "Trained with bitcoin stock price database (Kaggle team-ai)",
        "Projected next stock price based on past two days' stock price",
    ),
    "cifarnet": BenchmarkInfo(
        "cifarnet", "CifarNet", "cnn",
        "Speed limit 35 image",
        "Traffic-signal model (github.com/chethankeshava/DeepLearningProject)",
        "Confidence level for all 9 classes",
        languages=("cuda", "opencl"),
    ),
    "alexnet": BenchmarkInfo(
        "alexnet", "AlexNet", "cnn",
        "Cat image",
        "BVLC Caffe bvlc_alexnet reference model",
        "Recognized class id",
        languages=("cuda", "opencl"),
    ),
    "squeezenet": BenchmarkInfo(
        "squeezenet", "SqueezeNet", "cnn",
        "Cat image",
        "DeepScale SqueezeNet v1.0 reference model",
        "Recognized class id",
    ),
    "resnet": BenchmarkInfo(
        "resnet", "ResNet", "cnn",
        "Cat image",
        "KaimingHe deep-residual-networks ResNet-50 model",
        "Recognized class id",
    ),
    "vggnet": BenchmarkInfo(
        "vggnet", "VGGNet", "cnn",
        "Killer whale image",
        "VGG very-deep 16-layer reference model",
        "Recognized class id",
    ),
    "mobilenet": BenchmarkInfo(
        "mobilenet", "MobileNet", "cnn",
        "Cat image",
        "MobileNet v1 (width 1.0) reference architecture, synthetic weights",
        "Recognized class id",
    ),
}

#: Canonical network ordering used by the paper's figures.
NETWORK_ORDER = ("gru", "lstm", "cifarnet", "alexnet", "squeezenet", "resnet", "vggnet")

#: Extension networks beyond the paper's seven (runnable and
#: characterizable, excluded from the paper-figure harness).
EXTENSION_NETWORKS = ("mobilenet",)

#: The CNNs characterized in the per-layer-type figures (Figs 1, 4, 13, 14).
CNN_BREAKDOWN_ORDER = ("cifarnet", "alexnet", "squeezenet", "resnet")


def list_networks() -> tuple[str, ...]:
    """Names of all benchmarks in the suite, in figure order."""
    return NETWORK_ORDER


@lru_cache(maxsize=None)
def get_network(name: str) -> NetworkGraph:
    """Build (and cache) the named network graph."""
    try:
        builder: Callable[[], NetworkGraph] = BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {', '.join(sorted(BUILDERS))}"
        ) from None
    return builder()


@dataclass
class Benchmark:
    """One runnable benchmark: network + input + synthetic model."""

    info: BenchmarkInfo
    graph: NetworkGraph
    _weights: dict | None = field(default=None, repr=False)

    @property
    def weights(self) -> dict:
        """Lazily synthesized weight store (node -> tensor -> array)."""
        if self._weights is None:
            self._weights = synthesize_weights(self.graph)
        return self._weights

    def standard_input(self, seed: int = 2019) -> np.ndarray:
        """The benchmark's standard input tensor."""
        return input_for(self.graph, seed=seed)

    def run(self, x: np.ndarray | None = None) -> np.ndarray:
        """Run one inference; defaults to the standard input."""
        if x is None:
            x = self.standard_input()
        return self.graph.run(x, self.weights)


class TangoSuite:
    """The full benchmark suite.

    Example::

        suite = TangoSuite()
        result = suite["alexnet"].run()     # 1000 class probabilities
        for bench in suite:                  # iterate in figure order
            print(bench.info.display_name)
    """

    def __init__(self, names: tuple[str, ...] = NETWORK_ORDER):
        self._benchmarks = {
            name: Benchmark(BENCHMARK_INFO[name], get_network(name)) for name in names
        }

    def __getitem__(self, name: str) -> Benchmark:
        return self._benchmarks[name]

    def __iter__(self):
        return iter(self._benchmarks.values())

    def __len__(self) -> int:
        return len(self._benchmarks)

    @property
    def names(self) -> tuple[str, ...]:
        """Benchmark names in registration order."""
        return tuple(self._benchmarks)
