"""Synthetic benchmark inputs, mirroring the paper's Table I.

Table I assigns each network a concrete input: a speed-limit-35 sign for
CifarNet, cat images for AlexNet/SqueezeNet/ResNet, a killer-whale image
for VGGNet, and the past two days' scaled bitcoin prices for GRU/LSTM.
Those exact images/prices are not redistributable, so this module
synthesizes deterministic stand-ins with the correct shapes and value
ranges; the architectural characterization depends only on shapes.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import NetworkGraph


def synthetic_image(shape: tuple[int, int, int], seed: int) -> np.ndarray:
    """A deterministic CHW float image with smooth spatial structure.

    Smoothness (a sum of low-frequency sinusoids plus mild noise) makes
    the pixel statistics image-like rather than white noise, which keeps
    ReLU zero-fractions and value ranges realistic.
    """
    c, h, w = shape
    rng = np.random.default_rng(seed)
    ys = np.linspace(0.0, 2.0 * np.pi, h)[None, :, None]
    xs = np.linspace(0.0, 2.0 * np.pi, w)[None, None, :]
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(c, 1, 1))
    freq_y = rng.uniform(0.5, 3.0, size=(c, 1, 1))
    freq_x = rng.uniform(0.5, 3.0, size=(c, 1, 1))
    image = 0.5 + 0.4 * np.sin(freq_y * ys + phases) * np.cos(freq_x * xs)
    image += rng.normal(0.0, 0.05, size=(c, h, w))
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def bitcoin_prices(seq_len: int = 2, seed: int = 7) -> np.ndarray:
    """Scaled bitcoin closing prices for the past *seq_len* days.

    A deterministic geometric random walk scaled to [0, 1], standing in
    for the Kaggle bitcoin price dataset of Table I.  Shape is
    ``(seq_len, 1)`` — one scalar price per day.
    """
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, 0.02, size=seq_len + 30)
    walk = 6000.0 * np.exp(np.cumsum(steps))
    window = walk[-seq_len:]
    lo, hi = walk.min(), walk.max()
    scaled = (window - lo) / (hi - lo)
    return scaled.reshape(seq_len, 1).astype(np.float32)


def input_for(graph: NetworkGraph, seed: int = 2019) -> np.ndarray:
    """Produce the standard benchmark input for *graph*."""
    shape = graph.input_shape
    if len(shape) == 3:
        return synthetic_image(shape, seed=seed)
    if len(shape) == 2:
        return bitcoin_prices(seq_len=shape[0], seed=seed)
    raise ValueError(f"no input synthesizer for shape {shape}")
