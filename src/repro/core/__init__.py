"""The Tango benchmark suite: networks, layers, inputs and weights.

This package is the paper's primary contribution — the benchmark suite
itself.  It contains:

* :mod:`repro.core.layers` -- framework-free implementations of every
  layer primitive the seven networks use, decomposed into fundamental
  mathematical computations exactly as the paper's CUDA kernels are.
* :mod:`repro.core.graph` -- the small layer-graph representation shared
  by functional execution, kernel compilation and code generation.
* :mod:`repro.core.networks` -- the five CNNs (CifarNet, AlexNet,
  SqueezeNet, ResNet-50, VGGNet-16) and two RNNs (GRU, LSTM).
* :mod:`repro.core.weights` / :mod:`repro.core.inputs` -- deterministic
  synthetic pre-trained models and inputs standing in for the paper's
  Table I artifacts (see DESIGN.md for the substitution rationale).
* :mod:`repro.core.suite` -- the benchmark registry, the public entry
  point mirroring the released Tango repository layout.
"""

from repro.core.suite import TangoSuite, get_network, list_networks

__all__ = ["TangoSuite", "get_network", "list_networks"]
