"""Deterministic synthetic pre-trained models.

The paper feeds each network a pre-trained Caffe/Keras model file
(Table I: BVLC AlexNet, DeepScale SqueezeNet v1.0, KaimingHe ResNet-50,
VGG's very-deep release, a traffic-signal CifarNet, and bitcoin-price
GRU/LSTM models) partitioned into per-layer weight files.  Those
artifacts are not redistributable here and no network access is
available, so this module synthesizes weight tensors with the *exact
shapes* of the reference models and realistic statistics (fan-in-scaled
Gaussians, positive variances for BatchNorm).  All architectural results
(memory footprint, instruction mix, cache behaviour, timing) depend on
tensor shapes, not values — DESIGN.md records the substitution.

Weights are deterministic: the RNG is seeded from the network name, the
node name and the tensor name, so repeated runs and parallel test
workers see identical models.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.graph import NetworkGraph


def _seed_for(*parts: str) -> int:
    """Stable 64-bit seed derived from string parts."""
    digest = hashlib.sha256("/".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def synthesize_tensor(shape: tuple[int, ...], kind: str, rng: np.random.Generator) -> np.ndarray:
    """Create one weight tensor with statistics matching its role.

    ``kind`` is the tensor name declared by the layer ("weight", "bias",
    "mean", "var", "gamma", "beta", "w_z", "u_i", ...).
    """
    if kind == "var":
        # Stored batch-norm variances are strictly positive.
        return rng.uniform(0.5, 1.5, size=shape)
    if kind in ("gamma",):
        return rng.uniform(0.8, 1.2, size=shape)
    if kind in ("bias", "beta", "mean") or kind.startswith("b_"):
        return rng.normal(0.0, 0.05, size=shape)
    # Convolution / FC / recurrent matrices: He-style fan-in scaling keeps
    # activations in a sane range through deep stacks.
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    std = float(np.sqrt(2.0 / max(1, fan_in)))
    return rng.normal(0.0, std, size=shape)


def synthesize_weights(graph: NetworkGraph) -> dict[str, dict[str, np.ndarray]]:
    """Build the full weight store for *graph*: node -> tensor -> array."""
    store: dict[str, dict[str, np.ndarray]] = {}
    for node_name, tensors in graph.weight_shapes().items():
        node_store: dict[str, np.ndarray] = {}
        for tensor_name, shape in tensors.items():
            rng = np.random.default_rng(_seed_for(graph.name, node_name, tensor_name))
            node_store[tensor_name] = synthesize_tensor(shape, tensor_name, rng).astype(
                np.float32
            )
        store[node_name] = node_store
    return store


def model_size_bytes(graph: NetworkGraph) -> int:
    """Total f32 model size in bytes (the paper's pre-trained model size)."""
    return graph.total_weight_bytes()


def per_layer_weight_bytes(graph: NetworkGraph) -> dict[str, int]:
    """Per-layer weight file sizes, mirroring Tango's partitioned files."""
    sizes: dict[str, int] = {}
    for node in graph.nodes:
        size = node.layer.weight_bytes(graph.in_shapes(node))
        if size:
            sizes[node.name] = size
    return sizes
