"""Layer graphs: the single source of truth for every network.

A :class:`NetworkGraph` is a small DAG of named :class:`Node` objects,
each wrapping a :class:`~repro.core.layers.defs.Layer`.  The same graph
feeds three consumers:

* functional inference (:meth:`NetworkGraph.run`),
* the kernel compiler (which walks :attr:`NetworkGraph.nodes` in
  invocation order, mirroring the paper's Table III kernel sequence),
* the CUDA/OpenCL code generators.

Shape inference runs eagerly at construction so that a malformed network
fails fast with the offending node named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.layers.defs import Layer, Shape

#: Reserved name of the graph's input tensor.
INPUT = "input"


@dataclass(frozen=True)
class Node:
    """One layer instance in a network graph.

    Attributes:
        name: Unique layer name (e.g. ``"conv1"``, ``"fire2/squeeze1x1"``).
        layer: The layer specification.
        inputs: Names of the producer nodes (or :data:`INPUT`).
    """

    name: str
    layer: Layer
    inputs: tuple[str, ...]


class NetworkGraph:
    """A named DNN as a topologically-ordered layer DAG."""

    def __init__(self, name: str, input_shape: Shape, display_name: str | None = None):
        self.name = name
        self.display_name = display_name or name
        self.input_shape = input_shape
        self.nodes: list[Node] = []
        self._by_name: dict[str, Node] = {}
        self._shapes: dict[str, Shape] = {INPUT: input_shape}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, name: str, layer: Layer, inputs: str | Sequence[str] = INPUT) -> str:
        """Append a node; returns its name so chains read naturally."""
        if name in self._by_name or name == INPUT:
            raise ValueError(f"duplicate node name {name!r} in {self.name}")
        if isinstance(inputs, str):
            inputs = (inputs,)
        inputs = tuple(inputs)
        for src in inputs:
            if src != INPUT and src not in self._by_name:
                raise ValueError(f"node {name!r} consumes unknown node {src!r}")
        if len(inputs) != layer.n_inputs:
            raise ValueError(
                f"node {name!r}: layer expects {layer.n_inputs} inputs, got {len(inputs)}"
            )
        node = Node(name, layer, inputs)
        # Eager shape inference: fail at construction time.
        in_shapes = [self._shapes[src] for src in inputs]
        self._shapes[name] = layer.out_shape(in_shapes)
        self.nodes.append(node)
        self._by_name[name] = node
        return name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self._by_name[name]

    def in_shapes(self, node: Node) -> list[Shape]:
        """Input shapes of *node*."""
        return [self._shapes[src] for src in node.inputs]

    def out_shape(self, name: str) -> Shape:
        """Output shape of node *name* (or of :data:`INPUT`)."""
        return self._shapes[name]

    @property
    def output_name(self) -> str:
        """Name of the final node (the network output)."""
        if not self.nodes:
            raise ValueError(f"network {self.name} has no nodes")
        return self.nodes[-1].name

    def weight_shapes(self) -> dict[str, dict[str, Shape]]:
        """All weight tensors: node name -> tensor name -> shape."""
        return {
            node.name: node.layer.weight_shapes(self.in_shapes(node))
            for node in self.nodes
            if node.layer.weight_shapes(self.in_shapes(node))
        }

    def total_weight_bytes(self) -> int:
        """Model size in bytes (f32), the paper's "pre-trained model size"."""
        return sum(
            node.layer.weight_bytes(self.in_shapes(node)) for node in self.nodes
        )

    def categories(self) -> list[str]:
        """Distinct layer categories present, in first-seen order."""
        seen: dict[str, None] = {}
        for node in self.nodes:
            seen.setdefault(node.layer.category, None)
        return list(seen)

    # ------------------------------------------------------------------
    # functional execution
    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        weights: Mapping[str, Mapping[str, np.ndarray]],
        record: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Run inference on input *x* with the given weight store.

        Args:
            x: Input tensor matching :attr:`input_shape`.
            weights: node name -> tensor name -> array.
            record: Optional dict that, if given, receives every
                intermediate activation keyed by node name.

        Returns:
            The output of the final node.
        """
        if tuple(x.shape) != tuple(self.input_shape):
            raise ValueError(
                f"{self.name}: input shape {x.shape} != expected {self.input_shape}"
            )
        values: dict[str, np.ndarray] = {INPUT: x}
        for node in self.nodes:
            ins = [values[src] for src in node.inputs]
            out = node.layer.forward(ins, weights.get(node.name, {}))
            expected = self._shapes[node.name]
            if tuple(out.shape) != tuple(expected):
                raise AssertionError(
                    f"{self.name}/{node.name}: produced {out.shape}, inferred {expected}"
                )
            values[node.name] = out
            if record is not None:
                record[node.name] = out
        return values[self.output_name]


class SequentialBuilder:
    """Convenience builder for mostly-linear networks.

    Tracks the "current" node so plain chains don't have to thread names
    by hand, while still allowing explicit fan-in (ResNet shortcuts,
    SqueezeNet concats) via the ``inputs`` argument.
    """

    def __init__(self, graph: NetworkGraph):
        self.graph = graph
        self.head = INPUT

    def add(self, name: str, layer: Layer, inputs: str | Sequence[str] | None = None) -> str:
        """Append a layer; defaults to consuming the current head."""
        self.head = self.graph.add(name, layer, self.head if inputs is None else inputs)
        return self.head
