"""ResNet-50: deep residual network with bottleneck shortcut blocks.

He et al.'s 50-layer residual network.  The paper implements the Caffe
release, where every convolution is followed by separate BatchNorm and
Scale kernels and the shortcut join is an Eltwise kernel followed by a
ReLU kernel — Table III lists exactly this Conv/BatchNorm/Scale/ReLU/
Eltwise sequence for the first 24 layers.  Inputs are three-channel
224x224 images; output is a 1000-way classification (Section III-A.3).

Structure: conv1 (7x7/2, 64) + max pool, then four stages of bottleneck
blocks (3, 4, 6, 3 blocks with widths 64/128/256/512), global average
pool and a single fully-connected layer.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph
from repro.core.layers import FC, BatchNorm, Conv2D, Eltwise, Pool2D, ReLU, Scale, Softmax

NUM_CLASSES = 1000

#: (blocks, bottleneck width) per stage; output channels are 4x width.
STAGE_PLAN: tuple[tuple[int, int], ...] = ((3, 64), (4, 128), (6, 256), (3, 512))


def _conv_bn_scale(
    graph: NetworkGraph,
    name: str,
    src: str,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
    relu: bool = True,
) -> str:
    """Append the Caffe-style Conv -> BatchNorm -> Scale (-> ReLU) chain."""
    head = graph.add(
        f"{name}", Conv2D(out_channels=out_channels, kernel=kernel, stride=stride, pad=pad, bias=False), src
    )
    head = graph.add(f"bn_{name}", BatchNorm(), head)
    head = graph.add(f"scale_{name}", Scale(), head)
    if relu:
        head = graph.add(f"relu_{name}", ReLU(), head)
    return head


def _bottleneck(graph: NetworkGraph, name: str, src: str, width: int, stride: int, project: bool) -> str:
    """Append one bottleneck block: 1x1 / 3x3 / 1x1 plus the shortcut."""
    out_channels = width * 4
    main = _conv_bn_scale(graph, f"{name}_branch2a", src, width, kernel=1, stride=stride)
    main = _conv_bn_scale(graph, f"{name}_branch2b", main, width, kernel=3, pad=1)
    main = _conv_bn_scale(graph, f"{name}_branch2c", main, out_channels, kernel=1, relu=False)
    if project:
        shortcut = _conv_bn_scale(
            graph, f"{name}_branch1", src, out_channels, kernel=1, stride=stride, relu=False
        )
    else:
        shortcut = src
    head = graph.add(f"{name}_eltwise", Eltwise(), (shortcut, main))
    return graph.add(f"relu_{name}", ReLU(), head)


def build_resnet50() -> NetworkGraph:
    """Build the ResNet-50 graph (input 3x224x224, 1000 classes)."""
    graph = NetworkGraph("resnet", (3, 224, 224), display_name="ResNet")
    head = _conv_bn_scale(graph, "conv1", "input", 64, kernel=7, stride=2, pad=3)
    head = graph.add("pool1", Pool2D(kind="max", kernel=3, stride=2, pad=1), head)
    for stage_index, (blocks, width) in enumerate(STAGE_PLAN, start=2):
        for block_index in range(blocks):
            name = f"res{stage_index}{chr(ord('a') + block_index)}"
            stride = 2 if (block_index == 0 and stage_index > 2) else 1
            head = _bottleneck(
                graph, name, head, width, stride=stride, project=(block_index == 0)
            )
    head = graph.add("pool5", Pool2D(global_pool=True), head)
    head = graph.add("fc1000", FC(out_features=NUM_CLASSES), head)
    graph.add("softmax", Softmax(), head)
    return graph
