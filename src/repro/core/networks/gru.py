"""GRU: a gated recurrent unit forecasting the next bitcoin price.

The paper's GRU benchmark is a single recurrent layer with reset and
update gates (two gates — LSTM's forget and input gates merged into one
update gate) that receives the scaled bitcoin prices of the past two
days and projects the next price (Sections III-B.2 and Table I).  The
kernel runs one thread per hidden neuron with a (10, 10, 1) thread block
— hence a hidden size of 100 (Table III).
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import FC, GRUCell

#: Hidden state width implied by Table III's (10, 10, 1) block.
HIDDEN_SIZE = 100
#: The model consumes the past two days of prices.
SEQ_LEN = 2


def build_gru() -> NetworkGraph:
    """Build the GRU graph (input: 2 scaled prices, output: next price)."""
    graph = NetworkGraph("gru", (SEQ_LEN, 1), display_name="GRU")
    net = SequentialBuilder(graph)
    net.add("gru_layer", GRUCell(hidden_size=HIDDEN_SIZE, input_size=1))
    net.add("projection", FC(out_features=1))
    return graph
