"""LSTM: a long short-term memory network forecasting bitcoin prices.

The paper's LSTM benchmark mirrors the GRU one but uses the full LSTM
cell with input, output and forget gates (Sections III-B.1 and Table I):
past two days' scaled prices in, projected next price out.  The kernel
runs one thread per hidden neuron with a (100, 1, 1) thread block —
hidden size 100 (Table III).
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import FC, LSTMCell

#: Hidden state width implied by Table III's (100, 1, 1) block.
HIDDEN_SIZE = 100
#: The model consumes the past two days of prices.
SEQ_LEN = 2


def build_lstm() -> NetworkGraph:
    """Build the LSTM graph (input: 2 scaled prices, output: next price)."""
    graph = NetworkGraph("lstm", (SEQ_LEN, 1), display_name="LSTM")
    net = SequentialBuilder(graph)
    net.add("lstm_layer", LSTMCell(hidden_size=HIDDEN_SIZE, input_size=1))
    net.add("projection", FC(out_features=1))
    return graph
