"""SqueezeNet v1.0: fire modules for AlexNet-level accuracy at 1/50 size.

Each fire module is a 1x1 *squeeze* convolution followed by an *expand*
stage mixing 1x1 and 3x3 convolutions whose outputs are concatenated
(Iandola et al., 2016).  The paper's suite implements v1.0: conv1 (7x7/2)
+ max pool, fire2-4, max pool, fire5-8, max pool, fire9, conv10 (1x1,
1000 channels) and a global average pool (Section III-A.4, Table III).
Inputs are three-channel 227x227 images.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import Concat, Conv2D, Pool2D, Softmax

NUM_CLASSES = 1000

#: Fire module channel plans: name -> (squeeze, expand1x1, expand3x3).
FIRE_PLAN: dict[str, tuple[int, int, int]] = {
    "fire2": (16, 64, 64),
    "fire3": (16, 64, 64),
    "fire4": (32, 128, 128),
    "fire5": (32, 128, 128),
    "fire6": (48, 192, 192),
    "fire7": (48, 192, 192),
    "fire8": (64, 256, 256),
    "fire9": (64, 256, 256),
}


def _fire(net: SequentialBuilder, name: str) -> None:
    """Append one fire module: squeeze 1x1, expand 1x1 || expand 3x3."""
    squeeze, expand1, expand3 = FIRE_PLAN[name]
    s = net.add(
        f"{name}/squeeze1x1",
        Conv2D(out_channels=squeeze, kernel=1, relu=True, fire_role="squeeze"),
    )
    e1 = net.graph.add(
        f"{name}/expand1x1",
        Conv2D(out_channels=expand1, kernel=1, relu=True, fire_role="expand"),
        s,
    )
    e3 = net.graph.add(
        f"{name}/expand3x3",
        Conv2D(out_channels=expand3, kernel=3, pad=1, relu=True, fire_role="expand"),
        s,
    )
    net.head = net.graph.add(f"{name}/concat", Concat(), (e1, e3))


def build_squeezenet() -> NetworkGraph:
    """Build the SqueezeNet v1.0 graph (input 3x227x227, 1000 classes)."""
    graph = NetworkGraph("squeezenet", (3, 227, 227), display_name="SqueezeNet")
    net = SequentialBuilder(graph)
    net.add("conv1", Conv2D(out_channels=96, kernel=7, stride=2, relu=True))
    net.add("pool1", Pool2D(kind="max", kernel=3, stride=2))
    _fire(net, "fire2")
    _fire(net, "fire3")
    _fire(net, "fire4")
    net.add("pool4", Pool2D(kind="max", kernel=3, stride=2))
    _fire(net, "fire5")
    _fire(net, "fire6")
    _fire(net, "fire7")
    _fire(net, "fire8")
    net.add("pool8", Pool2D(kind="max", kernel=3, stride=2))
    _fire(net, "fire9")
    # The reference v1.0 prototxt gives conv10 a 1-pixel pad, producing a
    # 15x15 map — which is why Table III shows conv10 with grid (15,1,1).
    net.add("conv10", Conv2D(out_channels=NUM_CLASSES, kernel=1, pad=1, relu=True))
    net.add("pool10", Pool2D(global_pool=True))
    net.add("softmax", Softmax())
    return graph
