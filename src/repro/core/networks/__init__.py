"""The seven Tango reference networks.

Five CNNs — CifarNet, AlexNet, SqueezeNet v1.0, ResNet-50, VGGNet-16 —
and two RNNs — GRU and LSTM — built as :class:`~repro.core.graph.NetworkGraph`
objects with the exact layer sequences the paper's Table III kernels
implement.
"""

from repro.core.networks.alexnet import build_alexnet
from repro.core.networks.cifarnet import build_cifarnet
from repro.core.networks.gru import build_gru
from repro.core.networks.lstm import build_lstm
from repro.core.networks.mobilenet import build_mobilenet
from repro.core.networks.resnet import build_resnet50
from repro.core.networks.squeezenet import build_squeezenet
from repro.core.networks.vggnet import build_vggnet16

BUILDERS = {
    "cifarnet": build_cifarnet,
    "alexnet": build_alexnet,
    "squeezenet": build_squeezenet,
    "resnet": build_resnet50,
    "vggnet": build_vggnet16,
    "gru": build_gru,
    "lstm": build_lstm,
    # Extension network (paper Section III: "currently developing").
    "mobilenet": build_mobilenet,
}

__all__ = [
    "BUILDERS",
    "build_mobilenet",
    "build_alexnet",
    "build_cifarnet",
    "build_gru",
    "build_lstm",
    "build_resnet50",
    "build_squeezenet",
    "build_vggnet16",
]
