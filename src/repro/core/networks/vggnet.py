"""VGGNet-16: thirteen 3x3 convolution layers and three FC layers.

Simonyan & Zisserman's 16-layer configuration D: five conv blocks of
3x3/pad-1 filters separated by 2x2/stride-2 max pools, then FC-4096,
FC-4096 and FC-1000 with a final softmax — "13 convolution layers, three
fully-connected layers, five pooling layers, and one soft-max layer"
(Section III-A.5).  Inputs are three-channel 224x224 images.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import FC, Conv2D, Pool2D, Softmax

NUM_CLASSES = 1000

#: Convolution channel plan per block (block index -> conv widths).
BLOCK_PLAN: tuple[tuple[int, ...], ...] = (
    (64, 64),
    (128, 128),
    (256, 256, 256),
    (512, 512, 512),
    (512, 512, 512),
)


def build_vggnet16() -> NetworkGraph:
    """Build the VGGNet-16 graph (input 3x224x224, 1000 classes)."""
    graph = NetworkGraph("vggnet", (3, 224, 224), display_name="VGGNet")
    net = SequentialBuilder(graph)
    for block_index, widths in enumerate(BLOCK_PLAN, start=1):
        for conv_index, width in enumerate(widths, start=1):
            net.add(
                f"conv{block_index}_{conv_index}",
                Conv2D(out_channels=width, kernel=3, pad=1, relu=True),
            )
        net.add(f"pool{block_index}", Pool2D(kind="max", kernel=2, stride=2))
    net.add("fc6", FC(out_features=4096, relu=True))
    net.add("fc7", FC(out_features=4096, relu=True))
    net.add("fc8", FC(out_features=NUM_CLASSES))
    net.add("softmax", Softmax())
    return graph
