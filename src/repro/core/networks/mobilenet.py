"""MobileNet v1: depthwise-separable convolutions for mobile inference.

The paper closes Section III with "We are currently developing more
networks such as MobileNet.  Thus, the coverage will keep increasing" —
this module is that extension.  Standard MobileNet v1 (width 1.0):
a 3x3/2 stem, thirteen depthwise-separable blocks (3x3 depthwise +
1x1 pointwise), global average pooling and a 1000-way classifier.
Batch-norms are folded into the convolutions' bias/scale, as any
inference deployment does.

MobileNet is an *extension* network: it is fully runnable and
characterizable but excluded from the paper-figure harness, whose
network set matches the paper's seven.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import FC, Conv2D, DepthwiseConv2D, Pool2D, Softmax

NUM_CLASSES = 1000

#: (pointwise output channels, depthwise stride) per separable block.
BLOCK_PLAN: tuple[tuple[int, int], ...] = (
    (64, 1),
    (128, 2), (128, 1),
    (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
)


def build_mobilenet() -> NetworkGraph:
    """Build the MobileNet v1 graph (input 3x224x224, 1000 classes)."""
    graph = NetworkGraph("mobilenet", (3, 224, 224), display_name="MobileNet")
    net = SequentialBuilder(graph)
    net.add("conv1", Conv2D(out_channels=32, kernel=3, stride=2, pad=1, relu=True))
    for index, (channels, stride) in enumerate(BLOCK_PLAN, start=2):
        net.add(f"conv{index}_dw", DepthwiseConv2D(kernel=3, stride=stride, pad=1))
        net.add(f"conv{index}_pw", Conv2D(out_channels=channels, kernel=1, relu=True))
    net.add("pool", Pool2D(global_pool=True))
    net.add("fc", FC(out_features=NUM_CLASSES))
    net.add("softmax", Softmax())
    return graph
