"""CifarNet: three convolution layers plus two fully-connected layers.

The paper's CifarNet model is trained for traffic-signal detection over
CIFAR-sized inputs: three-channel 32x32 images in, nine output classes
fed to a softmax (Section III-A.1, Table I).  The layer sequence follows
the Caffe ``cifar10_quick`` reference the paper's repository mirrors:
conv/pool x3, then two inner-product layers, then softmax.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import FC, Conv2D, Pool2D, Softmax

#: The paper's model recognizes nine traffic signals.
NUM_CLASSES = 9


def build_cifarnet() -> NetworkGraph:
    """Build the CifarNet graph (input 3x32x32, 9-way softmax output)."""
    graph = NetworkGraph("cifarnet", (3, 32, 32), display_name="CifarNet")
    net = SequentialBuilder(graph)
    net.add("conv1", Conv2D(out_channels=32, kernel=5, pad=2, relu=True))
    net.add("pool1", Pool2D(kind="max", kernel=3, stride=2, pad=1))
    net.add("conv2", Conv2D(out_channels=32, kernel=5, pad=2, relu=True))
    net.add("pool2", Pool2D(kind="avg", kernel=3, stride=2, pad=1))
    net.add("conv3", Conv2D(out_channels=64, kernel=5, pad=2, relu=True))
    net.add("pool3", Pool2D(kind="avg", kernel=3, stride=2, pad=1))
    net.add("fc1", FC(out_features=64, relu=True))
    net.add("fc2", FC(out_features=NUM_CLASSES))
    net.add("softmax", Softmax())
    return graph
