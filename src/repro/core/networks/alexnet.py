"""AlexNet: five convolution layers and three fully-connected layers.

The first successful ILSVRC CNN (Krizhevsky et al., 2012).  The paper's
implementation takes three-channel 227x227 inputs and produces 1000
ImageNet class scores (Section III-A.2).  The kernel sequence of
Table III — Conv1 split over four kernels, two Norm (LRN) layers, three
pools, grouped Conv2/4/5 kernels, and three FC layers — corresponds to
the layer graph built here; the kernel-level splitting is applied by
:mod:`repro.kernels.mapping`.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.layers import FC, LRN, Conv2D, Pool2D, Softmax

NUM_CLASSES = 1000


def build_alexnet() -> NetworkGraph:
    """Build the AlexNet graph (input 3x227x227, 1000-way output)."""
    graph = NetworkGraph("alexnet", (3, 227, 227), display_name="AlexNet")
    net = SequentialBuilder(graph)
    net.add("conv1", Conv2D(out_channels=96, kernel=11, stride=4, relu=True))
    net.add("norm1", LRN(local_size=5))
    net.add("pool1", Pool2D(kind="max", kernel=3, stride=2))
    net.add("conv2", Conv2D(out_channels=256, kernel=5, pad=2, relu=True))
    net.add("norm2", LRN(local_size=5))
    net.add("pool2", Pool2D(kind="max", kernel=3, stride=2))
    net.add("conv3", Conv2D(out_channels=384, kernel=3, pad=1, relu=True))
    net.add("conv4", Conv2D(out_channels=384, kernel=3, pad=1, relu=True))
    net.add("conv5", Conv2D(out_channels=256, kernel=3, pad=1, relu=True))
    net.add("pool5", Pool2D(kind="max", kernel=3, stride=2))
    net.add("fc6", FC(out_features=4096, relu=True))
    net.add("fc7", FC(out_features=4096, relu=True))
    net.add("fc8", FC(out_features=NUM_CLASSES))
    net.add("softmax", Softmax())
    return graph
