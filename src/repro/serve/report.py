"""Markdown reporting for serving runs, in the harness report style."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.harness.report import markdown_report, markdown_table
from repro.serve.stats import ServeStats


def scenario_table(scenario: Mapping[str, object]) -> str:
    """Two-column parameter table describing the run scenario."""
    return markdown_table(
        ["parameter", "value"],
        [[key, value] for key, value in scenario.items()],
    )


def results_table(runs: Sequence[ServeStats]) -> str:
    """One row per run (typically one per scheduler under comparison)."""
    return markdown_table(
        ["scheduler", "p50 ms", "p95 ms", "p99 ms", "goodput rps",
         "slo viol", "shed", "completed"],
        [
            [
                stats.scheduler,
                stats.latency_p50_ms,
                stats.latency_p95_ms,
                stats.latency_p99_ms,
                stats.goodput_rps,
                stats.slo_violations,
                stats.shed,
                stats.completed,
            ]
            for stats in runs
        ],
    )


def devices_table(stats: ServeStats) -> str:
    """Per-device utilization/batching/energy table of one run."""
    return markdown_table(
        ["device", "platform", "utilization", "requests", "batches",
         "mean batch", "shed", "energy J"],
        [
            [
                device.name,
                device.platform,
                device.utilization,
                device.requests,
                device.batches,
                device.mean_batch,
                device.shed,
                round(device.energy_j, 4),
            ]
            for device in stats.devices
        ],
    )


def tenants_table(stats: ServeStats) -> str:
    """Per-tenant SLO attainment and cost-per-request table.

    Latency percentiles cover *completed* requests only; shed requests
    never ran, so they have no latency — but they do count against the
    goodput denominator, which is why attainment and goodput can
    differ.
    """
    return markdown_table(
        ["tenant", "slo ms", "prio", "offered", "completed", "shed",
         "p95 ms", "p99 ms", "slo attainment", "goodput", "J/request"],
        [
            [
                tenant.name,
                tenant.slo_ms,
                tenant.priority,
                tenant.offered,
                tenant.completed,
                tenant.shed,
                tenant.latency_p95_ms,
                tenant.latency_p99_ms,
                round(tenant.slo_attainment, 4),
                round(tenant.goodput_ratio, 4),
                round(tenant.cost_per_request_j, 6),
            ]
            for tenant in stats.per_tenant.values()
        ],
    )


def shed_table(stats: ServeStats) -> str:
    """Shed requests broken down by pipeline-stage reason."""
    return markdown_table(
        ["reason", "requests"],
        [[reason, count] for reason, count in stats.shed_reasons.items()],
    )


def serve_markdown(
    runs: Sequence[ServeStats],
    scenario: Mapping[str, object],
    title: str = "repro serve report",
) -> str:
    """The full report: scenario, results, tenant and device breakdowns."""
    sections: list[tuple[str, str]] = [
        ("Scenario", scenario_table(scenario)),
        ("Results", results_table(runs)),
    ]
    for stats in runs:
        if stats.per_tenant:
            sections.append(
                (f"Tenants — {stats.scheduler}", tenants_table(stats))
            )
        if stats.shed_reasons:
            sections.append(
                (f"Shed breakdown — {stats.scheduler}", shed_table(stats))
            )
        sections.append((f"Devices — {stats.scheduler}", devices_table(stats)))
    return markdown_report(title, sections)


def write_serve_report(
    path: str | Path,
    runs: Sequence[ServeStats],
    scenario: Mapping[str, object],
    title: str = "repro serve report",
) -> Path:
    """Write the markdown report to *path* and return it."""
    path = Path(path)
    path.write_text(serve_markdown(runs, scenario, title))
    return path
