"""Markdown reporting for serving runs, in the harness report style."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.harness.report import markdown_report, markdown_table
from repro.serve.stats import ServeStats


def scenario_table(scenario: Mapping[str, object]) -> str:
    """Two-column parameter table describing the run scenario."""
    return markdown_table(
        ["parameter", "value"],
        [[key, value] for key, value in scenario.items()],
    )


def results_table(runs: Sequence[ServeStats]) -> str:
    """One row per run (typically one per scheduler under comparison)."""
    return markdown_table(
        ["scheduler", "p50 ms", "p95 ms", "p99 ms", "goodput rps",
         "slo viol", "shed", "completed"],
        [
            [
                stats.scheduler,
                stats.latency_p50_ms,
                stats.latency_p95_ms,
                stats.latency_p99_ms,
                stats.goodput_rps,
                stats.slo_violations,
                stats.shed,
                stats.completed,
            ]
            for stats in runs
        ],
    )


def devices_table(stats: ServeStats) -> str:
    """Per-device utilization/batching/energy table of one run."""
    return markdown_table(
        ["device", "platform", "utilization", "requests", "batches",
         "mean batch", "shed", "energy J"],
        [
            [
                device.name,
                device.platform,
                device.utilization,
                device.requests,
                device.batches,
                device.mean_batch,
                device.shed,
                round(device.energy_j, 4),
            ]
            for device in stats.devices
        ],
    )


def tenants_table(stats: ServeStats) -> str:
    """Per-tenant SLO attainment and cost-per-request table.

    Latency percentiles cover *completed* requests only; shed requests
    never ran, so they have no latency — but they do count against the
    goodput denominator, which is why attainment and goodput can
    differ.
    """
    return markdown_table(
        ["tenant", "slo ms", "prio", "offered", "completed", "shed",
         "p95 ms", "p99 ms", "slo attainment", "goodput", "J/request"],
        [
            [
                tenant.name,
                tenant.slo_ms,
                tenant.priority,
                tenant.offered,
                tenant.completed,
                tenant.shed,
                tenant.latency_p95_ms,
                tenant.latency_p99_ms,
                round(tenant.slo_attainment, 4),
                round(tenant.goodput_ratio, 4),
                round(tenant.cost_per_request_j, 6),
            ]
            for tenant in stats.per_tenant.values()
        ],
    )


def shed_table(stats: ServeStats) -> str:
    """Shed requests broken down by pipeline-stage reason."""
    return markdown_table(
        ["reason", "requests"],
        [[reason, count] for reason, count in stats.shed_reasons.items()],
    )


def histograms_table(histograms: Mapping[str, Mapping[str, float]]) -> str:
    """Distribution table of the engine's histogram metrics.

    Covers the latency and batch-size histograms the serving engine
    records per run (``serve.latency_ms``, per-tenant variants,
    ``serve.batch_size``).
    """
    return markdown_table(
        ["metric", "count", "mean", "p50", "p95", "p99", "max"],
        [
            [
                name,
                h["count"],
                round(h["mean"], 3),
                round(h["p50"], 3),
                round(h["p95"], 3),
                round(h["p99"], 3),
                round(h["max"], 3),
            ]
            for name, h in sorted(histograms.items())
            if h.get("count")
        ],
    )


def gauges_table(gauges: Mapping[str, Mapping[str, float]]) -> str:
    """Last/peak table of the engine's gauges (per-device queue depths,
    fleet size)."""
    return markdown_table(
        ["gauge", "domain", "last", "max", "samples"],
        [
            [name, g["domain"], g["last"], g["max"], g["samples"]]
            for name, g in sorted(gauges.items())
        ],
    )


def serve_markdown(
    runs: Sequence[ServeStats],
    scenario: Mapping[str, object],
    title: str = "repro serve report",
    metrics: Sequence[Mapping] | None = None,
) -> str:
    """The full report: scenario, results, tenant and device breakdowns.

    ``metrics`` optionally carries one observability snapshot per run
    (a :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` payload, as
    captured by ``repro serve --report``); its histograms and gauges
    render as extra per-run sections.
    """
    sections: list[tuple[str, str]] = [
        ("Scenario", scenario_table(scenario)),
        ("Results", results_table(runs)),
    ]
    snapshots = list(metrics) if metrics else []
    for index, stats in enumerate(runs):
        if stats.per_tenant:
            sections.append(
                (f"Tenants — {stats.scheduler}", tenants_table(stats))
            )
        if stats.shed_reasons:
            sections.append(
                (f"Shed breakdown — {stats.scheduler}", shed_table(stats))
            )
        sections.append((f"Devices — {stats.scheduler}", devices_table(stats)))
        if index < len(snapshots):
            snapshot = snapshots[index]
            histograms = snapshot.get("histograms") or {}
            if any(h.get("count") for h in histograms.values()):
                sections.append((
                    f"Latency/batch histograms — {stats.scheduler}",
                    histograms_table(histograms),
                ))
            gauges = snapshot.get("gauges") or {}
            if gauges:
                sections.append((
                    f"Queue-depth gauges — {stats.scheduler}",
                    gauges_table(gauges),
                ))
    return markdown_report(title, sections)


def write_serve_report(
    path: str | Path,
    runs: Sequence[ServeStats],
    scenario: Mapping[str, object],
    title: str = "repro serve report",
    metrics: Sequence[Mapping] | None = None,
) -> Path:
    """Write the markdown report to *path* and return it."""
    path = Path(path)
    path.write_text(serve_markdown(runs, scenario, title, metrics=metrics))
    return path
