"""Markdown reporting for serving runs, in the harness report style."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.harness.report import markdown_report, markdown_table
from repro.serve.stats import ServeStats


def scenario_table(scenario: Mapping[str, object]) -> str:
    """Two-column parameter table describing the run scenario."""
    return markdown_table(
        ["parameter", "value"],
        [[key, value] for key, value in scenario.items()],
    )


def results_table(runs: Sequence[ServeStats]) -> str:
    """One row per run (typically one per scheduler under comparison)."""
    return markdown_table(
        ["scheduler", "p50 ms", "p95 ms", "p99 ms", "goodput rps",
         "slo viol", "shed", "completed"],
        [
            [
                stats.scheduler,
                stats.latency_p50_ms,
                stats.latency_p95_ms,
                stats.latency_p99_ms,
                stats.goodput_rps,
                stats.slo_violations,
                stats.shed,
                stats.completed,
            ]
            for stats in runs
        ],
    )


def devices_table(stats: ServeStats) -> str:
    """Per-device utilization/batching table of one run."""
    return markdown_table(
        ["device", "platform", "utilization", "requests", "batches",
         "mean batch", "shed"],
        [
            [
                device.name,
                device.platform,
                device.utilization,
                device.requests,
                device.batches,
                device.mean_batch,
                device.shed,
            ]
            for device in stats.devices
        ],
    )


def serve_markdown(
    runs: Sequence[ServeStats],
    scenario: Mapping[str, object],
    title: str = "repro serve report",
) -> str:
    """The full report: scenario, results, per-run device breakdowns."""
    sections: list[tuple[str, str]] = [
        ("Scenario", scenario_table(scenario)),
        ("Results", results_table(runs)),
    ]
    for stats in runs:
        sections.append((f"Devices — {stats.scheduler}", devices_table(stats)))
    return markdown_report(title, sections)


def write_serve_report(
    path: str | Path,
    runs: Sequence[ServeStats],
    scenario: Mapping[str, object],
    title: str = "repro serve report",
) -> Path:
    """Write the markdown report to *path* and return it."""
    path = Path(path)
    path.write_text(serve_markdown(runs, scenario, title))
    return path
