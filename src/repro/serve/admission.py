"""SLO-aware admission control: priority classes and load shedding.

Admission is the first stage of the request pipeline and runs in two
phases around scheduling (see DESIGN.md §15):

* **class gate** (:meth:`AdmissionPolicy.assess`, before scheduling) —
  an O(1) decision from fleet-aggregate signals: each priority class
  owns a fill threshold, and once the fleet's aggregate queue fill
  crosses a class's threshold that class is shed.  Priority 0 (highest)
  should keep a threshold of 1.0 so it only ever sheds on hard
  overflow.
* **SLO gate** (:meth:`AdmissionPolicy.place`, after the scheduler has
  named a device) — a per-request feasibility check: estimate the
  completion time on the chosen device and shed requests that cannot
  meet their tenant's SLO even if admitted.  Shedding early is kinder
  than queueing a request that is already doomed: it frees the slot
  for feasible work and gives the client an immediate reject.

The feasibility estimate is deliberately conservative in the client's
favour: remaining busy time, plus the queued backlog priced at the
device's full-batch rate for the request's own network, plus one
batch-1 inference, plus the full batching timeout as slack.  On an
idle device this reduces to ``timeout + latency(1)``, which is an
upper bound on the real latency — so admission **never sheds a
request that an idle fleet would have served within its SLO** (the
property test in ``tests/test_serve_admission.py`` pins this).

Policies are deterministic and shared verbatim by the heap and slotted
event loops, so admission decisions can never diverge between them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.serve.batching import Request
from repro.serve.devices import DeviceState
from repro.serve.tenants import Tenant

#: Shed-reason labels (stable strings; they appear in ServeStats).
SHED_OVERFLOW = "overflow"      # every queue full / scheduler found none
SHED_PRIORITY = "priority"      # class gate: low priority under load
SHED_SLO = "slo"                # SLO gate: infeasible on chosen device


class AdmissionPolicy(Protocol):
    """The admission-stage protocol (both phases)."""

    name: str

    def assess(
        self,
        request: Request,
        tenant: Tenant,
        pending_total: int,
        capacity_total: int,
        now_ms: float,
    ) -> str | None:
        """Pre-scheduling class gate: a shed reason, or None to admit."""
        ...

    def place(
        self,
        request: Request,
        tenant: Tenant,
        state: DeviceState,
        now_ms: float,
    ) -> str | None:
        """Post-scheduling SLO gate for the chosen device *state*:
        a shed reason, or None to enqueue."""
        ...


class NullAdmission:
    """Admit everything (the pre-pipeline behaviour): requests are only
    shed on hard queue overflow, which the engine handles itself."""

    name = "none"

    def assess(self, request, tenant, pending_total, capacity_total, now_ms):
        return None

    def place(self, request, tenant, state, now_ms):
        return None


class SloAwareAdmission:
    """Priority-class load shedding plus per-request SLO feasibility.

    ``priority_fill[p]`` is the aggregate fleet fill fraction (queued
    requests over total queue capacity) above which priority class
    ``p`` is shed; classes beyond the tuple share its last entry.
    Thresholds must be in (0, 1]; a leading 1.0 keeps the top class
    admitted until hard overflow.
    """

    name = "slo-aware"

    def __init__(
        self,
        priority_fill: Sequence[float] = (1.0, 0.75, 0.5),
        slo_slack: float = 1.0,
    ) -> None:
        fills = tuple(float(f) for f in priority_fill)
        if not fills:
            raise ValueError("priority_fill must name at least one class")
        for fill in fills:
            if not 0.0 < fill <= 1.0:
                raise ValueError(
                    f"priority_fill entries must be in (0, 1], got {fill}"
                )
        if slo_slack < 0:
            raise ValueError("slo_slack must be >= 0")
        self.priority_fill = fills
        #: Multiplier on the batching timeout counted as queueing slack
        #: in the feasibility estimate (1.0 = the full timeout).
        self.slo_slack = slo_slack

    def assess(self, request, tenant, pending_total, capacity_total, now_ms):
        if capacity_total <= 0:
            return SHED_OVERFLOW
        index = tenant.priority
        fills = self.priority_fill
        threshold = fills[index] if index < len(fills) else fills[-1]
        if pending_total >= threshold * capacity_total:
            return SHED_PRIORITY
        return None

    def place(self, request, tenant, state, now_ms):
        profile = state.profiles[request.network]
        busy = state.busy_until - now_ms if state.busy else 0.0
        pending = state.pending
        backlog = 0.0
        if pending:
            # Price the queued backlog at the device's full-batch rate
            # for this request's network — a cheap, monotone proxy that
            # avoids walking every per-network batcher on the hot path.
            max_batch = state.max_batch
            batches = -(-pending // max_batch)
            backlog = batches * profile.latency_ms(min(pending, max_batch))
        # With max_batch == 1 a lone request launches immediately; the
        # co-batching timeout only delays it when batching is possible.
        slack = (
            self.slo_slack * state.batch_timeout_ms if state.max_batch > 1 else 0.0
        )
        eta = busy + backlog + profile.latency_ms(1) + slack
        deadline = request.arrival_ms + tenant.slo_ms - now_ms
        if eta > deadline:
            return SHED_SLO
        return None


#: Registry of admission policy factories by name.
ADMISSION_POLICIES = {
    NullAdmission.name: NullAdmission,
    SloAwareAdmission.name: SloAwareAdmission,
}


def make_admission(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate a registered admission policy by name."""
    try:
        factory = ADMISSION_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown admission policy {name!r}; "
            f"available: {', '.join(ADMISSION_POLICIES)}"
        ) from None
    return factory(**kwargs)
