"""The discrete-event serving simulator: two event loops, one pipeline.

One :class:`ServeSim` run drives the staged request pipeline
(:mod:`repro.serve.pipeline`) over four event kinds:

* **arrival** — the request passes the admission class gate, the
  scheduler names a device, the admission SLO gate checks feasibility,
  and the survivor is enqueued (sheds record their reason; open-loop
  workloads chain the next arrival here, so the event queue stays
  O(fleet) deep);
* **flush** — a dynamic-batch deadline: an idle device launches its
  timed-out partial batch instead of waiting for it to fill;
* **complete** — a batch retires: per-request latencies, per-tenant
  SLO outcomes and energy shares are recorded, closed-loop clients
  think-and-reissue, and the freed device immediately launches its
  next ready batch (or schedules a flush for the earliest deadline);
* **tick** — the autoscaler (when configured) reads the fleet signals
  and grows or drains the fleet; ticks reschedule themselves only
  while other events remain, so they never keep a finished run alive
  (and they never advance the result clock).

Devices are work-conserving up to the batching policy: an idle device
with a non-full, non-timed-out batch *waits* for the deadline — that is
what a batch timeout means — but never holds requests beyond it, and a
device that frees up takes the oldest ready batch at once.

Determinism: all randomness flows from one ``random.Random(seed)``, the
event queue breaks ties by insertion order, and every fleet scan is in
fleet order — a fixed seed reproduces :class:`ServeStats` exactly.

**Event loops.**  ``run(loop="heap")`` drives the reference binary
heap; ``run(loop="fast")`` (the default, overridable via the
``REPRO_SERVE_LOOP`` environment variable) drives the slotted event
queue with batched same-timestamp processing
(:class:`~repro.serve.events.SlottedEventQueue`).  Both loops call the
*same* handler methods with the same arguments in the same order, so
they are unobservable from each other: ``tests/test_serve_fastpath.py``
asserts bit-identical stats digests across schedulers, workloads and
pipelines, and DESIGN.md §15 gives the argument.

When a tracer is installed (:mod:`repro.obs`), each request leaves a
queue-wait span (arrival → launch) and an execute span nested inside
its batch's span, all in simulated milliseconds
(:data:`repro.obs.tracer.SIM_MS`), plus shed/SLO counters (sheds also
by reason), batch-size, latency and per-tenant latency histograms, a
per-device queue-depth gauge and a fleet-size gauge.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from random import Random
from typing import Mapping, Sequence

from repro.obs.tracer import SIM_MS, get_tracer
from repro.platforms import make_config
from repro.serve.admission import SHED_OVERFLOW
from repro.serve.autoscale import AutoscaleSignals
from repro.serve.batching import Request
from repro.serve.devices import DeviceState, ServeDevice
from repro.serve.events import (
    ARRIVAL,
    COMPLETE,
    FLUSH,
    TICK,
    EventQueue,
    SlottedEventQueue,
)
from repro.serve.pipeline import ServePipeline, make_pipeline
from repro.serve.profiles import LatencyProfile, profiles_for_platform
from repro.serve.schedulers import make_scheduler
from repro.serve.stats import (
    DeviceServeStats,
    ServeStats,
    TenantServeStats,
    downsample,
    latency_summary,
    percentile,
)
from repro.serve.tenants import DEFAULT_TENANT_NAME, Tenant, default_tenant
from repro.serve.workload import Arrival, Workload

#: Recognized event-loop names (fast = slotted queue, heap = reference).
LOOPS = ("fast", "heap")


def default_loop() -> str:
    """The loop used when ``run(loop=None)``: ``$REPRO_SERVE_LOOP`` or fast."""
    return os.environ.get("REPRO_SERVE_LOOP", "fast")


@dataclass(frozen=True)
class ServeConfig:
    """Policy knobs of one serving run."""

    slo_ms: float = 50.0
    max_batch: int = 8
    batch_timeout_ms: float = 2.0
    max_queue: int = 256
    scheduler: str = "latency-aware"
    seed: int = 0
    #: Admission policy name (used when no explicit pipeline is given).
    admission: str = "none"


class _TenantAcc:
    """Per-tenant accumulators of one run (hot-path mutable state)."""

    __slots__ = ("tenant", "offered", "shed", "violations", "energy_j", "latencies")

    def __init__(self, tenant: Tenant) -> None:
        self.tenant = tenant
        self.offered = 0
        self.shed = 0
        self.violations = 0
        self.energy_j = 0.0
        self.latencies: list[float] = []


class ServeSim:
    """One serving simulation over a fleet, workload and pipeline."""

    def __init__(
        self,
        fleet: Sequence[ServeDevice],
        profiles: Mapping[tuple[str, str], LatencyProfile],
        workload: Workload,
        config: ServeConfig | None = None,
        pipeline: ServePipeline | None = None,
    ) -> None:
        if not fleet:
            raise ValueError("fleet must contain at least one device")
        self.config = config or ServeConfig()
        self.workload = workload
        self.pipeline = pipeline or make_pipeline(admission=self.config.admission)
        self.fleet = list(fleet)
        self._slices: list[dict[str, LatencyProfile]] = []
        for device in self.fleet:
            slice_ = profiles_for_platform(profiles, device.platform.name)
            if not slice_:
                raise ValueError(
                    f"no latency profiles for platform {device.platform.name!r}"
                )
            self._slices.append(slice_)
        scaler = self.pipeline.autoscaler
        if scaler is not None:
            self._template_platform = make_config(scaler.config.template)
            self._template_slice = profiles_for_platform(
                profiles, self._template_platform.name
            )
            if not self._template_slice:
                raise ValueError(
                    "no latency profiles for autoscale template "
                    f"{scaler.config.template!r}"
                )
        self.devices: list[DeviceState] = []

    # ------------------------------------------------------------------
    def _make_state(
        self,
        device: ServeDevice,
        slice_: Mapping[str, LatencyProfile],
        index: int,
        start_ms: float,
    ) -> DeviceState:
        config = self.config
        self._depths.append(0)
        state = DeviceState(
            device,
            slice_,
            max_batch=config.max_batch,
            batch_timeout_ms=config.batch_timeout_ms,
            max_queue=config.max_queue,
            index=index,
            depths=self._depths,
        )
        state.static_watts = max(p.static_watts for p in slice_.values())
        if start_ms:
            state.finalize(0.0)  # discard the span opened at t=0 ...
            state.active_ms = 0.0
            state.activate(start_ms)  # ... and open one at creation time
        return state

    def _setup_run(self) -> None:
        """(Re)build all per-run state: a ServeSim can run repeatedly —
        and under either event loop — from the same constructor args."""
        config = self.config
        self._depths: list[int] = []
        self.devices = []
        for index, device in enumerate(self.fleet):
            self.devices.append(
                self._make_state(device, self._slices[index], index, 0.0)
            )
        scheduler = self.pipeline.scheduler or make_scheduler(config.scheduler)
        reset = getattr(scheduler, "reset", None)
        if reset is not None:
            reset()
        attach = getattr(scheduler, "attach", None)
        if attach is not None:
            attach(self._depths, config.max_queue)
        self._scheduler = scheduler
        self._scheduler_label = getattr(scheduler, "name", config.scheduler)
        self._admission = self.pipeline.admission
        self._autoscaler = self.pipeline.autoscaler
        if self._autoscaler is not None:
            self._autoscaler.reset()
        tenants = getattr(self.workload, "tenants", None)
        if tenants:
            self._tacc = {t.name: _TenantAcc(t) for t in tenants}
        else:
            self._tacc = {
                DEFAULT_TENANT_NAME: _TenantAcc(default_tenant(config.slo_ms))
            }
        self._issued = 0
        self._offered = 0
        self._shed = 0
        self._violations = 0
        self._clock = 0.0
        self._latencies: list[float] = []
        self._per_network: dict[str, list[float]] = {}
        self._shed_reasons: dict[str, int] = {}
        self._pending_total = 0
        self._accepting_count = len(self.devices)
        self._peak_devices = self._accepting_count
        self._win_completed = 0
        self._win_good = 0
        self._drained: list[int] = []
        self._created = 0
        self._scale_events: list[list] = []
        self._tracer = get_tracer()
        self._obs = self._tracer.enabled
        self._batch_seq = 0

    # ------------------------------------------------------------------
    def run(self, loop: str | None = None) -> ServeStats:
        """Drain the workload and return the aggregate statistics.

        *loop* picks the event loop (``"fast"`` or ``"heap"``); None
        defers to :func:`default_loop`.  Both loops produce
        bit-identical statistics.
        """
        if loop is None:
            loop = default_loop()
        if loop not in LOOPS:
            raise ValueError(
                f"unknown event loop {loop!r}; available: {', '.join(LOOPS)}"
            )
        rng = Random(self.config.seed)
        self._setup_run()
        queue = SlottedEventQueue() if loop == "fast" else EventQueue()
        for arrival in self.workload.prime(rng):
            queue.push(arrival.time_ms, ARRIVAL, arrival)
            self._issued += 1
        scaler = self._autoscaler
        if scaler is not None and queue:
            queue.push(scaler.config.interval_ms, TICK, None)
        if loop == "fast":
            self._drain_fast(queue, rng)
        else:
            self._drain_heap(queue, rng)
        return self._build_stats()

    def _drain_heap(self, queue: EventQueue, rng: Random) -> None:
        """The reference loop: one heap pop per event."""
        while queue:
            event = queue.pop()
            kind = event.kind
            now = event.time_ms
            if kind == ARRIVAL:
                self._clock = now
                self._on_arrival(event.payload, now, queue, rng)
            elif kind == COMPLETE:
                self._clock = now
                self._on_complete(event.payload, now, queue, rng)
            elif kind == FLUSH:
                self._clock = now
                self._on_flush(event.payload, now, queue)
            else:
                self._on_tick(now, queue, len(queue))

    def _drain_fast(self, queue: SlottedEventQueue, rng: Random) -> None:
        """The fast loop: slotted buckets, same-timestamp batches.

        Bit-identity with :meth:`_drain_heap` is by construction — the
        slotted queue yields the identical ``(time_ms, seq)`` stream,
        and each event goes through the *same* handler with the same
        arguments.  The tick handler receives the number of events
        still outstanding (queue plus the unprocessed tail of the
        current batch), which in the heap loop is exactly ``len(queue)``
        after the pop.
        """
        pop_same_time = queue.pop_same_time
        on_arrival = self._on_arrival
        on_complete = self._on_complete
        on_flush = self._on_flush
        on_tick = self._on_tick
        while queue:
            batch = pop_same_time()
            now = batch[0].time_ms
            remaining = len(batch)
            for event in batch:
                remaining -= 1
                kind = event.kind
                if kind == ARRIVAL:
                    self._clock = now
                    on_arrival(event.payload, now, queue, rng)
                elif kind == COMPLETE:
                    self._clock = now
                    on_complete(event.payload, now, queue, rng)
                elif kind == FLUSH:
                    self._clock = now
                    on_flush(event.payload, now, queue)
                else:
                    on_tick(now, queue, len(queue) + remaining)

    # ------------------------------------------------------------------
    def _push_arrival(self, arrival: Arrival | None, queue) -> None:
        if arrival is not None:
            queue.push(arrival.time_ms, ARRIVAL, arrival)
            self._issued += 1

    def _on_arrival(self, arrival: Arrival, now: float, queue, rng: Random) -> None:
        self._push_arrival(self.workload.next_arrival(arrival, rng), queue)
        tenant_name = arrival.tenant or DEFAULT_TENANT_NAME
        request = Request(self._offered, arrival.network, now, tenant_name)
        self._offered += 1
        acc = self._tacc[tenant_name]
        acc.offered += 1
        tenant = acc.tenant
        admission = self._admission
        index: int | None = None
        reason = admission.assess(
            request,
            tenant,
            self._pending_total,
            self._accepting_count * self.config.max_queue,
            now,
        )
        if reason is None:
            index = self._scheduler.choose(request, self.devices, now)
            if index is None:
                reason = SHED_OVERFLOW
            else:
                state = self.devices[index]
                if not state.accepting or state.full:
                    reason = SHED_OVERFLOW
                else:
                    reason = admission.place(request, tenant, state, now)
        if reason is not None:
            self._shed += 1
            acc.shed += 1
            self._shed_reasons[reason] = self._shed_reasons.get(reason, 0) + 1
            if index is not None:
                self.devices[index].shed += 1
            if self._obs:
                tracer = self._tracer
                tracer.instant(
                    f"shed {request.network}", "serve", SIM_MS, now,
                    process="serve", thread="workload",
                    args={"request": request.id, "reason": reason},
                )
                tracer.metrics.counter("serve.shed").inc()
                tracer.metrics.counter(f"serve.shed.{reason}").inc()
            # Closed-loop clients observe the rejection and issue again.
            self._push_arrival(
                self.workload.on_completion(request, now, self._issued, rng), queue
            )
            return
        state = self.devices[index]
        state.enqueue(request, now)
        self._pending_total += 1
        if self._obs:
            tracer = self._tracer
            tracer.instant(
                f"enqueue {request.network}", "serve", SIM_MS, now,
                process="serve", thread="workload",
                args={"request": request.id, "device": state.device.name},
            )
            tracer.metrics.counter("serve.enqueued").inc()
        self._dispatch(state, index, now, queue)

    def _on_flush(self, index: int, now: float, queue) -> None:
        state = self.devices[index]
        if state.flush_at == now:
            state.flush_at = None
        if not state.busy:
            self._dispatch(state, index, now, queue)

    def _on_complete(
        self, payload: tuple[int, list[Request]], now: float, queue, rng: Random
    ) -> None:
        index, batch = payload
        state = self.devices[index]
        state.busy = False
        first = batch[0]
        size = len(batch)
        # Attribute the batch's energy to its member requests: each
        # carries its own dynamic energy plus an equal share of the
        # static energy burned over the batch window.
        duration = first.finish_ms - first.start_ms
        profile = state.profiles[first.network]
        share = profile.dynamic_j + state.static_watts * duration / 1e3 / size
        latencies = self._latencies
        per_network = self._per_network
        tacc = self._tacc
        obs = self._obs
        good = 0
        for request in batch:
            latency = request.finish_ms - request.arrival_ms
            latencies.append(latency)
            network_lats = per_network.get(request.network)
            if network_lats is None:
                network_lats = per_network[request.network] = []
            network_lats.append(latency)
            acc = tacc[request.tenant]
            acc.latencies.append(latency)
            acc.energy_j += share
            if latency > acc.tenant.slo_ms:
                acc.violations += 1
                self._violations += 1
            else:
                good += 1
            if obs:
                metrics = self._tracer.metrics
                metrics.histogram("serve.latency_ms").observe(latency)
                metrics.histogram(
                    f"serve.tenant_latency_ms.{request.tenant}"
                ).observe(latency)
                metrics.counter("serve.completed").inc()
                if latency > acc.tenant.slo_ms:
                    metrics.counter("serve.slo_violations").inc()
            self._push_arrival(
                self.workload.on_completion(request, now, self._issued, rng), queue
            )
        self._win_completed += size
        self._win_good += good
        self._dispatch(state, index, now, queue)
        if not state.accepting:
            state.maybe_retire(now)

    def _on_tick(self, now: float, queue, outstanding: int) -> None:
        scaler = self._autoscaler
        signals = AutoscaleSignals(
            now_ms=now,
            accepting=self._accepting_count,
            pending_total=self._pending_total,
            window_completed=self._win_completed,
            window_good=self._win_good,
        )
        delta = scaler.decide(signals)
        if delta > 0:
            self._scale_up(now)
        elif delta < 0:
            self._scale_down(now)
        self._win_completed = 0
        self._win_good = 0
        # Reschedule only while other events remain: an exhausted
        # simulation must not be kept alive by its own ticks.
        if outstanding:
            queue.push(now + scaler.config.interval_ms, TICK, None)

    def _scale_up(self, now: float) -> None:
        if self._drained:
            # Reactivate the most recently drained device: it is the
            # most likely to still have warm (undrained) queue state.
            index = self._drained.pop()
            self.devices[index].activate(now)
        else:
            scaler = self._autoscaler
            index = len(self.devices)
            device = ServeDevice(
                f"{scaler.config.template}~{self._created}", self._template_platform
            )
            self._created += 1
            self.devices.append(
                self._make_state(device, self._template_slice, index, now)
            )
        self._accepting_count += 1
        if self._accepting_count > self._peak_devices:
            self._peak_devices = self._accepting_count
        self._scale_events.append([now, 1, self._accepting_count])
        if self._obs:
            self._tracer.metrics.gauge("serve.fleet_size", domain=SIM_MS).set(
                float(self._accepting_count), now
            )

    def _scale_down(self, now: float) -> None:
        # Drain the highest-index accepting device (the most recently
        # added); decide() guarantees one above min_devices exists.
        for index in range(len(self.devices) - 1, -1, -1):
            state = self.devices[index]
            if state.accepting:
                state.drain(now)
                self._drained.append(index)
                self._accepting_count -= 1
                self._scale_events.append([now, -1, self._accepting_count])
                if self._obs:
                    self._tracer.metrics.gauge(
                        "serve.fleet_size", domain=SIM_MS
                    ).set(float(self._accepting_count), now)
                return

    # ------------------------------------------------------------------
    def _dispatch(self, state: DeviceState, index: int, now: float, queue) -> None:
        """Launch the oldest ready batch of an idle device, or schedule
        the flush for the earliest pending deadline."""
        if state.busy or not state.pending:
            return
        ready_network: str | None = None
        ready_oldest = 0.0
        pending_deadline: float | None = None
        for network, batcher in state.batchers.items():
            oldest = batcher.oldest_arrival_ms
            if oldest is None:
                continue
            if batcher.ready(now):
                if ready_network is None or oldest < ready_oldest:
                    ready_network, ready_oldest = network, oldest
            else:
                deadline = batcher.deadline_ms()
                if pending_deadline is None or deadline < pending_deadline:
                    pending_deadline = deadline
        if ready_network is not None:
            self._launch(state, index, ready_network, now, queue)
        elif pending_deadline is not None and (
            state.flush_at is None or pending_deadline < state.flush_at
        ):
            state.flush_at = pending_deadline
            queue.push(pending_deadline, FLUSH, index)

    def _launch(
        self, state: DeviceState, index: int, network: str, now: float, queue
    ) -> None:
        batch = state.take_batch(network, now)
        size = len(batch)
        self._pending_total -= size
        profile = state.profiles[network]
        duration = profile.latency_ms(size)
        finish = now + duration
        state.busy = True
        state.busy_until = finish
        state.busy_ms += duration
        state.batches += 1
        state.served += size
        state.dynamic_j += profile.dynamic_j * size
        for request in batch:
            request.start_ms = now
            request.finish_ms = finish
        if self._obs:
            tracer = self._tracer
            device = state.device.name
            batch_id = self._batch_seq
            self._batch_seq += 1
            # Batch first, then its member requests on the same thread
            # and interval: Perfetto nests the request spans inside.
            tracer.span(
                f"batch {network}", "batch", SIM_MS, now, duration,
                process="serve", thread=device,
                args={"batch_id": batch_id, "size": size, "network": network},
            )
            for request in batch:
                tracer.span(
                    f"execute r{request.id}", "request", SIM_MS, now, duration,
                    process="serve", thread=device,
                    args={"request": request.id, "batch_id": batch_id},
                )
                tracer.span(
                    f"queue r{request.id}", "queue", SIM_MS,
                    request.arrival_ms, now - request.arrival_ms,
                    process="serve", thread=f"{device} queue",
                    args={"request": request.id, "batch_id": batch_id},
                )
            metrics = tracer.metrics
            metrics.histogram("serve.batch_size").observe(float(size))
            metrics.gauge(f"serve.queue_depth.{device}", domain=SIM_MS).set(
                float(state.pending), now
            )
        queue.push(finish, COMPLETE, (index, batch))

    # ------------------------------------------------------------------
    def _tenant_stats(self) -> dict[str, TenantServeStats]:
        per_tenant: dict[str, TenantServeStats] = {}
        for name in sorted(self._tacc):
            acc = self._tacc[name]
            ordered = sorted(acc.latencies)
            completed = len(ordered)
            per_tenant[name] = TenantServeStats(
                name=name,
                slo_ms=acc.tenant.slo_ms,
                priority=acc.tenant.priority,
                offered=acc.offered,
                completed=completed,
                shed=acc.shed,
                slo_violations=acc.violations,
                latency_p50_ms=percentile(ordered, 50),
                latency_p95_ms=percentile(ordered, 95),
                latency_p99_ms=percentile(ordered, 99),
                latency_mean_ms=sum(ordered) / completed if completed else 0.0,
                latency_max_ms=ordered[-1] if ordered else 0.0,
                energy_j=acc.energy_j,
                cost_per_request_j=acc.energy_j / completed if completed else 0.0,
            )
        return per_tenant

    def _build_stats(self) -> ServeStats:
        duration = self._clock
        duration_s = duration / 1e3 if duration > 0 else 0.0
        ordered = sorted(self._latencies)
        completed = len(ordered)
        violations = self._violations
        good = completed - violations
        for state in self.devices:
            state.finalize(duration)
        devices = [
            DeviceServeStats(
                name=state.device.name,
                platform=state.device.platform.name,
                requests=state.served,
                batches=state.batches,
                shed=state.shed,
                busy_ms=state.busy_ms,
                utilization=state.busy_ms / duration if duration > 0 else 0.0,
                mean_batch=state.served / state.batches if state.batches else 0.0,
                queue_depth=downsample(state.timeline.points),
                active_ms=state.active_ms,
                energy_j=state.energy_j(),
            )
            for state in self.devices
        ]
        total_j = sum(state.energy_j() for state in self.devices)
        busy_j = sum(
            state.static_watts * state.busy_ms / 1e3 + state.dynamic_j
            for state in self.devices
        )
        autoscale: dict = {}
        if self._autoscaler is not None:
            autoscale = {
                "events": self._scale_events,
                "peak_devices": self._peak_devices,
                "final_devices": self._accepting_count,
            }
        return ServeStats(
            scheduler=self._scheduler_label,
            seed=self.config.seed,
            slo_ms=self.config.slo_ms,
            offered=self._offered,
            completed=completed,
            shed=self._shed,
            slo_violations=violations,
            duration_ms=duration,
            latency_p50_ms=percentile(ordered, 50),
            latency_p95_ms=percentile(ordered, 95),
            latency_p99_ms=percentile(ordered, 99),
            latency_mean_ms=sum(ordered) / completed if completed else 0.0,
            latency_max_ms=ordered[-1] if ordered else 0.0,
            throughput_rps=completed / duration_s if duration_s else 0.0,
            goodput_rps=good / duration_s if duration_s else 0.0,
            devices=devices,
            per_network={
                network: latency_summary(values, self.config.slo_ms)
                for network, values in sorted(self._per_network.items())
            },
            per_tenant=self._tenant_stats(),
            shed_reasons={
                reason: self._shed_reasons[reason]
                for reason in sorted(self._shed_reasons)
            },
            energy={
                "total_j": total_j,
                "busy_j": busy_j,
                "idle_j": total_j - busy_j,
                "cost_per_request_j": total_j / completed if completed else 0.0,
            },
            autoscale=autoscale,
        )


def run_serve(
    fleet: Sequence[ServeDevice],
    profiles: Mapping[tuple[str, str], LatencyProfile],
    workload: Workload,
    config: ServeConfig | None = None,
    pipeline: ServePipeline | None = None,
    loop: str | None = None,
) -> ServeStats:
    """Convenience wrapper: build a :class:`ServeSim` and run it."""
    return ServeSim(fleet, profiles, workload, config, pipeline).run(loop)
