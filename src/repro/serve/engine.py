"""The discrete-event serving simulator.

One :class:`ServeSim` run processes three event kinds over the shared
:class:`~repro.serve.events.EventQueue`:

* **arrival** — the request is admitted to the device the scheduler
  picks (or shed when every queue is full); open-loop workloads chain
  the next arrival here, so the heap stays O(fleet) deep;
* **flush** — a dynamic-batch deadline: an idle device launches its
  timed-out partial batch instead of waiting for it to fill;
* **complete** — a batch retires: per-request latencies and SLO
  outcomes are recorded, closed-loop clients think-and-reissue, and the
  freed device immediately launches its next ready batch (or schedules
  a flush for the earliest pending deadline).

Devices are work-conserving up to the batching policy: an idle device
with a non-full, non-timed-out batch *waits* for the deadline — that is
what a batch timeout means — but never holds requests beyond it, and a
device that frees up takes the oldest ready batch at once.

Determinism: all randomness flows from one ``random.Random(seed)``, the
event heap breaks ties by insertion order, and every fleet scan is in
fleet order — a fixed seed reproduces :class:`ServeStats` exactly.

When a tracer is installed (:mod:`repro.obs`), each request leaves a
queue-wait span (arrival → launch) and an execute span nested inside
its batch's span, all in simulated milliseconds
(:data:`repro.obs.tracer.SIM_MS`), plus shed/SLO counters, batch-size
and latency histograms and a per-device queue-depth gauge.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Mapping, Sequence

from repro.obs.tracer import SIM_MS, get_tracer
from repro.serve.batching import Request
from repro.serve.devices import DeviceState, ServeDevice
from repro.serve.events import ARRIVAL, COMPLETE, FLUSH, EventQueue
from repro.serve.profiles import LatencyProfile, profiles_for_platform
from repro.serve.schedulers import make_scheduler
from repro.serve.stats import (
    DeviceServeStats,
    ServeStats,
    downsample,
    latency_summary,
    percentile,
)
from repro.serve.workload import Arrival, Workload


@dataclass(frozen=True)
class ServeConfig:
    """Policy knobs of one serving run."""

    slo_ms: float = 50.0
    max_batch: int = 8
    batch_timeout_ms: float = 2.0
    max_queue: int = 256
    scheduler: str = "latency-aware"
    seed: int = 0


class ServeSim:
    """One serving simulation over a fixed fleet and workload."""

    def __init__(
        self,
        fleet: Sequence[ServeDevice],
        profiles: Mapping[tuple[str, str], LatencyProfile],
        workload: Workload,
        config: ServeConfig | None = None,
    ) -> None:
        if not fleet:
            raise ValueError("fleet must contain at least one device")
        self.config = config or ServeConfig()
        self.workload = workload
        self.devices: list[DeviceState] = []
        for device in fleet:
            slice_ = profiles_for_platform(profiles, device.platform.name)
            if not slice_:
                raise ValueError(
                    f"no latency profiles for platform {device.platform.name!r}"
                )
            self.devices.append(
                DeviceState(
                    device,
                    slice_,
                    max_batch=self.config.max_batch,
                    batch_timeout_ms=self.config.batch_timeout_ms,
                    max_queue=self.config.max_queue,
                )
            )
        self.scheduler = make_scheduler(self.config.scheduler)

    # ------------------------------------------------------------------
    def run(self) -> ServeStats:
        """Drain the workload and return the aggregate statistics."""
        rng = Random(self.config.seed)
        queue = EventQueue()
        self._issued = 0
        self._offered = 0
        self._shed = 0
        self._clock = 0.0
        self._latencies: list[float] = []
        self._per_network: dict[str, list[float]] = {}
        self._tracer = get_tracer()
        self._batch_seq = 0

        for arrival in self.workload.prime(rng):
            queue.push(arrival.time_ms, ARRIVAL, arrival)
            self._issued += 1

        while queue:
            event = queue.pop()
            self._clock = max(self._clock, event.time_ms)
            if event.kind == ARRIVAL:
                self._on_arrival(event.payload, event.time_ms, queue, rng)
            elif event.kind == FLUSH:
                self._on_flush(event.payload, event.time_ms, queue)
            elif event.kind == COMPLETE:
                self._on_complete(event.payload, event.time_ms, queue, rng)

        return self._build_stats()

    # ------------------------------------------------------------------
    def _push_arrival(self, arrival: Arrival | None, queue: EventQueue) -> None:
        if arrival is not None:
            queue.push(arrival.time_ms, ARRIVAL, arrival)
            self._issued += 1

    def _on_arrival(
        self, arrival: Arrival, now: float, queue: EventQueue, rng: Random
    ) -> None:
        self._push_arrival(self.workload.next_arrival(arrival, rng), queue)
        request = Request(self._offered, arrival.network, now)
        self._offered += 1
        tracer = self._tracer
        index = self.scheduler.choose(request, self.devices, now)
        if index is None or self.devices[index].full:
            self._shed += 1
            if index is not None:
                self.devices[index].shed += 1
            if tracer.enabled:
                tracer.instant(
                    f"shed {request.network}", "serve", SIM_MS, now,
                    process="serve", thread="workload",
                    args={"request": request.id},
                )
                tracer.metrics.counter("serve.shed").inc()
            # Closed-loop clients observe the rejection and issue again.
            self._push_arrival(
                self.workload.on_completion(request, now, self._issued, rng), queue
            )
            return
        state = self.devices[index]
        state.enqueue(request, now)
        if tracer.enabled:
            tracer.instant(
                f"enqueue {request.network}", "serve", SIM_MS, now,
                process="serve", thread="workload",
                args={"request": request.id, "device": state.device.name},
            )
            tracer.metrics.counter("serve.enqueued").inc()
        self._dispatch(state, index, now, queue)

    def _on_flush(self, index: int, now: float, queue: EventQueue) -> None:
        state = self.devices[index]
        if state.flush_at == now:
            state.flush_at = None
        if not state.busy:
            self._dispatch(state, index, now, queue)

    def _on_complete(
        self, payload: tuple[int, list[Request]], now: float, queue: EventQueue, rng: Random
    ) -> None:
        index, batch = payload
        state = self.devices[index]
        state.busy = False
        tracer = self._tracer
        for request in batch:
            latency = request.latency_ms
            self._latencies.append(latency)
            self._per_network.setdefault(request.network, []).append(latency)
            if tracer.enabled:
                metrics = tracer.metrics
                metrics.histogram("serve.latency_ms").observe(latency)
                metrics.counter("serve.completed").inc()
                if latency > self.config.slo_ms:
                    metrics.counter("serve.slo_violations").inc()
            self._push_arrival(
                self.workload.on_completion(request, now, self._issued, rng), queue
            )
        self._dispatch(state, index, now, queue)

    # ------------------------------------------------------------------
    def _dispatch(
        self, state: DeviceState, index: int, now: float, queue: EventQueue
    ) -> None:
        """Launch the oldest ready batch of an idle device, or schedule
        the flush for the earliest pending deadline."""
        if state.busy:
            return
        ready_network: str | None = None
        ready_oldest = 0.0
        pending_deadline: float | None = None
        for network, batcher in state.batchers.items():
            oldest = batcher.oldest_arrival_ms
            if oldest is None:
                continue
            if batcher.ready(now):
                if ready_network is None or oldest < ready_oldest:
                    ready_network, ready_oldest = network, oldest
            else:
                deadline = batcher.deadline_ms()
                if pending_deadline is None or deadline < pending_deadline:
                    pending_deadline = deadline
        if ready_network is not None:
            self._launch(state, index, ready_network, now, queue)
        elif pending_deadline is not None and (
            state.flush_at is None or pending_deadline < state.flush_at
        ):
            state.flush_at = pending_deadline
            queue.push(pending_deadline, FLUSH, index)

    def _launch(
        self, state: DeviceState, index: int, network: str, now: float, queue: EventQueue
    ) -> None:
        batch = state.batchers[network].pop_batch(now, force=True)
        duration = state.profile(network).latency_ms(len(batch))
        finish = now + duration
        state.busy = True
        state.busy_until = finish
        state.busy_ms += duration
        state.batches += 1
        state.served += len(batch)
        for request in batch:
            request.start_ms = now
            request.finish_ms = finish
        state.record_depth(now)
        tracer = self._tracer
        if tracer.enabled:
            device = state.device.name
            batch_id = self._batch_seq
            self._batch_seq += 1
            # Batch first, then its member requests on the same thread
            # and interval: Perfetto nests the request spans inside.
            tracer.span(
                f"batch {network}", "batch", SIM_MS, now, duration,
                process="serve", thread=device,
                args={"batch_id": batch_id, "size": len(batch), "network": network},
            )
            for request in batch:
                tracer.span(
                    f"execute r{request.id}", "request", SIM_MS, now, duration,
                    process="serve", thread=device,
                    args={"request": request.id, "batch_id": batch_id},
                )
                tracer.span(
                    f"queue r{request.id}", "queue", SIM_MS,
                    request.arrival_ms, now - request.arrival_ms,
                    process="serve", thread=f"{device} queue",
                    args={"request": request.id, "batch_id": batch_id},
                )
            metrics = tracer.metrics
            metrics.histogram("serve.batch_size").observe(float(len(batch)))
            depth = state.depth_timeline[-1][1] if state.depth_timeline else 0
            metrics.gauge(f"serve.queue_depth.{device}", domain=SIM_MS).set(
                float(depth), now
            )
        queue.push(finish, COMPLETE, (index, batch))

    # ------------------------------------------------------------------
    def _build_stats(self) -> ServeStats:
        duration = self._clock
        duration_s = duration / 1e3 if duration > 0 else 0.0
        ordered = sorted(self._latencies)
        completed = len(ordered)
        violations = sum(1 for value in ordered if value > self.config.slo_ms)
        good = completed - violations
        devices = [
            DeviceServeStats(
                name=state.device.name,
                platform=state.device.platform.name,
                requests=state.served,
                batches=state.batches,
                shed=state.shed,
                busy_ms=state.busy_ms,
                utilization=state.busy_ms / duration if duration > 0 else 0.0,
                mean_batch=state.served / state.batches if state.batches else 0.0,
                queue_depth=downsample(state.depth_timeline),
            )
            for state in self.devices
        ]
        return ServeStats(
            scheduler=self.config.scheduler,
            seed=self.config.seed,
            slo_ms=self.config.slo_ms,
            offered=self._offered,
            completed=completed,
            shed=self._shed,
            slo_violations=violations,
            duration_ms=duration,
            latency_p50_ms=percentile(ordered, 50),
            latency_p95_ms=percentile(ordered, 95),
            latency_p99_ms=percentile(ordered, 99),
            latency_mean_ms=sum(ordered) / completed if completed else 0.0,
            latency_max_ms=ordered[-1] if ordered else 0.0,
            throughput_rps=completed / duration_s if duration_s else 0.0,
            goodput_rps=good / duration_s if duration_s else 0.0,
            devices=devices,
            per_network={
                network: latency_summary(values, self.config.slo_ms)
                for network, values in sorted(self._per_network.items())
            },
        )


def run_serve(
    fleet: Sequence[ServeDevice],
    profiles: Mapping[tuple[str, str], LatencyProfile],
    workload: Workload,
    config: ServeConfig | None = None,
) -> ServeStats:
    """Convenience wrapper: build a :class:`ServeSim` and run it."""
    return ServeSim(fleet, profiles, workload, config).run()
