"""The deterministic discrete-event core of the serving simulator.

A single binary heap orders events by ``(time_ms, seq)`` where ``seq``
is a monotone insertion counter: events at the same simulated time pop
in the order they were pushed.  That tie-break is what makes the whole
simulator reproducible — no dict-iteration or hash ordering ever
decides who goes first.

Two queue implementations share that contract:

* :class:`EventQueue` — the reference binary heap; obviously correct,
  one ``heappush``/``heappop`` pair per event.
* :class:`SlottedEventQueue` — the fast path: events land in coarse
  time-slot buckets (a dict keyed by ``int(time_ms // slot_ms)``), a
  small heap orders only the *bucket keys*, and each bucket is sorted
  lazily in one C-speed Timsort pass when it becomes current.  Pushes
  into the current (already sorted) bucket use ``bisect.insort``
  bounded to the undrained suffix.  :meth:`SlottedEventQueue.
  pop_same_time` additionally drains every event sharing the earliest
  timestamp in one call, which lets the engine's fast loop batch
  same-time processing.

The slotted queue is exact, not approximate: it yields the identical
``(time_ms, seq)`` sequence as the heap for any simulation that never
schedules into the past (ours cannot — every push is at or after the
event being processed).  ``tests/test_serve_events.py`` drives both
with random schedules and asserts the streams match element-for-
element, and the engine-level equivalence gate pins bit-identical
stats digests end to end.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, NamedTuple

#: Event kinds, compared only for equality.
ARRIVAL = "arrival"
FLUSH = "flush"
COMPLETE = "complete"
#: Periodic autoscaler evaluation.
TICK = "tick"


class Event(NamedTuple):
    """One scheduled occurrence."""

    time_ms: float
    seq: int
    kind: str
    payload: Any


class EventQueue:
    """Min-heap of :class:`Event` with deterministic FIFO tie-breaking."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time_ms: float, kind: str, payload: Any = None) -> Event:
        """Schedule *kind* at *time_ms*; returns the stored event."""
        event = Event(time_ms, self._seq, kind, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        return self._heap[0].time_ms if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SlottedEventQueue:
    """Slot-bucketed event queue, order-identical to :class:`EventQueue`.

    Requires the no-time-travel invariant: every ``push`` happens at a
    time at or after the most recently popped event's time (discrete-
    event simulations satisfy this by construction).  Under it, a push
    can only target the current bucket (handled by a bounded
    ``insort``) or a future one (appended unsorted, sorted once when
    the bucket becomes current) — never an already-drained bucket.
    """

    __slots__ = ("_slot_ms", "_buckets", "_keys", "_seq", "_current",
                 "_current_key", "_pos")

    def __init__(self, slot_ms: float = 1.0) -> None:
        if slot_ms <= 0:
            raise ValueError("slot_ms must be > 0")
        self._slot_ms = slot_ms
        self._buckets: dict[int, list[Event]] = {}
        self._keys: list[int] = []  # heap of pending bucket keys
        self._seq = 0
        self._current: list[Event] = []
        self._current_key: int | None = None
        self._pos = 0  # drain cursor into _current

    def push(self, time_ms: float, kind: str, payload: Any = None) -> Event:
        """Schedule *kind* at *time_ms*; returns the stored event."""
        event = Event(time_ms, self._seq, kind, payload)
        self._seq += 1
        key = int(time_ms // self._slot_ms)
        if key == self._current_key:
            # The current bucket is already sorted and partially
            # drained; keep it sorted without touching the drained
            # prefix.  Event tuples compare by (time_ms, seq) — seq is
            # unique, so comparison never reaches the payload.
            insort(self._current, event, lo=self._pos)
            return event
        buckets = self._buckets
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [event]
            heapq.heappush(self._keys, key)
        else:
            bucket.append(event)
        return event

    def _advance(self) -> None:
        key = heapq.heappop(self._keys)
        bucket = self._buckets.pop(key)
        bucket.sort()
        self._current = bucket
        self._current_key = key
        self._pos = 0

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        pos = self._pos
        if pos >= len(self._current):
            self._advance()
            pos = 0
        event = self._current[pos]
        self._pos = pos + 1
        return event

    def pop_same_time(self) -> list[Event]:
        """Remove and return *all* events sharing the earliest time.

        Same-time events always share a bucket (equal times map to
        equal keys), so one contiguous slice of the current bucket is
        the complete batch.  Events pushed at that same timestamp
        *while the batch is being processed* insort after the cursor
        and surface in the next call — exactly when the heap loop
        would pop them.
        """
        pos = self._pos
        current = self._current
        if pos >= len(current):
            self._advance()
            pos = 0
            current = self._current
        time_ms = current[pos].time_ms
        end = pos + 1
        n = len(current)
        while end < n and current[end].time_ms == time_ms:
            end += 1
        self._pos = end
        return current[pos:end]

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        if not self:
            return None
        if self._pos >= len(self._current):
            self._advance()
        return self._current[self._pos].time_ms

    def __len__(self) -> int:
        return (
            len(self._current) - self._pos
            + sum(len(bucket) for bucket in self._buckets.values())
        )

    def __bool__(self) -> bool:
        return self._pos < len(self._current) or bool(self._keys)
