"""The deterministic discrete-event core of the serving simulator.

A single binary heap orders events by ``(time_ms, seq)`` where ``seq``
is a monotone insertion counter: events at the same simulated time pop
in the order they were pushed.  That tie-break is what makes the whole
simulator reproducible — no dict-iteration or hash ordering ever
decides who goes first.
"""

from __future__ import annotations

import heapq
from typing import Any, NamedTuple

#: Event kinds, compared only for equality.
ARRIVAL = "arrival"
FLUSH = "flush"
COMPLETE = "complete"


class Event(NamedTuple):
    """One scheduled occurrence."""

    time_ms: float
    seq: int
    kind: str
    payload: Any


class EventQueue:
    """Min-heap of :class:`Event` with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time_ms: float, kind: str, payload: Any = None) -> Event:
        """Schedule *kind* at *time_ms*; returns the stored event."""
        event = Event(time_ms, self._seq, kind, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        return self._heap[0].time_ms if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
