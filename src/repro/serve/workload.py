"""Request-stream generators: open-loop, bursty, trace replay, closed-loop.

Open-loop workloads are *chained*: the engine asks for the next arrival
only while processing the previous one, so the event heap holds at most
one future arrival at a time and a million-request stream costs O(1)
memory.  Workload objects are stateless across runs — every piece of
per-run state lives in the :class:`Arrival` chain (its ``index``) or in
the engine — so the same workload instance can drive several schedulers
back-to-back, each with a fresh ``random.Random(seed)``, and produce
identical streams.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Sequence

from repro.serve.batching import Request


@dataclass(frozen=True, slots=True)
class Arrival:
    """One request arrival in the generated stream."""

    time_ms: float
    network: str
    index: int = 0
    #: Tenant name of the originating stream ("" for single-tenant).
    tenant: str = ""
    #: Sub-workload index inside a multi-tenant overlay.
    stream: int = 0


def _pick(networks: Sequence[str], weights: Sequence[float] | None, rng: Random) -> str:
    """Weighted (default uniform) network choice from one rng draw."""
    if len(networks) == 1:
        return networks[0]
    if weights is None:
        return networks[rng.randrange(len(networks))]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for name, weight in zip(networks, weights):
        acc += weight
        if point < acc:
            return name
    return networks[-1]


class Workload:
    """Base request generator; subclasses override the hooks they use."""

    #: Closed-loop workloads issue new arrivals from completions.
    closed_loop = False

    def prime(self, rng: Random) -> list[Arrival]:
        """The initial arrival(s) seeding the event heap."""
        raise NotImplementedError

    def next_arrival(self, prev: Arrival, rng: Random) -> Arrival | None:
        """The arrival after *prev* (open-loop chaining); None = done."""
        return None

    def on_completion(
        self, request: Request, now_ms: float, issued: int, rng: Random
    ) -> Arrival | None:
        """A reactive arrival triggered by *request* completing."""
        return None


class PoissonWorkload(Workload):
    """Open-loop Poisson arrivals at a fixed rate."""

    def __init__(
        self,
        rps: float,
        requests: int,
        networks: Sequence[str],
        weights: Sequence[float] | None = None,
    ) -> None:
        if rps <= 0:
            raise ValueError("rps must be > 0")
        if not networks:
            raise ValueError("at least one network required")
        self.rps = rps
        self.requests = requests
        self.networks = tuple(networks)
        self.weights = tuple(weights) if weights is not None else None

    def _gap_ms(self, rng: Random) -> float:
        return rng.expovariate(self.rps) * 1e3

    def prime(self, rng: Random) -> list[Arrival]:
        if self.requests < 1:
            return []
        return [Arrival(self._gap_ms(rng), _pick(self.networks, self.weights, rng), 0)]

    def next_arrival(self, prev: Arrival, rng: Random) -> Arrival | None:
        if prev.index + 1 >= self.requests:
            return None
        return Arrival(
            prev.time_ms + self._gap_ms(rng),
            _pick(self.networks, self.weights, rng),
            prev.index + 1,
        )


class BurstyWorkload(PoissonWorkload):
    """On-off modulated Poisson arrivals (bursts over a quiet floor).

    Time alternates between an ``on_ms`` window at ``rps`` and an
    ``off_ms`` window at ``rps * off_factor``.  Sampling exploits the
    exponential's memorylessness: a draw that crosses a phase boundary
    is discarded and redrawn from the boundary at the new rate, which
    keeps the process exact rather than approximated.
    """

    def __init__(
        self,
        rps: float,
        requests: int,
        networks: Sequence[str],
        on_ms: float = 100.0,
        off_ms: float = 400.0,
        off_factor: float = 0.1,
        weights: Sequence[float] | None = None,
    ) -> None:
        super().__init__(rps, requests, networks, weights)
        if on_ms <= 0 or off_ms < 0:
            raise ValueError("on_ms must be > 0 and off_ms >= 0")
        if not 0 <= off_factor <= 1:
            raise ValueError("off_factor must be in [0, 1]")
        self.on_ms = on_ms
        self.off_ms = off_ms
        self.off_factor = off_factor

    def _next_time(self, start_ms: float, rng: Random) -> float:
        period = self.on_ms + self.off_ms
        t = start_ms
        while True:
            in_on = (t % period) < self.on_ms
            boundary = (t // period) * period + (self.on_ms if in_on else period)
            rate = self.rps if in_on else self.rps * self.off_factor
            if rate <= 0:
                t = boundary
                continue
            gap = rng.expovariate(rate) * 1e3
            if t + gap > boundary:
                t = boundary
                continue
            return t + gap

    def prime(self, rng: Random) -> list[Arrival]:
        if self.requests < 1:
            return []
        return [
            Arrival(self._next_time(0.0, rng), _pick(self.networks, self.weights, rng), 0)
        ]

    def next_arrival(self, prev: Arrival, rng: Random) -> Arrival | None:
        if prev.index + 1 >= self.requests:
            return None
        return Arrival(
            self._next_time(prev.time_ms, rng),
            _pick(self.networks, self.weights, rng),
            prev.index + 1,
        )


class DiurnalWorkload(Workload):
    """Open-loop arrivals following a sinusoidal day/night rate curve.

    The instantaneous rate is ``base_rps * (1 + amplitude * sin(2*pi *
    (t - phase_ms) / period_ms))``, approximated as piecewise-constant
    over ``segments`` equal slices of the period (the rate is sampled
    at each slice's midpoint).  Within a slice, sampling works exactly
    like :class:`BurstyWorkload`: an exponential draw that crosses the
    slice boundary is discarded and redrawn from the boundary at the
    new rate, which the memorylessness of the exponential makes exact
    for the piecewise-constant process.
    """

    def __init__(
        self,
        base_rps: float,
        requests: int,
        networks: Sequence[str],
        period_ms: float = 86_400_000.0,
        amplitude: float = 0.8,
        phase_ms: float = 0.0,
        segments: int = 96,
        weights: Sequence[float] | None = None,
    ) -> None:
        if base_rps <= 0:
            raise ValueError("base_rps must be > 0")
        if not networks:
            raise ValueError("at least one network required")
        if period_ms <= 0:
            raise ValueError("period_ms must be > 0")
        if not 0 <= amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if segments < 1:
            raise ValueError("segments must be >= 1")
        self.base_rps = base_rps
        self.requests = requests
        self.networks = tuple(networks)
        self.weights = tuple(weights) if weights is not None else None
        self.period_ms = period_ms
        self.amplitude = amplitude
        self.phase_ms = phase_ms
        self.segments = segments
        self._segment_ms = period_ms / segments
        # Per-segment rates, sampled at segment midpoints (requests/ms).
        two_pi = 2.0 * math.pi
        self._rates = tuple(
            base_rps
            * (1.0 + amplitude * math.sin(two_pi * ((i + 0.5) / segments)))
            / 1e3
            for i in range(segments)
        )

    def rate_rps(self, t_ms: float) -> float:
        """The piecewise-constant offered rate at simulated time *t_ms*."""
        index = int(((t_ms - self.phase_ms) % self.period_ms) // self._segment_ms)
        return self._rates[min(index, self.segments - 1)] * 1e3

    def _next_time(self, start_ms: float, rng: Random) -> float:
        segment_ms = self._segment_ms
        t = start_ms
        while True:
            index = math.floor((t - self.phase_ms) / segment_ms)
            boundary = self.phase_ms + (index + 1) * segment_ms
            rate = self._rates[index % self.segments]
            gap = rng.expovariate(rate) if rate > 0 else float("inf")
            if t + gap > boundary:
                t = boundary
                continue
            return t + gap

    def prime(self, rng: Random) -> list[Arrival]:
        if self.requests < 1:
            return []
        return [
            Arrival(self._next_time(0.0, rng), _pick(self.networks, self.weights, rng), 0)
        ]

    def next_arrival(self, prev: Arrival, rng: Random) -> Arrival | None:
        if prev.index + 1 >= self.requests:
            return None
        return Arrival(
            self._next_time(prev.time_ms, rng),
            _pick(self.networks, self.weights, rng),
            prev.index + 1,
        )


class TraceWorkload(Workload):
    """Replay a recorded request log, exactly and in order."""

    def __init__(self, arrivals: Sequence[tuple[float, str]]) -> None:
        ordered = sorted(arrivals, key=lambda item: item[0])
        self.arrivals = tuple(
            Arrival(time_ms, network, index)
            for index, (time_ms, network) in enumerate(ordered)
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "TraceWorkload":
        """Load ``[{"time_ms": ..., "network": ...}, ...]`` (or the same
        list under a top-level ``"requests"`` key)."""
        data = json.loads(Path(path).read_text())
        if isinstance(data, dict):
            data = data["requests"]
        return cls([(float(row["time_ms"]), str(row["network"])) for row in data])

    def prime(self, rng: Random) -> list[Arrival]:
        return [self.arrivals[0]] if self.arrivals else []

    def next_arrival(self, prev: Arrival, rng: Random) -> Arrival | None:
        index = prev.index + 1
        return self.arrivals[index] if index < len(self.arrivals) else None


class ClosedLoopWorkload(Workload):
    """Fixed-concurrency clients with exponential think time."""

    closed_loop = True

    def __init__(
        self,
        clients: int,
        requests: int,
        networks: Sequence[str],
        think_ms: float = 10.0,
        weights: Sequence[float] | None = None,
    ) -> None:
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if think_ms < 0:
            raise ValueError("think_ms must be >= 0")
        self.clients = clients
        self.requests = requests
        self.networks = tuple(networks)
        self.weights = tuple(weights) if weights is not None else None
        self.think_ms = think_ms

    def _think(self, rng: Random) -> float:
        if self.think_ms <= 0:
            return 0.0
        return rng.expovariate(1.0 / self.think_ms)

    def prime(self, rng: Random) -> list[Arrival]:
        count = min(self.clients, self.requests)
        return [
            Arrival(self._think(rng), _pick(self.networks, self.weights, rng), index)
            for index in range(count)
        ]

    def on_completion(
        self, request: Request, now_ms: float, issued: int, rng: Random
    ) -> Arrival | None:
        if issued >= self.requests:
            return None
        return Arrival(
            now_ms + self._think(rng),
            _pick(self.networks, self.weights, rng),
            issued,
        )
