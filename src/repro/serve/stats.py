"""Serving-run result containers: latency tails, goodput, utilization,
per-tenant SLO attainment and cost-per-request.

Percentiles use the nearest-rank method on the sorted latency sample —
no interpolation, so two runs with identical request outcomes report
bit-identical tails (the determinism tests compare ``to_dict`` output
wholesale).  Shed requests never enter a latency sample; they count
only in ``offered`` and therefore in the offered-based ratios
(``goodput_ratio``), never in percentiles.

The ``repro serve --json`` schema is the :meth:`ServeStats.to_dict`
tree; every key is documented on the field it serializes.
:meth:`ServeStats.digest` hashes the canonical JSON form — the
CI ``serve-scale`` job pins one scenario's digest as a golden value.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sorted sample."""
    if not sorted_values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without floats
    return sorted_values[int(rank) - 1]


def downsample(timeline: list[tuple[float, int]], limit: int = 128) -> list[tuple[float, int]]:
    """Stride-sample a (time, depth) timeline to at most *limit* points,
    always keeping the final point."""
    if len(timeline) <= limit:
        return list(timeline)
    stride = -(-len(timeline) // limit)
    sampled = timeline[::stride]
    if sampled[-1] != timeline[-1]:
        sampled.append(timeline[-1])
    return sampled


class DepthTimeline:
    """Bounded online queue-depth recorder.

    A million-request run records a depth sample per enqueue and per
    launch; keeping them all would dwarf the simulation itself.  This
    recorder keeps every ``stride``-th sample and, whenever the buffer
    reaches ``2 * limit`` points, drops every other retained point and
    doubles the stride — a deterministic online downsample whose output
    depends only on the sequence of ``record`` calls, so the heap and
    slotted event loops (which make identical calls) stay bit-identical.
    """

    __slots__ = ("limit", "stride", "_count", "points")

    def __init__(self, limit: int = 1024) -> None:
        self.limit = limit
        self.stride = 1
        self._count = 0
        self.points: list[tuple[float, int]] = [(0.0, 0)]

    def record(self, time_ms: float, depth: int) -> None:
        count = self._count
        self._count = count + 1
        if count % self.stride:
            return
        points = self.points
        points.append((time_ms, depth))
        if len(points) >= 2 * self.limit:
            del points[::2]
            self.stride *= 2


@dataclass
class TenantServeStats:
    """Per-tenant outcome of one serving run.

    JSON schema (``per_tenant.<name>`` in ``repro serve --json``):
    latency percentiles cover *completed* requests only; shed requests
    count in ``offered`` and ``shed`` and therefore lower
    ``goodput_ratio`` (good completions over offered) but never enter a
    percentile.  ``slo_attainment`` is the completed-only view.
    ``energy_j`` is the tenant's attributed busy energy — its requests'
    share of each batch's GPUWattch dynamic energy plus the static
    energy of the batch window — and ``cost_per_request_j`` divides it
    over the tenant's completions.
    """

    name: str
    slo_ms: float
    priority: int
    offered: int
    completed: int
    shed: int
    slo_violations: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    energy_j: float
    cost_per_request_j: float

    @property
    def slo_attainment(self) -> float:
        """Fraction of *completed* requests inside the tenant SLO."""
        if not self.completed:
            return 0.0
        return (self.completed - self.slo_violations) / self.completed

    @property
    def goodput_ratio(self) -> float:
        """Good completions over *offered* requests — shed counts against."""
        if not self.offered:
            return 0.0
        return (self.completed - self.slo_violations) / self.offered

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "slo_ms": self.slo_ms,
            "priority": self.priority,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "slo_violations": self.slo_violations,
            "slo_attainment": self.slo_attainment,
            "goodput_ratio": self.goodput_ratio,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
                "mean": self.latency_mean_ms,
                "max": self.latency_max_ms,
            },
            "energy_j": self.energy_j,
            "cost_per_request_j": self.cost_per_request_j,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantServeStats":
        latency = data["latency_ms"]
        return cls(
            name=data["name"],
            slo_ms=data["slo_ms"],
            priority=data["priority"],
            offered=data["offered"],
            completed=data["completed"],
            shed=data["shed"],
            slo_violations=data["slo_violations"],
            latency_p50_ms=latency["p50"],
            latency_p95_ms=latency["p95"],
            latency_p99_ms=latency["p99"],
            latency_mean_ms=latency["mean"],
            latency_max_ms=latency["max"],
            energy_j=data["energy_j"],
            cost_per_request_j=data["cost_per_request_j"],
        )

    def summary(self) -> str:
        return (
            f"{self.name or 'default'}: {self.completed}/{self.offered} "
            f"p99={self.latency_p99_ms:.2f}ms slo={self.slo_attainment:.1%} "
            f"good={self.goodput_ratio:.1%} "
            f"cost={self.cost_per_request_j:.4f}J shed={self.shed}"
        )


@dataclass
class DeviceServeStats:
    """Per-device outcome of one serving run."""

    name: str
    platform: str
    requests: int
    batches: int
    shed: int
    busy_ms: float
    utilization: float
    mean_batch: float
    queue_depth: list[tuple[float, int]] = field(default_factory=list)
    #: Simulated time the device was part of the fleet (equals the run
    #: duration for static fleets; shorter for autoscaled devices).
    active_ms: float = 0.0
    #: GPUWattch energy over the active span: static power integrated
    #: over ``active_ms`` plus per-batch dynamic energy.
    energy_j: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "platform": self.platform,
            "requests": self.requests,
            "batches": self.batches,
            "shed": self.shed,
            "busy_ms": self.busy_ms,
            "active_ms": self.active_ms,
            "utilization": self.utilization,
            "mean_batch": self.mean_batch,
            "energy_j": self.energy_j,
            "queue_depth": [[t, d] for t, d in self.queue_depth],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceServeStats":
        """Inverse of :meth:`to_dict`; raises on malformed input."""
        return cls(
            name=data["name"],
            platform=data["platform"],
            requests=data["requests"],
            batches=data["batches"],
            shed=data["shed"],
            busy_ms=data["busy_ms"],
            utilization=data["utilization"],
            mean_batch=data["mean_batch"],
            queue_depth=[(t, d) for t, d in data["queue_depth"]],
            active_ms=data.get("active_ms", 0.0),
            energy_j=data.get("energy_j", 0.0),
        )

    def summary(self) -> str:
        """One-line rendering (the :class:`repro.stats.Stats` protocol)."""
        return (
            f"{self.name} ({self.platform}): util={self.utilization:.3f} "
            f"requests={self.requests} batches={self.batches} "
            f"mean_batch={self.mean_batch:.2f} shed={self.shed}"
        )


@dataclass
class ServeStats:
    """Aggregate outcome of one serving run.

    The ``repro serve --json`` schema is exactly :meth:`to_dict`:

    * fleet-level counters (``offered``/``completed``/``shed``/
      ``slo_violations``) always satisfy ``completed + shed ==
      offered``;
    * ``latency_ms`` percentiles cover completed requests only — shed
      requests never contribute a latency sample;
    * ``slo_attainment`` is good completions over *completed* while
      ``goodput_ratio`` is good completions over *offered*, so load
      shedding shows up in the latter but can never flatter the former;
    * ``per_tenant`` maps tenant name to the
      :class:`TenantServeStats` schema (per-tenant SLOs, priorities,
      attainment and cost-per-request);
    * ``energy`` carries the GPUWattch split: ``busy_j`` (dynamic plus
      busy-window static, attributed to tenants), ``idle_j`` (static
      leakage of idle capacity), ``total_j`` and the fleet-level
      ``cost_per_request_j`` (total over completions);
    * ``shed_reasons`` breaks ``shed`` down by admission phase
      (``overflow`` / ``priority`` / ``slo``);
    * ``autoscale`` lists scaling actions as ``[time_ms, delta,
      accepting_after]`` triples plus the peak fleet size.
    """

    scheduler: str
    seed: int
    slo_ms: float
    offered: int
    completed: int
    shed: int
    slo_violations: int
    duration_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    throughput_rps: float
    goodput_rps: float
    devices: list[DeviceServeStats] = field(default_factory=list)
    per_network: dict[str, dict] = field(default_factory=dict)
    per_tenant: dict[str, TenantServeStats] = field(default_factory=dict)
    shed_reasons: dict[str, int] = field(default_factory=dict)
    energy: dict[str, float] = field(default_factory=dict)
    autoscale: dict = field(default_factory=dict)

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests inside the SLO."""
        if not self.completed:
            return 0.0
        return (self.completed - self.slo_violations) / self.completed

    @property
    def goodput_ratio(self) -> float:
        """Good completions over offered requests: shed requests count
        in the denominator (they are failures the fleet turned away),
        but never in any latency percentile."""
        if not self.offered:
            return 0.0
        return (self.completed - self.slo_violations) / self.offered

    def to_dict(self) -> dict:
        """Stable JSON-serializable form (insertion-ordered)."""
        return {
            "scheduler": self.scheduler,
            "seed": self.seed,
            "slo_ms": self.slo_ms,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "slo_violations": self.slo_violations,
            "slo_attainment": self.slo_attainment,
            "goodput_ratio": self.goodput_ratio,
            "duration_ms": self.duration_ms,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
                "mean": self.latency_mean_ms,
                "max": self.latency_max_ms,
            },
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "devices": [device.to_dict() for device in self.devices],
            "per_network": self.per_network,
            "per_tenant": {
                name: tenant.to_dict()
                for name, tenant in self.per_tenant.items()
            },
            "shed_reasons": dict(self.shed_reasons),
            "energy": dict(self.energy),
            "autoscale": dict(self.autoscale),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeStats":
        """Inverse of :meth:`to_dict`; raises on malformed input.

        Derived ratios (``slo_attainment``/``goodput_ratio``) are
        recomputed, not read back.  The multi-tenant keys are optional
        so pre-pipeline payloads still load.
        """
        latency = data["latency_ms"]
        return cls(
            scheduler=data["scheduler"],
            seed=data["seed"],
            slo_ms=data["slo_ms"],
            offered=data["offered"],
            completed=data["completed"],
            shed=data["shed"],
            slo_violations=data["slo_violations"],
            duration_ms=data["duration_ms"],
            latency_p50_ms=latency["p50"],
            latency_p95_ms=latency["p95"],
            latency_p99_ms=latency["p99"],
            latency_mean_ms=latency["mean"],
            latency_max_ms=latency["max"],
            throughput_rps=data["throughput_rps"],
            goodput_rps=data["goodput_rps"],
            devices=[DeviceServeStats.from_dict(d) for d in data["devices"]],
            per_network=dict(data["per_network"]),
            per_tenant={
                name: TenantServeStats.from_dict(t)
                for name, t in data.get("per_tenant", {}).items()
            },
            shed_reasons=dict(data.get("shed_reasons", {})),
            energy=dict(data.get("energy", {})),
            autoscale=dict(data.get("autoscale", {})),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form.

        Two runs produce the same digest iff they produced identical
        statistics; the CI ``serve-scale`` job pins one scenario's
        digest golden, and the loop-equivalence gate compares heap vs
        slotted digests wholesale.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def summary(self) -> str:
        """One-line rendering (the :class:`repro.stats.Stats` protocol)."""
        return (
            f"{self.scheduler}: {self.completed}/{self.offered} completed "
            f"p99={self.latency_p99_ms:.2f}ms "
            f"slo={self.slo_attainment:.1%} "
            f"goodput={self.goodput_rps:.1f}rps shed={self.shed}"
        )


def latency_summary(latencies: list[float], slo_ms: float) -> dict:
    """p50/p95/p99/mean summary of one latency sample (helper for the
    per-network breakdown)."""
    ordered = sorted(latencies)
    count = len(ordered)
    return {
        "completed": count,
        "p50_ms": percentile(ordered, 50),
        "p95_ms": percentile(ordered, 95),
        "p99_ms": percentile(ordered, 99),
        "mean_ms": sum(ordered) / count if count else 0.0,
        "slo_violations": sum(1 for value in ordered if value > slo_ms),
    }
