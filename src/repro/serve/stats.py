"""Serving-run result containers: latency tails, goodput, utilization.

Percentiles use the nearest-rank method on the sorted latency sample —
no interpolation, so two runs with identical request outcomes report
bit-identical tails (the determinism tests compare ``to_dict`` output
wholesale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sorted sample."""
    if not sorted_values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without floats
    return sorted_values[int(rank) - 1]


def downsample(timeline: list[tuple[float, int]], limit: int = 128) -> list[tuple[float, int]]:
    """Stride-sample a (time, depth) timeline to at most *limit* points,
    always keeping the final point."""
    if len(timeline) <= limit:
        return list(timeline)
    stride = -(-len(timeline) // limit)
    sampled = timeline[::stride]
    if sampled[-1] != timeline[-1]:
        sampled.append(timeline[-1])
    return sampled


@dataclass
class DeviceServeStats:
    """Per-device outcome of one serving run."""

    name: str
    platform: str
    requests: int
    batches: int
    shed: int
    busy_ms: float
    utilization: float
    mean_batch: float
    queue_depth: list[tuple[float, int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "platform": self.platform,
            "requests": self.requests,
            "batches": self.batches,
            "shed": self.shed,
            "busy_ms": self.busy_ms,
            "utilization": self.utilization,
            "mean_batch": self.mean_batch,
            "queue_depth": [[t, d] for t, d in self.queue_depth],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceServeStats":
        """Inverse of :meth:`to_dict`; raises on malformed input."""
        return cls(
            name=data["name"],
            platform=data["platform"],
            requests=data["requests"],
            batches=data["batches"],
            shed=data["shed"],
            busy_ms=data["busy_ms"],
            utilization=data["utilization"],
            mean_batch=data["mean_batch"],
            queue_depth=[(t, d) for t, d in data["queue_depth"]],
        )

    def summary(self) -> str:
        """One-line rendering (the :class:`repro.stats.Stats` protocol)."""
        return (
            f"{self.name} ({self.platform}): util={self.utilization:.3f} "
            f"requests={self.requests} batches={self.batches} "
            f"mean_batch={self.mean_batch:.2f} shed={self.shed}"
        )


@dataclass
class ServeStats:
    """Aggregate outcome of one serving run."""

    scheduler: str
    seed: int
    slo_ms: float
    offered: int
    completed: int
    shed: int
    slo_violations: int
    duration_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    throughput_rps: float
    goodput_rps: float
    devices: list[DeviceServeStats] = field(default_factory=list)
    per_network: dict[str, dict] = field(default_factory=dict)

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests inside the SLO."""
        if not self.completed:
            return 0.0
        return (self.completed - self.slo_violations) / self.completed

    def to_dict(self) -> dict:
        """Stable JSON-serializable form (insertion-ordered)."""
        return {
            "scheduler": self.scheduler,
            "seed": self.seed,
            "slo_ms": self.slo_ms,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "slo_violations": self.slo_violations,
            "slo_attainment": self.slo_attainment,
            "duration_ms": self.duration_ms,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
                "mean": self.latency_mean_ms,
                "max": self.latency_max_ms,
            },
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "devices": [device.to_dict() for device in self.devices],
            "per_network": self.per_network,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeStats":
        """Inverse of :meth:`to_dict`; raises on malformed input.

        ``slo_attainment`` is a derived property, so it is read back
        only implicitly (recomputed from completed/violations).
        """
        latency = data["latency_ms"]
        return cls(
            scheduler=data["scheduler"],
            seed=data["seed"],
            slo_ms=data["slo_ms"],
            offered=data["offered"],
            completed=data["completed"],
            shed=data["shed"],
            slo_violations=data["slo_violations"],
            duration_ms=data["duration_ms"],
            latency_p50_ms=latency["p50"],
            latency_p95_ms=latency["p95"],
            latency_p99_ms=latency["p99"],
            latency_mean_ms=latency["mean"],
            latency_max_ms=latency["max"],
            throughput_rps=data["throughput_rps"],
            goodput_rps=data["goodput_rps"],
            devices=[DeviceServeStats.from_dict(d) for d in data["devices"]],
            per_network=dict(data["per_network"]),
        )

    def summary(self) -> str:
        """One-line rendering (the :class:`repro.stats.Stats` protocol)."""
        return (
            f"{self.scheduler}: {self.completed}/{self.offered} completed "
            f"p99={self.latency_p99_ms:.2f}ms "
            f"slo={self.slo_attainment:.1%} "
            f"goodput={self.goodput_rps:.1f}rps shed={self.shed}"
        )


def latency_summary(latencies: list[float], slo_ms: float) -> dict:
    """p50/p95/p99/mean summary of one latency sample (helper for the
    per-network breakdown)."""
    ordered = sorted(latencies)
    count = len(ordered)
    return {
        "completed": count,
        "p50_ms": percentile(ordered, 50),
        "p95_ms": percentile(ordered, 95),
        "p99_ms": percentile(ordered, 99),
        "mean_ms": sum(ordered) / count if count else 0.0,
        "slo_violations": sum(1 for value in ordered if value > slo_ms),
    }
