"""The staged request pipeline: pluggable policies around the engine.

Every request that enters the simulator flows through five stages
(DESIGN.md §15):

1. **admission** — the class gate (:meth:`~repro.serve.admission.
   AdmissionPolicy.assess`) sheds low-priority work from fleet-
   aggregate signals before any per-device state is touched;
2. **scheduling** — the :class:`~repro.serve.schedulers.Scheduler`
   names the target device (or none, which sheds on overflow), then
   the admission SLO gate (:meth:`~repro.serve.admission.
   AdmissionPolicy.place`) may still reject an infeasible placement;
3. **batching** — the device's per-network
   :class:`~repro.serve.batching.DynamicBatcher` accumulates the
   request until its batch is full or times out;
4. **dispatch** — the engine launches the oldest ready batch of an
   idle device and prices it with the latency profile;
5. **completion** — latencies, SLO outcomes, tenant energy shares and
   closed-loop reissues are recorded, and the device redispatches.

Orthogonally, the **autoscaler** observes the fleet at a fixed
simulated cadence (tick events) and grows or drains it.

:class:`ServePipeline` bundles the pluggable stages.  Policies must be
deterministic — same inputs, same answers — because the equivalence
gate runs the identical pipeline through both event loops and expects
bit-identical statistics.  Policies may keep per-run state if they
expose ``reset()``, which the engine calls at the start of every run;
schedulers may additionally expose ``attach(depths, max_queue)`` (see
:mod:`repro.serve.schedulers`) to scan the fleet-shared depth array
instead of device objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.admission import AdmissionPolicy, NullAdmission, make_admission
from repro.serve.autoscale import AutoscaleConfig, QueueDepthAutoscaler
from repro.serve.schedulers import Scheduler, make_scheduler


@dataclass
class ServePipeline:
    """The pluggable stages of one serving simulation.

    ``scheduler=None`` defers to the engine's ``ServeConfig.scheduler``
    name; ``autoscaler=None`` runs a fixed fleet.
    """

    admission: AdmissionPolicy = field(default_factory=NullAdmission)
    scheduler: Scheduler | None = None
    autoscaler: QueueDepthAutoscaler | None = None


def make_pipeline(
    admission: str = "none",
    scheduler: str | None = None,
    autoscale: AutoscaleConfig | None = None,
    admission_options: dict | None = None,
) -> ServePipeline:
    """Build a :class:`ServePipeline` from policy names and configs."""
    return ServePipeline(
        admission=make_admission(admission, **(admission_options or {})),
        scheduler=make_scheduler(scheduler) if scheduler else None,
        autoscaler=QueueDepthAutoscaler(autoscale) if autoscale else None,
    )
