"""Fleet construction and per-device runtime state.

A fleet is an ordered list of :class:`ServeDevice` instances built from
a spec string like ``"gp102:2,tx1"`` (two GP102 boards plus one Tegra
X1), resolving platform names through
:func:`repro.platforms.get_platform` — so anything registered there,
including test platforms added via ``register_platform``, can serve.

:class:`DeviceState` is the engine-side view of one device: its
per-network dynamic batchers, a bounded admission queue, busy/idle
bookkeeping, and the counters that end up in ``ServeStats``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.gpu.config import GpuConfig
from repro.platforms import get_platform
from repro.serve.batching import DynamicBatcher, Request
from repro.serve.profiles import LatencyProfile


@dataclass(frozen=True)
class ServeDevice:
    """One accelerator instance in the fleet."""

    name: str  # e.g. "gp102#0"
    platform: GpuConfig


def build_fleet(spec: str) -> list[ServeDevice]:
    """Parse ``"gp102:2,tx1"`` into named device instances.

    Each comma-separated entry is ``platform`` or ``platform:count``;
    instances are numbered per platform in spec order.
    """
    fleet: list[ServeDevice] = []
    counters: dict[str, int] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count_text = entry.partition(":")
        name = name.strip().lower()
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(f"bad device count in fleet entry {entry!r}") from None
        if count < 1:
            raise ValueError(f"device count must be >= 1 in {entry!r}")
        platform = get_platform(name)
        for _ in range(count):
            index = counters.get(name, 0)
            counters[name] = index + 1
            fleet.append(ServeDevice(f"{name}#{index}", platform))
    if not fleet:
        raise ValueError(f"empty fleet spec {spec!r}")
    return fleet


class DeviceState:
    """Mutable serving state of one fleet device."""

    def __init__(
        self,
        device: ServeDevice,
        profiles: Mapping[str, LatencyProfile],
        max_batch: int,
        batch_timeout_ms: float,
        max_queue: int,
    ) -> None:
        self.device = device
        self.profiles = dict(profiles)
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.batchers = {
            network: DynamicBatcher(max_batch, batch_timeout_ms)
            for network in self.profiles
        }
        self.busy = False
        self.busy_until = 0.0
        #: Deadline of the currently scheduled flush event, if any.
        self.flush_at: float | None = None
        # Result counters.
        self.busy_ms = 0.0
        self.batches = 0
        self.served = 0
        self.shed = 0
        self.depth_timeline: list[tuple[float, int]] = [(0.0, 0)]

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        """Total requests pending across all networks."""
        return sum(len(b) for b in self.batchers.values())

    @property
    def full(self) -> bool:
        return self.queue_len >= self.max_queue

    def profile(self, network: str) -> LatencyProfile:
        return self.profiles[network]

    def enqueue(self, request: Request, now_ms: float) -> None:
        self.batchers[request.network].add(request)
        self.record_depth(now_ms)

    def record_depth(self, now_ms: float) -> None:
        self.depth_timeline.append((now_ms, self.queue_len))

    def estimate_finish_ms(self, network: str, now_ms: float) -> float:
        """Greedy completion estimate for one more *network* request.

        Remaining busy time, plus every queued network's backlog at its
        achievable batch size, plus a batch-1 inference for the new
        request.  Deliberately ignores co-batching of the new request
        with queued work — a pessimistic but monotone estimate that is
        what the latency-aware scheduler ranks devices by.
        """
        estimate = max(now_ms, self.busy_until if self.busy else now_ms)
        for queued_network, batcher in self.batchers.items():
            pending = len(batcher)
            if not pending:
                continue
            profile = self.profiles[queued_network]
            batches = math.ceil(pending / self.max_batch)
            estimate += batches * profile.latency_ms(min(pending, self.max_batch))
        return estimate + self.profiles[network].latency_ms(1)
