"""Fleet construction and per-device runtime state.

A fleet is an ordered list of :class:`ServeDevice` instances built from
a spec string like ``"gp102:2,tx1"`` (two GP102 boards plus one Tegra
X1), resolving platform names through
:func:`repro.platforms.make_config` — so anything registered there,
including test platforms added via ``register_platform``, can serve.

:class:`DeviceState` is the engine-side view of one device: its
per-network dynamic batchers, a bounded admission queue, busy/idle and
active-span bookkeeping, the energy accumulators, and the counters
that end up in ``ServeStats``.

Two representation choices serve the event-loop fast path while
staying observationally identical to the original design:

* ``pending`` is an *incremental* counter (updated on enqueue and
  batch take) rather than a sum over batchers, so queue-depth checks
  are O(1);
* every state mirrors its depth into a fleet-shared ``depths`` list at
  its own index, with a large sentinel while the device is not
  accepting — schedulers with a fast hook scan that flat list instead
  of touching device objects at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.gpu.config import GpuConfig
from repro.platforms import make_config
from repro.serve.batching import DynamicBatcher, Request
from repro.serve.profiles import LatencyProfile
from repro.serve.stats import DepthTimeline

#: Sentinel depth published for devices that are not accepting work;
#: larger than any real queue so depth-ranking schedulers skip them.
DRAINED_DEPTH = 1 << 30


@dataclass(frozen=True)
class ServeDevice:
    """One accelerator instance in the fleet."""

    name: str  # e.g. "gp102#0"
    platform: object  # GpuConfig or AcceleratorConfig


def build_fleet(spec: str) -> list[ServeDevice]:
    """Parse ``"gp102:2,tx1"`` into named device instances.

    Each comma-separated entry is ``platform`` or ``platform:count``;
    instances are numbered per platform in spec order.
    """
    fleet: list[ServeDevice] = []
    counters: dict[str, int] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count_text = entry.partition(":")
        name = name.strip().lower()
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(f"bad device count in fleet entry {entry!r}") from None
        if count < 1:
            raise ValueError(f"device count must be >= 1 in {entry!r}")
        platform = make_config(name)
        for _ in range(count):
            index = counters.get(name, 0)
            counters[name] = index + 1
            fleet.append(ServeDevice(f"{name}#{index}", platform))
    if not fleet:
        raise ValueError(f"empty fleet spec {spec!r}")
    return fleet


class DeviceState:
    """Mutable serving state of one fleet device."""

    __slots__ = (
        "device", "profiles", "max_batch", "batch_timeout_ms", "max_queue",
        "index", "depths", "batchers", "busy", "busy_until", "flush_at",
        "pending", "accepting", "busy_ms", "batches", "served", "shed",
        "timeline", "static_watts", "dynamic_j", "active_ms", "_span_start",
    )

    def __init__(
        self,
        device: ServeDevice,
        profiles: Mapping[str, LatencyProfile],
        max_batch: int,
        batch_timeout_ms: float,
        max_queue: int,
        index: int = 0,
        depths: list[int] | None = None,
    ) -> None:
        self.device = device
        self.profiles = dict(profiles)
        self.max_batch = max_batch
        self.batch_timeout_ms = batch_timeout_ms
        self.max_queue = max_queue
        #: Position in the fleet (and in the shared ``depths`` list).
        self.index = index
        #: Fleet-shared flat depth list (see module docstring).
        self.depths = depths if depths is not None else [0] * (index + 1)
        self.batchers = {
            network: DynamicBatcher(max_batch, batch_timeout_ms)
            for network in self.profiles
        }
        self.busy = False
        self.busy_until = 0.0
        #: Deadline of the currently scheduled flush event, if any.
        self.flush_at: float | None = None
        #: Requests queued (all networks); incremental, O(1) to read.
        self.pending = 0
        #: Whether the device takes new work (autoscaler drains toggle this).
        self.accepting = True
        # Result counters.
        self.busy_ms = 0.0
        self.batches = 0
        self.served = 0
        self.shed = 0
        self.timeline = DepthTimeline()
        #: GPUWattch static (leakage) power while the device is active.
        self.static_watts = 0.0
        #: Accumulated dynamic (activity) energy of launched batches.
        self.dynamic_j = 0.0
        #: Closed active spans (provisioned wall-clock, for static energy).
        self.active_ms = 0.0
        self._span_start: float | None = 0.0
        self.depths[index] = 0

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        """Total requests pending across all networks."""
        return self.pending

    @property
    def full(self) -> bool:
        return self.pending >= self.max_queue

    @property
    def depth_timeline(self) -> list[tuple[float, int]]:
        """Downsampled (time_ms, depth) points recorded so far."""
        return self.timeline.points

    def profile(self, network: str) -> LatencyProfile:
        return self.profiles[network]

    def enqueue(self, request: Request, now_ms: float) -> None:
        self.batchers[request.network].add(request)
        self.pending += 1
        if self.accepting:
            self.depths[self.index] = self.pending
        self.timeline.record(now_ms, self.pending)

    def take_batch(self, network: str, now_ms: float) -> list[Request]:
        """Pop the launchable batch for *network*, keeping the pending
        counter, shared depth and timeline in sync."""
        batch = self.batchers[network].pop_batch(now_ms, force=True)
        self.pending -= len(batch)
        if self.accepting:
            self.depths[self.index] = self.pending
        self.timeline.record(now_ms, self.pending)
        return batch

    # -- autoscaling lifecycle -----------------------------------------
    def activate(self, now_ms: float) -> None:
        """Start (or resume) accepting work; opens an active span."""
        self.accepting = True
        self.depths[self.index] = self.pending
        if self._span_start is None:
            self._span_start = now_ms

    def drain(self, now_ms: float) -> None:
        """Stop accepting new work.  Queued and in-flight work still
        completes; the active span closes once the device is idle and
        empty (or immediately if it already is)."""
        self.accepting = False
        self.depths[self.index] = DRAINED_DEPTH
        self.maybe_retire(now_ms)

    def maybe_retire(self, now_ms: float) -> None:
        """Close the active span of a drained device that has gone
        idle and empty (called by the engine after completions)."""
        if (
            not self.accepting
            and self._span_start is not None
            and not self.busy
            and not self.pending
        ):
            self.active_ms += now_ms - self._span_start
            self._span_start = None

    def finalize(self, end_ms: float) -> None:
        """Close any open active span at end of run.

        The clamp covers a device activated by an autoscaler tick that
        fired after the last real (clock-advancing) event.
        """
        if self._span_start is not None:
            self.active_ms += max(0.0, end_ms - self._span_start)
            self._span_start = None

    def energy_j(self) -> float:
        """Total device energy: static leakage over the provisioned
        (active) span plus accumulated dynamic batch energy."""
        return self.static_watts * self.active_ms / 1e3 + self.dynamic_j

    # ------------------------------------------------------------------
    def estimate_finish_ms(self, network: str, now_ms: float) -> float:
        """Greedy completion estimate for one more *network* request.

        Remaining busy time, plus every queued network's backlog at its
        achievable batch size, plus a batch-1 inference for the new
        request.  Deliberately ignores co-batching of the new request
        with queued work — a pessimistic but monotone estimate that is
        what the latency-aware scheduler ranks devices by.
        """
        estimate = max(now_ms, self.busy_until if self.busy else now_ms)
        for queued_network, batcher in self.batchers.items():
            pending = len(batcher)
            if not pending:
                continue
            profile = self.profiles[queued_network]
            batches = math.ceil(pending / self.max_batch)
            estimate += batches * profile.latency_ms(min(pending, self.max_batch))
        return estimate + self.profiles[network].latency_ms(1)
