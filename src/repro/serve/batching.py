"""Requests and the FIFO dynamic batcher.

One :class:`DynamicBatcher` manages the pending requests of one
(device, network) stream.  Its contract — the invariants the property
tests in ``tests/test_serve_batching.py`` pin down:

* a popped batch never exceeds ``max_batch`` requests;
* a batch is *ready* as soon as it is full **or** its oldest request
  has waited ``timeout_ms`` (the engine schedules a flush event at
  exactly that deadline, so no request is ever held waiting for
  co-batching past the timeout while its device sits idle);
* requests leave in arrival order (FIFO within and across batches).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(slots=True)
class Request:
    """One inference request travelling through the serving simulator.

    ``slots=True`` matters here: a million-request day-in-the-life run
    allocates one of these per request, and the slotted layout roughly
    halves both the per-object footprint and the attribute-access cost
    on the hot path.
    """

    id: int
    network: str
    arrival_ms: float
    #: Owning tenant name ("" for single-tenant runs).
    tenant: str = ""
    #: Filled in by the engine when the request's batch launches/retires.
    start_ms: float = field(default=-1.0, compare=False)
    finish_ms: float = field(default=-1.0, compare=False)

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion latency (valid once retired)."""
        return self.finish_ms - self.arrival_ms


class DynamicBatcher:
    """FIFO dynamic batcher with a size cap and a head-of-line timeout."""

    def __init__(self, max_batch: int, timeout_ms: float) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0")
        self.max_batch = max_batch
        self.timeout_ms = timeout_ms
        self._pending: deque[Request] = deque()

    def add(self, request: Request) -> None:
        """Append *request* to the pending queue."""
        self._pending.append(request)

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_arrival_ms(self) -> float | None:
        """Arrival time of the head request, or None when empty."""
        return self._pending[0].arrival_ms if self._pending else None

    def deadline_ms(self) -> float | None:
        """Latest time the head request may keep waiting for co-batching."""
        oldest = self.oldest_arrival_ms
        return None if oldest is None else oldest + self.timeout_ms

    def ready(self, now_ms: float) -> bool:
        """True when a batch should launch: full, or head timed out."""
        if len(self._pending) >= self.max_batch:
            return True
        deadline = self.deadline_ms()
        return deadline is not None and now_ms >= deadline

    def pop_batch(self, now_ms: float, force: bool = False) -> list[Request]:
        """Dequeue up to ``max_batch`` requests in FIFO order.

        Returns an empty list when the batch is not ready and *force*
        is false (the engine forces when a device frees up and work is
        pending regardless of deadlines).
        """
        if not self._pending or not (force or self.ready(now_ms)):
            return []
        size = min(self.max_batch, len(self._pending))
        return [self._pending.popleft() for _ in range(size)]
