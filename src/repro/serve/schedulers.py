"""Request-to-device scheduling policies.

A scheduler sees the arriving request and the live fleet state and
names the device that should take it (or ``None`` to shed when every
queue is full — admission control is its own pipeline stage, the
scheduler just never picks a full or drained device).  All three
built-ins are deterministic and break ties by fleet order, which keeps
whole runs reproducible.

* ``round-robin`` — strict rotation, blind to load and device speed;
* ``least-loaded`` — shortest queue first, blind to device speed;
* ``latency-aware`` — greedy SLO-aware: minimize the estimated
  completion time (:meth:`DeviceState.estimate_finish_ms`), which folds
  together queue depth *and* the per-device latency profile, so slow
  devices only absorb traffic once fast ones are saturated.

**Fast hooks.**  Depth-only policies (round-robin, least-loaded)
support :meth:`attach`: the engine hands them the fleet-shared flat
``depths`` list (see :mod:`repro.serve.devices`) and the queue bound,
and ``choose`` then scans plain ints instead of device objects —
roughly an order of magnitude cheaper at 100 devices.  The attached
scan is *definitionally* equivalent to the object scan: ``depths[i]``
equals ``devices[i].pending`` while the device accepts work and a
beyond-capacity sentinel otherwise, so "skip full or drained" and the
tie-breaks are the same predicate on the same numbers.  Both event
loops attach the same way, so scheduling can never diverge between
them.  The latency-aware policy has no flat-scan form (its estimate
walks per-network batchers) and stays object-based — correct on every
loop, but the documented slow choice for very large fleets.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.serve.batching import Request
from repro.serve.devices import DeviceState


class Scheduler(Protocol):
    """The policy interface: pick a device index for each request."""

    name: str

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        """Index of the chosen device, or None to shed the request."""
        ...


class RoundRobinScheduler:
    """Strict rotation over the fleet, skipping full devices."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0
        self._depths: list[int] | None = None
        self._max_queue = 0

    def reset(self) -> None:
        """Forget run state (the engine calls this at run start)."""
        self._next = 0
        self._depths = None

    def attach(self, depths: list[int], max_queue: int) -> None:
        """Adopt the fleet-shared depth list (engine fast hook)."""
        self._depths = depths
        self._max_queue = max_queue

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        depths = self._depths
        if depths is not None:
            count = len(depths)
            start = self._next
            max_queue = self._max_queue
            for offset in range(count):
                index = start + offset
                if index >= count:
                    index -= count
                if depths[index] < max_queue:
                    self._next = index + 1 if index + 1 < count else 0
                    return index
            return None
        for offset in range(len(devices)):
            index = (self._next + offset) % len(devices)
            state = devices[index]
            if state.accepting and not state.full:
                self._next = (index + 1) % len(devices)
                return index
        return None


class LeastLoadedScheduler:
    """Shortest total queue wins; fleet order breaks ties."""

    name = "least-loaded"

    def __init__(self) -> None:
        self._depths: list[int] | None = None
        self._max_queue = 0

    def reset(self) -> None:
        self._depths = None

    def attach(self, depths: list[int], max_queue: int) -> None:
        """Adopt the fleet-shared depth list (engine fast hook)."""
        self._depths = depths
        self._max_queue = max_queue

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        depths = self._depths
        if depths is not None:
            # Two C-speed scans beat one Python loop by ~5x at 100
            # devices: min() finds the smallest depth, index() its
            # first holder — which is exactly the first (fleet-order)
            # strict minimum the object scan below picks.
            shallowest = min(depths)
            if shallowest >= self._max_queue:
                return None
            return depths.index(shallowest)
        best_index: int | None = None
        best_len = -1
        for index, state in enumerate(devices):
            if not state.accepting or state.full:
                continue
            depth = state.queue_len
            if best_index is None or depth < best_len:
                best_index, best_len = index, depth
        return best_index


class LatencyAwareScheduler:
    """Greedy minimum-estimated-completion-time (SLO-greedy) policy."""

    name = "latency-aware"

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        best: int | None = None
        best_eta = 0.0
        for index, state in enumerate(devices):
            if not state.accepting or state.full:
                continue
            eta = state.estimate_finish_ms(request.network, now_ms)
            if best is None or eta < best_eta:
                best, best_eta = index, eta
        return best


#: Registry of scheduler factories by policy name.
SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LeastLoadedScheduler.name: LeastLoadedScheduler,
    LatencyAwareScheduler.name: LatencyAwareScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduling policy by name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {', '.join(SCHEDULERS)}"
        ) from None
