"""Request-to-device scheduling policies.

A scheduler sees the arriving request and the live fleet state and
names the device that should take it (or ``None`` to shed when every
queue is full — admission control stays with the engine, the scheduler
just never picks a full device).  All three built-ins are deterministic
and break ties by fleet order, which keeps whole runs reproducible.

* ``round-robin`` — strict rotation, blind to load and device speed;
* ``least-loaded`` — shortest queue first, blind to device speed;
* ``latency-aware`` — greedy SLO-aware: minimize the estimated
  completion time (:meth:`DeviceState.estimate_finish_ms`), which folds
  together queue depth *and* the per-device latency profile, so slow
  devices only absorb traffic once fast ones are saturated.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.serve.batching import Request
from repro.serve.devices import DeviceState


class Scheduler(Protocol):
    """The policy interface: pick a device index for each request."""

    name: str

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        """Index of the chosen device, or None to shed the request."""
        ...


class RoundRobinScheduler:
    """Strict rotation over the fleet, skipping full devices."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        for offset in range(len(devices)):
            index = (self._next + offset) % len(devices)
            if not devices[index].full:
                self._next = (index + 1) % len(devices)
                return index
        return None


class LeastLoadedScheduler:
    """Shortest total queue wins; fleet order breaks ties."""

    name = "least-loaded"

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        best: int | None = None
        best_depth = -1
        for index, state in enumerate(devices):
            if state.full:
                continue
            depth = state.queue_len
            if best is None or depth < best_depth:
                best, best_depth = index, depth
        return best


class LatencyAwareScheduler:
    """Greedy minimum-estimated-completion-time (SLO-greedy) policy."""

    name = "latency-aware"

    def choose(
        self, request: Request, devices: Sequence[DeviceState], now_ms: float
    ) -> int | None:
        best: int | None = None
        best_eta = 0.0
        for index, state in enumerate(devices):
            if state.full:
                continue
            eta = state.estimate_finish_ms(request.network, now_ms)
            if best is None or eta < best_eta:
                best, best_eta = index, eta
        return best


#: Registry of scheduler factories by policy name.
SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LeastLoadedScheduler.name: LeastLoadedScheduler,
    LatencyAwareScheduler.name: LatencyAwareScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduling policy by name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {', '.join(SCHEDULERS)}"
        ) from None
