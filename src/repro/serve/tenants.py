"""Multi-tenant workloads: named tenants with their own SLOs and
priorities, overlaid onto one request stream.

A :class:`Tenant` names one customer of the simulated service: its SLO
(used for per-tenant attainment and for the SLO-aware admission gate),
its priority class (0 is highest; the admission layer sheds low
priorities first under load) and a reporting weight.

:class:`MultiTenantWorkload` overlays any number of per-tenant
workloads — diurnal, bursty, Poisson, trace replay, closed-loop, in
any mix — into a single deterministic stream.  Each tenant's
sub-workload draws from its *own* ``random.Random`` seeded from the
run seed at :meth:`prime` time, so a tenant's arrival process is
independent of how the other tenants' events interleave (and of the
scheduling policy under test): swapping schedulers never perturbs the
offered load.  The per-stream generators are per-run state,
re-initialized on every ``prime`` call, so one workload object can
drive several runs back-to-back and produce identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.serve.batching import Request
from repro.serve.workload import Arrival, Workload

#: Name used for the implicit tenant of single-tenant runs.  Plain
#: (untagged) arrivals are attributed to it by the engine.
DEFAULT_TENANT_NAME = "default"


@dataclass(frozen=True)
class Tenant:
    """One named customer of the serving fleet."""

    name: str
    #: Per-tenant latency SLO; attainment is reported against this.
    slo_ms: float
    #: Priority class, 0 = highest.  Admission sheds high numbers first.
    priority: int = 0
    #: Reporting weight (reserved for fair-share policies; surfaces in
    #: the scenario report).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.slo_ms <= 0:
            raise ValueError(f"tenant {self.name!r}: slo_ms must be > 0")
        if self.priority < 0:
            raise ValueError(f"tenant {self.name!r}: priority must be >= 0")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")


def default_tenant(slo_ms: float) -> Tenant:
    """The implicit tenant wrapping a plain single-stream workload."""
    return Tenant(DEFAULT_TENANT_NAME, slo_ms=slo_ms, priority=0)


class MultiTenantWorkload(Workload):
    """Deterministic overlay of per-tenant workloads.

    Arrivals are tagged with the owning tenant's name and stream index;
    chaining delegates to the tagged sub-workload with its private rng.
    """

    def __init__(self, parts: Sequence[tuple[Tenant, Workload]]) -> None:
        if not parts:
            raise ValueError("at least one (tenant, workload) pair required")
        names = [tenant.name for tenant, _ in parts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.parts = tuple(parts)
        self.closed_loop = any(wl.closed_loop for _, wl in parts)
        self._by_name = {tenant.name: i for i, (tenant, _) in enumerate(parts)}
        # Per-run state, re-created by prime().
        self._rngs: list[Random] = []
        self._issued: list[int] = []

    @property
    def tenants(self) -> tuple[Tenant, ...]:
        return tuple(tenant for tenant, _ in self.parts)

    def _tag(self, arrival: Arrival | None, stream: int) -> Arrival | None:
        if arrival is None:
            return None
        tenant, _ = self.parts[stream]
        return Arrival(
            arrival.time_ms, arrival.network, arrival.index,
            tenant.name, stream,
        )

    def prime(self, rng: Random) -> list[Arrival]:
        # One private generator per stream, seeded from the run seed in
        # declaration order: tenant streams stay independent of event
        # interleaving (and therefore of the policies under test).
        self._rngs = [Random(rng.getrandbits(64)) for _ in self.parts]
        self._issued = [0] * len(self.parts)
        primed: list[Arrival] = []
        for stream, (_, workload) in enumerate(self.parts):
            initial = workload.prime(self._rngs[stream])
            self._issued[stream] = len(initial)
            primed.extend(self._tag(arrival, stream) for arrival in initial)
        return primed

    def next_arrival(self, prev: Arrival, rng: Random) -> Arrival | None:
        stream = prev.stream
        _, workload = self.parts[stream]
        nxt = workload.next_arrival(prev, self._rngs[stream])
        if nxt is not None:
            self._issued[stream] += 1
        return self._tag(nxt, stream)

    def on_completion(
        self, request: Request, now_ms: float, issued: int, rng: Random
    ) -> Arrival | None:
        # ``issued`` from the engine is the global count; closed-loop
        # sub-workloads need their own stream's count.
        stream = self._by_name[request.tenant]
        _, workload = self.parts[stream]
        nxt = workload.on_completion(
            request, now_ms, self._issued[stream], self._rngs[stream]
        )
        if nxt is not None:
            self._issued[stream] += 1
        return self._tag(nxt, stream)
