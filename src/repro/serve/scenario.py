"""Declarative serving scenarios: files (TOML/JSON) or dicts -> runs.

A scenario describes one multi-tenant serving simulation — fleet,
policies, autoscaling and per-tenant request streams — as data rather
than code, in the load-time-validation style of
:mod:`repro.campaign.spec`: anything that loads at all can run.  The
grammar (TOML shown; the JSON/dict form is the same tree):

.. code-block:: toml

    [scenario]
    name = "day-in-the-life"       # required
    description = "..."            # optional
    seed = 0                       # optional (default 0)
    loop = "fast"                  # optional: "fast" (default) or "heap"

    [fleet]
    devices = "gp102:4,tx1:2"      # required fleet spec (build_fleet)

    [serving]                      # optional; ServeConfig defaults
    scheduler = "least-loaded"     # serving policy (SCHEDULERS)
    max_batch = 8
    batch_timeout_ms = 2.0
    max_queue = 256
    slo_ms = 50.0                  # fallback SLO for untagged requests

    [admission]                    # optional; omitted = no shedding
    policy = "slo-aware"           # ADMISSION_POLICIES
    priority_fill = [1.0, 0.75, 0.5]
    slo_slack = 1.0

    [autoscale]                    # optional; omitted = fixed fleet
    template = "gp102"             # required inside the table
    min_devices = 2                # remaining keys = AutoscaleConfig
    max_devices = 8

    [[tenants]]                    # at least one required
    name = "interactive"           # unique
    slo_ms = 25.0                  # required
    priority = 0
    weight = 1.0
    [tenants.arrival]
    kind = "diurnal"               # poisson|bursty|diurnal|closed|trace
    base_rps = 120.0               # remaining keys are kind-specific
    requests = 100000              # (the workload constructor kwargs)
    networks = ["alexnet"]

Every key is checked: unknown tables, unknown keys inside a table,
unknown networks/platforms/schedulers/policies/loops and malformed
arrival specs all raise :class:`ScenarioError` naming the offending
value.  ``trace`` arrivals resolve relative ``path`` values against
the scenario file's directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.suite import EXTENSION_NETWORKS, NETWORK_ORDER
from repro.serve.admission import ADMISSION_POLICIES
from repro.serve.autoscale import AutoscaleConfig
from repro.serve.devices import ServeDevice, build_fleet
from repro.serve.engine import LOOPS, ServeConfig
from repro.serve.pipeline import ServePipeline, make_pipeline
from repro.serve.schedulers import SCHEDULERS
from repro.serve.tenants import MultiTenantWorkload, Tenant
from repro.serve.workload import (
    BurstyWorkload,
    ClosedLoopWorkload,
    DiurnalWorkload,
    PoissonWorkload,
    TraceWorkload,
    Workload,
)


class ScenarioError(ValueError):
    """A malformed or unsatisfiable serving scenario."""


def _fail(message: str) -> ScenarioError:
    return ScenarioError(f"serve scenario: {message}")


@dataclass(frozen=True)
class ServeScenario:
    """One validated serving scenario, ready to build and run."""

    name: str
    description: str = ""
    seed: int = 0
    #: Event loop to run ("fast" or "heap").
    loop: str = "fast"
    #: Fleet spec string (``build_fleet`` grammar).
    fleet_spec: str = "gp102"
    #: Engine knobs (scheduler, batching, queue bound, fallback SLO).
    config: ServeConfig = field(default_factory=ServeConfig)
    #: Constructor kwargs of the admission policy (policy name is in
    #: ``config.admission``).
    admission_options: dict = field(default_factory=dict)
    #: Autoscaler configuration, or None for a fixed fleet.
    autoscale: AutoscaleConfig | None = None
    #: Validated ``(tenant, workload)`` pairs, in declaration order.
    parts: tuple = ()

    @property
    def networks(self) -> tuple[str, ...]:
        """Every network any tenant serves, sorted and deduplicated."""
        names: set[str] = set()
        for _, workload in self.parts:
            names.update(getattr(workload, "networks", ()))
            # Trace replays carry no declared network list; collect
            # from the recorded arrivals instead.
            for arrival in getattr(workload, "arrivals", ()):
                names.add(arrival.network)
        return tuple(sorted(names))

    @property
    def tenants(self) -> tuple[Tenant, ...]:
        return tuple(tenant for tenant, _ in self.parts)

    def fleet(self) -> list[ServeDevice]:
        """A fresh fleet instance from the validated spec."""
        return build_fleet(self.fleet_spec)

    def workload(self) -> MultiTenantWorkload:
        """A fresh multi-tenant workload over the validated parts."""
        return MultiTenantWorkload(list(self.parts))

    def pipeline(self) -> ServePipeline:
        """A fresh pipeline with the scenario's policies."""
        return make_pipeline(
            admission=self.config.admission,
            autoscale=self.autoscale,
            admission_options=dict(self.admission_options),
        )

    def describe(self) -> dict:
        """Flat parameter mapping for the report's scenario table."""
        out: dict = {
            "scenario": self.name,
            "devices": self.fleet_spec,
            "scheduler": self.config.scheduler,
            "admission": self.config.admission,
            "max_batch": self.config.max_batch,
            "batch_timeout_ms": self.config.batch_timeout_ms,
            "max_queue": self.config.max_queue,
            "seed": self.seed,
            "loop": self.loop,
            "tenants": ", ".join(
                f"{t.name} (slo {t.slo_ms:g} ms, prio {t.priority})"
                for t in self.tenants
            ),
        }
        if self.autoscale is not None:
            out["autoscale"] = (
                f"{self.autoscale.template} x "
                f"[{self.autoscale.min_devices}, {self.autoscale.max_devices}]"
            )
        return out


def _check_keys(table: dict, known: tuple[str, ...], where: str) -> None:
    unknown = [key for key in table if key not in known]
    if unknown:
        raise _fail(
            f"unknown key {unknown[0]!r} in {where}; "
            f"known keys: {', '.join(known)}"
        )


def _number(table: dict, key: str, where: str, default):
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(f"{where}.{key} must be a number, got {value!r}")
    return value


def _integer(table: dict, key: str, where: str, default):
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(f"{where}.{key} must be an integer, got {value!r}")
    return value


def _networks(raw, where: str) -> tuple[str, ...]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise _fail(f"{where}.networks must be a non-empty list")
    known = tuple(NETWORK_ORDER) + tuple(EXTENSION_NETWORKS)
    for name in raw:
        if name not in known:
            raise _fail(
                f"{where}: unknown network {name!r}; "
                f"available: {', '.join(known)}"
            )
    return tuple(raw)


def _weights(table: dict, count: int, where: str):
    raw = table.get("weights")
    if raw is None:
        return None
    if not isinstance(raw, (list, tuple)) or len(raw) != count:
        raise _fail(
            f"{where}.weights must list one weight per network ({count})"
        )
    return tuple(float(w) for w in raw)


#: Keys accepted by each arrival kind (beyond "kind" itself).
_ARRIVAL_KEYS = {
    "poisson": ("rps", "requests", "networks", "weights"),
    "bursty": ("rps", "requests", "networks", "weights",
               "on_ms", "off_ms", "off_factor"),
    "diurnal": ("base_rps", "requests", "networks", "weights",
                "period_ms", "amplitude", "phase_ms", "segments"),
    "closed": ("clients", "requests", "networks", "weights", "think_ms"),
    "trace": ("path",),
}


def _build_arrival(table: dict, where: str, base_dir: Path) -> Workload:
    if not isinstance(table, dict):
        raise _fail(f"{where} must be a table")
    kind = table.get("kind")
    if kind not in _ARRIVAL_KEYS:
        raise _fail(
            f"{where}.kind must be one of {', '.join(_ARRIVAL_KEYS)}; "
            f"got {kind!r}"
        )
    _check_keys(table, ("kind",) + _ARRIVAL_KEYS[kind], where)
    try:
        if kind == "trace":
            raw_path = table.get("path")
            if not isinstance(raw_path, str) or not raw_path:
                raise _fail(f"{where}.path is required for trace arrivals")
            path = Path(raw_path)
            if not path.is_absolute():
                path = base_dir / path
            return TraceWorkload.from_json(path)
        networks = _networks(table.get("networks"), where)
        weights = _weights(table, len(networks), where)
        requests = _integer(table, "requests", where, 10_000)
        if kind == "poisson":
            return PoissonWorkload(
                _number(table, "rps", where, 100.0), requests, networks,
                weights=weights,
            )
        if kind == "bursty":
            return BurstyWorkload(
                _number(table, "rps", where, 100.0), requests, networks,
                on_ms=_number(table, "on_ms", where, 100.0),
                off_ms=_number(table, "off_ms", where, 400.0),
                off_factor=_number(table, "off_factor", where, 0.1),
                weights=weights,
            )
        if kind == "diurnal":
            return DiurnalWorkload(
                _number(table, "base_rps", where, 100.0), requests, networks,
                period_ms=_number(table, "period_ms", where, 86_400_000.0),
                amplitude=_number(table, "amplitude", where, 0.8),
                phase_ms=_number(table, "phase_ms", where, 0.0),
                segments=_integer(table, "segments", where, 96),
                weights=weights,
            )
        return ClosedLoopWorkload(
            _integer(table, "clients", where, 32), requests, networks,
            think_ms=_number(table, "think_ms", where, 10.0),
            weights=weights,
        )
    except ScenarioError:
        raise
    except (OSError, KeyError, ValueError) as exc:
        raise _fail(f"{where}: {exc}") from exc


def _build_tenant(table: dict, index: int, base_dir: Path):
    where = f"tenants[{index}]"
    if not isinstance(table, dict):
        raise _fail(f"{where} must be a table")
    _check_keys(
        table, ("name", "slo_ms", "priority", "weight", "arrival"), where
    )
    name = table.get("name")
    if not isinstance(name, str) or not name:
        raise _fail(f"{where}.name must be a non-empty string")
    arrival = table.get("arrival")
    if arrival is None:
        raise _fail(f"{where} is missing its [tenants.arrival] table")
    try:
        tenant = Tenant(
            name,
            slo_ms=_number(table, "slo_ms", where, 0.0),
            priority=_integer(table, "priority", where, 0),
            weight=_number(table, "weight", where, 1.0),
        )
    except ValueError as exc:
        raise _fail(f"{where}: {exc}") from exc
    return tenant, _build_arrival(arrival, f"{where}.arrival", base_dir)


def scenario_from_dict(data: dict, base_dir: str | Path = ".") -> ServeScenario:
    """Validate a raw scenario tree into a :class:`ServeScenario`."""
    if not isinstance(data, dict):
        raise _fail(
            f"expected a table/dict at the top level, got {type(data).__name__}"
        )
    base_dir = Path(base_dir)
    _check_keys(
        data,
        ("scenario", "fleet", "serving", "admission", "autoscale", "tenants"),
        "the scenario file",
    )

    meta = data.get("scenario", {})
    if not isinstance(meta, dict) or not meta.get("name"):
        raise _fail("missing [scenario] name")
    _check_keys(meta, ("name", "description", "seed", "loop"), "[scenario]")
    loop = meta.get("loop", "fast")
    if loop not in LOOPS:
        raise _fail(f"loop must be one of {', '.join(LOOPS)}; got {loop!r}")
    seed = _integer(meta, "seed", "[scenario]", 0)

    fleet_table = data.get("fleet", {})
    if not isinstance(fleet_table, dict) or not fleet_table.get("devices"):
        raise _fail("missing [fleet] devices spec")
    _check_keys(fleet_table, ("devices",), "[fleet]")
    fleet_spec = str(fleet_table["devices"])
    try:
        build_fleet(fleet_spec)
    except (KeyError, ValueError) as exc:
        raise _fail(f"[fleet] devices: {exc}") from exc

    serving = data.get("serving", {})
    if not isinstance(serving, dict):
        raise _fail("[serving] must be a table")
    _check_keys(
        serving,
        ("scheduler", "max_batch", "batch_timeout_ms", "max_queue", "slo_ms"),
        "[serving]",
    )
    scheduler = serving.get("scheduler", "latency-aware")
    if scheduler not in SCHEDULERS:
        raise _fail(
            f"unknown scheduler {scheduler!r}; "
            f"available: {', '.join(SCHEDULERS)}"
        )

    admission_table = data.get("admission", {})
    if not isinstance(admission_table, dict):
        raise _fail("[admission] must be a table")
    admission = admission_table.get("policy", "none") if admission_table else "none"
    if admission not in ADMISSION_POLICIES:
        raise _fail(
            f"unknown admission policy {admission!r}; "
            f"available: {', '.join(ADMISSION_POLICIES)}"
        )
    admission_options = {
        key: value for key, value in admission_table.items() if key != "policy"
    }

    autoscale_table = data.get("autoscale")
    autoscale = None
    if autoscale_table is not None:
        if not isinstance(autoscale_table, dict) or not autoscale_table.get("template"):
            raise _fail("[autoscale] requires a template platform name")
        try:
            autoscale = AutoscaleConfig(**autoscale_table)
        except (TypeError, ValueError) as exc:
            raise _fail(f"[autoscale]: {exc}") from exc
        from repro.platforms import list_platforms

        if autoscale.template.lower() not in list_platforms():
            raise _fail(
                f"[autoscale] template {autoscale.template!r} is not a "
                f"registered platform; available: {', '.join(list_platforms())}"
            )

    raw_tenants = data.get("tenants")
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise _fail("at least one [[tenants]] table is required")
    parts = tuple(
        _build_tenant(table, index, base_dir)
        for index, table in enumerate(raw_tenants)
    )
    names = [tenant.name for tenant, _ in parts]
    if len(set(names)) != len(names):
        raise _fail(f"duplicate tenant names in {names}")

    try:
        config = ServeConfig(
            slo_ms=_number(serving, "slo_ms", "[serving]", 50.0),
            max_batch=_integer(serving, "max_batch", "[serving]", 8),
            batch_timeout_ms=_number(
                serving, "batch_timeout_ms", "[serving]", 2.0
            ),
            max_queue=_integer(serving, "max_queue", "[serving]", 256),
            scheduler=scheduler,
            seed=seed,
            admission=admission,
        )
        # Surface bad admission kwargs (e.g. a typo'd priority_fill) at
        # load time, not at run time.
        make_pipeline(
            admission=admission,
            autoscale=autoscale,
            admission_options=dict(admission_options),
        )
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise _fail(str(exc)) from exc

    return ServeScenario(
        name=str(meta["name"]),
        description=str(meta.get("description", "")),
        seed=seed,
        loop=loop,
        fleet_spec=fleet_spec,
        config=config,
        admission_options=admission_options,
        autoscale=autoscale,
        parts=parts,
    )


def load_scenario(source) -> ServeScenario:
    """Load a scenario from a TOML/JSON file path or a raw dict.

    File format follows the suffix (``.toml`` / ``.json``); anything
    else is tried as TOML first, then JSON.  Parse errors, IO errors
    and validation errors all surface as :class:`ScenarioError`.
    """
    if isinstance(source, dict):
        return scenario_from_dict(source)
    path = Path(source)
    try:
        text = path.read_text()
    except OSError as exc:
        raise _fail(f"cannot read {path}: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".json":
        parsers = (_parse_json,)
    elif suffix == ".toml":
        parsers = (_parse_toml,)
    else:
        parsers = (_parse_toml, _parse_json)
    errors = []
    for parse in parsers:
        try:
            return scenario_from_dict(parse(text), path.parent)
        except ScenarioError:
            raise
        except ValueError as exc:
            errors.append(str(exc))
    raise _fail(f"cannot parse {path}: {'; '.join(errors)}")


def _parse_toml(text: str) -> dict:
    import tomllib

    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"TOML: {exc}") from exc


def _parse_json(text: str) -> dict:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"JSON: {exc}") from exc
