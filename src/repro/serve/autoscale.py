"""Queue-depth / SLO-attainment autoscaling with hysteresis.

The autoscaler is evaluated at fixed simulated intervals (``tick``
events in the engine).  Each tick it sees one :class:`AutoscaleSignals`
snapshot — accepting-device count, total queued requests, and the
completion/SLO counts of the window since the previous tick — and
answers with a fleet delta: +1 (add or un-drain one device), -1 (drain
one device) or 0.

Hysteresis is structural, not incidental (DESIGN.md §15):

* **dead band** — the scale-up queue-depth threshold is strictly above
  the scale-down threshold, so a fleet sitting between them never
  moves;
* **projection guard** — a scale-down is allowed only when the queue
  depth *projected onto the smaller fleet* stays below the scale-up
  threshold times a safety margin, so under constant load a removal
  can never trigger the next tick's addition;
* **cooldown** — after any action, further actions wait
  ``cooldown_ms``, bounding the reaction rate to bursts.

Together these make oscillation impossible under constant load: a
scale-down leaves the projected per-device depth below ``up_queue_depth
* safety``, so with an unchanged offered load the up condition cannot
fire next — the property test in ``tests/test_serve_autoscale.py``
drives random signal streams through the policy and asserts a
down-decision is never followed by an up-decision while the total
queue signal is non-increasing.

Like every pipeline stage, the policy is deterministic and shared by
both event loops.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscaleConfig:
    """Policy knobs of the queue-depth autoscaler."""

    #: Platform name used for devices the autoscaler creates.
    template: str
    min_devices: int = 1
    max_devices: int = 8
    #: Evaluation period (one tick) in simulated milliseconds.
    interval_ms: float = 1000.0
    #: Minimum simulated time between two scaling actions.
    cooldown_ms: float = 5000.0
    #: Scale up when mean queued requests per accepting device exceed this.
    up_queue_depth: float = 8.0
    #: Scale down only when they are below this (must be < up_queue_depth).
    down_queue_depth: float = 1.0
    #: Scale up when the window's SLO attainment drops below this floor.
    slo_floor: float = 0.95
    #: Scale-down projection margin: the post-removal depth must stay
    #: below ``up_queue_depth * safety``.
    safety: float = 0.8

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ValueError("min_devices must be >= 1")
        if self.max_devices < self.min_devices:
            raise ValueError("max_devices must be >= min_devices")
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be > 0")
        if self.cooldown_ms < 0:
            raise ValueError("cooldown_ms must be >= 0")
        if self.down_queue_depth < 0:
            raise ValueError("down_queue_depth must be >= 0")
        if self.up_queue_depth <= self.down_queue_depth:
            raise ValueError(
                "up_queue_depth must be strictly above down_queue_depth "
                "(the hysteresis dead band)"
            )
        if not 0.0 <= self.slo_floor <= 1.0:
            raise ValueError("slo_floor must be in [0, 1]")
        if not 0.0 < self.safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")


@dataclass(frozen=True)
class AutoscaleSignals:
    """One tick's snapshot of the fleet, as the autoscaler sees it."""

    now_ms: float
    #: Devices currently accepting new work.
    accepting: int
    #: Requests queued across the whole fleet (not yet launched).
    pending_total: int
    #: Completions in the window since the last tick.
    window_completed: int
    #: Window completions that met their tenant's SLO.
    window_good: int

    @property
    def queue_per_device(self) -> float:
        return self.pending_total / self.accepting if self.accepting else 0.0

    @property
    def slo_attainment(self) -> float:
        """Window attainment; an empty window reads as healthy (1.0)."""
        if not self.window_completed:
            return 1.0
        return self.window_good / self.window_completed


class QueueDepthAutoscaler:
    """The default hysteresis autoscaler over queue depth + SLO signals."""

    name = "queue-depth"

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self._last_action_ms = float("-inf")

    def reset(self) -> None:
        """Forget run state (the engine calls this at run start)."""
        self._last_action_ms = float("-inf")

    def decide(self, signals: AutoscaleSignals) -> int:
        """+1 to grow the fleet, -1 to shrink it, 0 to hold."""
        cfg = self.config
        if signals.now_ms - self._last_action_ms < cfg.cooldown_ms:
            return 0
        depth = signals.queue_per_device
        attainment = signals.slo_attainment
        if signals.accepting < cfg.min_devices:
            self._last_action_ms = signals.now_ms
            return 1
        if signals.accepting < cfg.max_devices and (
            depth > cfg.up_queue_depth or attainment < cfg.slo_floor
        ):
            self._last_action_ms = signals.now_ms
            return 1
        if (
            signals.accepting > cfg.min_devices
            and depth < cfg.down_queue_depth
            and attainment >= cfg.slo_floor
        ):
            projected = signals.pending_total / (signals.accepting - 1)
            if projected < cfg.up_queue_depth * cfg.safety:
                self._last_action_ms = signals.now_ms
                return -1
        return 0
