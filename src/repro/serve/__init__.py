"""``repro.serve`` — discrete-event inference serving over simulated fleets.

The benchmark suite characterizes each network on each accelerator in
isolation; this package answers the deployment question those numbers
set up: given a *fleet* of simulated devices (any mix of the Table II
platforms), a request stream, per-tenant SLOs and a batching policy,
what latency distribution, goodput, utilization and cost-per-request
does each policy mix deliver?

The layer cake — the staged request pipeline is documented in
:mod:`repro.serve.pipeline` and DESIGN.md §15:

* :mod:`repro.serve.events` — the deterministic event queues (the
  reference heap and the slotted fast path);
* :mod:`repro.serve.profiles` — per-(network, device, batch) latency
  profiles derived from batch-1 :func:`simulate_network` runs (through
  the persistent kernel-result cache), carrying the GPUWattch energy
  split;
* :mod:`repro.serve.devices` — fleet construction and per-device state;
* :mod:`repro.serve.batching` — the FIFO dynamic batcher;
* :mod:`repro.serve.schedulers` — the :class:`Scheduler` protocol and
  the round-robin / least-loaded / latency-aware policies;
* :mod:`repro.serve.admission` — SLO-aware admission control with
  priority classes and load shedding;
* :mod:`repro.serve.autoscale` — queue-depth/SLO autoscaling with
  structural hysteresis;
* :mod:`repro.serve.tenants` — multi-tenant workload overlays with
  per-tenant SLOs and priorities;
* :mod:`repro.serve.workload` — open-loop (Poisson, bursty, diurnal,
  trace replay) and closed-loop request generators;
* :mod:`repro.serve.pipeline` — the pluggable stage bundle;
* :mod:`repro.serve.scenario` — the TOML scenario loader;
* :mod:`repro.serve.engine` — the simulator itself (both event loops);
* :mod:`repro.serve.stats` — the :class:`ServeStats` result container;
* :mod:`repro.serve.report` — markdown reporting in the harness style.

Everything is deterministic: one ``random.Random(seed)`` drives all
stochastic choices and the event queue breaks time ties by insertion
order, so a fixed seed reproduces ``ServeStats`` bit-for-bit — under
either event loop.
"""

from repro.serve.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    NullAdmission,
    SloAwareAdmission,
    make_admission,
)
from repro.serve.autoscale import (
    AutoscaleConfig,
    AutoscaleSignals,
    QueueDepthAutoscaler,
)
from repro.serve.batching import DynamicBatcher, Request
from repro.serve.devices import ServeDevice, build_fleet
from repro.serve.engine import LOOPS, ServeConfig, ServeSim, default_loop, run_serve
from repro.serve.events import EventQueue, SlottedEventQueue
from repro.serve.pipeline import ServePipeline, make_pipeline
from repro.serve.profiles import LatencyProfile, build_profiles, profile_from_result
from repro.serve.scenario import ScenarioError, ServeScenario, load_scenario
from repro.serve.schedulers import SCHEDULERS, Scheduler, make_scheduler
from repro.serve.stats import ServeStats, TenantServeStats
from repro.serve.tenants import (
    DEFAULT_TENANT_NAME,
    MultiTenantWorkload,
    Tenant,
    default_tenant,
)
from repro.serve.workload import (
    Arrival,
    BurstyWorkload,
    ClosedLoopWorkload,
    DiurnalWorkload,
    PoissonWorkload,
    TraceWorkload,
    Workload,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "Arrival",
    "AutoscaleConfig",
    "AutoscaleSignals",
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "DEFAULT_TENANT_NAME",
    "DiurnalWorkload",
    "DynamicBatcher",
    "EventQueue",
    "LOOPS",
    "LatencyProfile",
    "MultiTenantWorkload",
    "NullAdmission",
    "PoissonWorkload",
    "QueueDepthAutoscaler",
    "Request",
    "SCHEDULERS",
    "ScenarioError",
    "Scheduler",
    "ServeConfig",
    "ServeDevice",
    "ServePipeline",
    "ServeScenario",
    "ServeSim",
    "ServeStats",
    "SloAwareAdmission",
    "SlottedEventQueue",
    "Tenant",
    "TenantServeStats",
    "TraceWorkload",
    "Workload",
    "build_fleet",
    "build_profiles",
    "default_loop",
    "default_tenant",
    "load_scenario",
    "make_admission",
    "make_pipeline",
    "make_scheduler",
    "profile_from_result",
    "run_serve",
]
