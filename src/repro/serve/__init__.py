"""``repro.serve`` — discrete-event inference serving over simulated fleets.

The benchmark suite characterizes each network on each accelerator in
isolation; this package answers the deployment question those numbers
set up: given a *fleet* of simulated devices (any mix of the Table II
platforms), a request stream, an SLO and a batching policy, what
latency distribution, goodput and utilization does each scheduling
policy deliver?

The layer cake:

* :mod:`repro.serve.events` — the deterministic event heap;
* :mod:`repro.serve.profiles` — per-(network, device, batch) latency
  profiles derived from batch-1 :func:`simulate_network` runs (through
  the persistent kernel-result cache, so profile building is fast);
* :mod:`repro.serve.devices` — fleet construction and per-device state;
* :mod:`repro.serve.batching` — the FIFO dynamic batcher;
* :mod:`repro.serve.schedulers` — the :class:`Scheduler` protocol and
  the round-robin / least-loaded / latency-aware policies;
* :mod:`repro.serve.workload` — open-loop (Poisson, bursty, trace
  replay) and closed-loop request generators;
* :mod:`repro.serve.engine` — the simulator itself;
* :mod:`repro.serve.stats` — the :class:`ServeStats` result container;
* :mod:`repro.serve.report` — markdown reporting in the harness style.

Everything is deterministic: one ``random.Random(seed)`` drives all
stochastic choices and the event heap breaks time ties by insertion
order, so a fixed seed reproduces ``ServeStats`` bit-for-bit.
"""

from repro.serve.batching import DynamicBatcher, Request
from repro.serve.devices import ServeDevice, build_fleet
from repro.serve.engine import ServeConfig, ServeSim, run_serve
from repro.serve.events import EventQueue
from repro.serve.profiles import LatencyProfile, build_profiles, profile_from_result
from repro.serve.schedulers import SCHEDULERS, Scheduler, make_scheduler
from repro.serve.stats import ServeStats
from repro.serve.workload import (
    Arrival,
    BurstyWorkload,
    ClosedLoopWorkload,
    PoissonWorkload,
    TraceWorkload,
    Workload,
)

__all__ = [
    "Arrival",
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "DynamicBatcher",
    "EventQueue",
    "LatencyProfile",
    "PoissonWorkload",
    "Request",
    "SCHEDULERS",
    "Scheduler",
    "ServeConfig",
    "ServeDevice",
    "ServeSim",
    "ServeStats",
    "TraceWorkload",
    "Workload",
    "build_fleet",
    "build_profiles",
    "make_scheduler",
    "profile_from_result",
    "run_serve",
]
