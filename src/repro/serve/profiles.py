"""Per-(network, device, batch) latency profiles.

The GPU simulator already tells us everything a serving model needs
from **one batch-1 simulation** per (network, device): for every kernel
it reports the sampled per-wave cycle cost, the launch's block count,
and how many blocks one "wave" (full-chip residency) retires.  Batching
an inference multiplies every kernel's grid by the batch size while the
per-wave cost and residency stay fixed, so batch-``b`` latency follows
analytically:

    cycles(b) = sum_k  wave_cost_k * ceil(b * blocks_k / wave_blocks_k)
              + launches * launch_overhead

which reproduces ``NetworkResult.total_time_ms`` exactly at ``b = 1``
and captures the two serving-relevant effects: launch overhead
amortizes across the batch (the RNNs batch almost for free) while
compute saturates once grids fill the chip (VGG-sized CNNs batch
sublinearly, then linearly).

Profile building requests its batch-1 simulations as
:class:`~repro.runs.spec.RunSpec` entries through the shared
:class:`~repro.runs.executor.Executor`, so it reads the same unified
result store the experiment harness fills: a prior ``repro harness run``
sweep makes ``repro serve`` start warm, and a fleet × network profile
matrix costs one cold simulation per pair ever, milliseconds thereafter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.gpu.config import GpuConfig, SimOptions


@dataclass(frozen=True)
class KernelTerm:
    """The batch-scaling term of one distinct kernel signature."""

    #: Sampled per-wave cycles (``sample_factor * wave_cycles``).
    wave_cost_cycles: float
    #: Blocks of the batch-1 launch.
    total_blocks: int
    #: Blocks retired per wave across the whole chip.
    blocks_per_wave: int
    #: How many launches in the network share this signature.
    count: int


class LatencyProfile:
    """Batch-size -> latency model of one network on one device."""

    def __init__(
        self,
        network: str,
        platform: str,
        clock_ghz: float,
        launch_overhead_cycles: float,
        terms: tuple[KernelTerm, ...],
        dynamic_j: float = 0.0,
        static_watts: float = 0.0,
    ) -> None:
        self.network = network
        self.platform = platform
        self.clock_ghz = clock_ghz
        self.launch_overhead_cycles = launch_overhead_cycles
        self.terms = terms
        #: GPUWattch dynamic (activity) energy of one inference; a
        #: batch-``b`` launch costs ``b * dynamic_j`` on top of static.
        self.dynamic_j = dynamic_j
        #: GPUWattch static (leakage) power of the platform; burns
        #: whether the device is busy or idle.
        self.static_watts = static_watts
        self._memo: dict[int, float] = {}

    def latency_ms(self, batch: int) -> float:
        """End-to-end latency of one batch-``batch`` inference."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        cached = self._memo.get(batch)
        if cached is None:
            cycles = self.launch_overhead_cycles
            for term in self.terms:
                waves = math.ceil(batch * term.total_blocks / term.blocks_per_wave)
                cycles += term.count * term.wave_cost_cycles * waves
            cached = cycles / (self.clock_ghz * 1e6)
            self._memo[batch] = cached
        return cached

    def throughput_rps(self, batch: int) -> float:
        """Steady-state inferences/second at a fixed batch size."""
        return batch * 1e3 / self.latency_ms(batch)

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "platform": self.platform,
            "clock_ghz": self.clock_ghz,
            "launch_overhead_cycles": self.launch_overhead_cycles,
            "terms": [
                [t.wave_cost_cycles, t.total_blocks, t.blocks_per_wave, t.count]
                for t in self.terms
            ],
            "dynamic_j": self.dynamic_j,
            "static_watts": self.static_watts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyProfile":
        return cls(
            network=data["network"],
            platform=data["platform"],
            clock_ghz=data["clock_ghz"],
            launch_overhead_cycles=data["launch_overhead_cycles"],
            terms=tuple(KernelTerm(*row) for row in data["terms"]),
            dynamic_j=data.get("dynamic_j", 0.0),
            static_watts=data.get("static_watts", 0.0),
        )


def profile_from_result(result) -> LatencyProfile:
    """Derive a :class:`LatencyProfile` from one ``NetworkResult``.

    Signature-identical kernel launches collapse into one term with a
    repeat count (ResNet's 228 launches reduce to a few dozen terms).
    The GPUWattch energy split rides along: per-inference dynamic
    energy plus the platform's static power, which the serving engine
    turns into per-tenant cost-per-request and fleet idle energy.
    """
    from repro.power.accel import power_model_for

    config = result.config
    model = power_model_for(config)
    merged: dict[str, list] = {}
    for kr in result.kernels:
        signature = kr.kernel.signature()
        entry = merged.get(signature)
        if entry is None:
            wave_cost = kr.sample_factor * kr.stats.wave_cycles
            blocks_per_wave = kr.occupancy.blocks * config.num_sms
            merged[signature] = [wave_cost, kr.kernel.total_blocks, blocks_per_wave, 1]
        else:
            entry[3] += 1
    terms = tuple(KernelTerm(*entry) for entry in merged.values())
    return LatencyProfile(
        network=result.network,
        platform=config.name,
        clock_ghz=config.clock_ghz,
        launch_overhead_cycles=float(
            len(result.kernels) * config.launch_overhead_cycles
        ),
        terms=terms,
        dynamic_j=model.dynamic_energy_joules(result.aggregate()),
        static_watts=model.static_watts,
    )


def build_profiles(
    networks: Iterable[str],
    platforms: Iterable[GpuConfig],
    options: SimOptions | None = None,
    store=None,
    jobs: int = 1,
    executor=None,
    refresh: bool = False,
) -> dict[tuple[str, str], LatencyProfile]:
    """Profile every (network, platform) pair via the shared executor.

    Extension networks (``mobilenet``) are first-class here: anything
    :func:`repro.kernels.compile.compiled_network` accepts can be
    profiled.  Device *instances* sharing a platform share one profile,
    keyed ``(network, platform.name)``.  Pass a
    :class:`~repro.runs.store.ResultStore` (or let ``executor`` carry
    one) to make repeat builds — and builds after a harness sweep over
    the same combos — near-instant.

    ``refresh=True`` re-simulates every pair serially instead of
    reading the store — ``repro trace serve`` uses it so an installed
    tracer (:mod:`repro.obs`) always sees the GPU layer.
    """
    from repro.runs.executor import Executor
    from repro.runs.spec import RunSpec

    options = options or SimOptions()
    unique: dict[str, GpuConfig] = {}
    for platform in platforms:
        unique.setdefault(platform.name, platform)
    if executor is None:
        executor = Executor(store)
    specs = [
        RunSpec(name, platform, options)
        for name in dict.fromkeys(networks)
        for platform in unique.values()
    ]
    if refresh:
        for spec in specs:
            executor.run(spec, refresh=True)
    else:
        executor.execute(specs, jobs=jobs)
    profiles: dict[tuple[str, str], LatencyProfile] = {}
    for spec in specs:
        result = executor.run(spec)
        profiles[(spec.network, spec.config.name)] = profile_from_result(result)
    return profiles


def profiles_for_platform(
    profiles: Mapping[tuple[str, str], LatencyProfile], platform_name: str
) -> dict[str, LatencyProfile]:
    """The ``network -> profile`` slice of one platform."""
    return {
        network: profile
        for (network, platform), profile in profiles.items()
        if platform == platform_name
    }
