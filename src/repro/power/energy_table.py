"""Per-access energy table (the GPUWattch coefficient file).

Values are per-event energies in picojoules, set to the relative
magnitudes GPUWattch's McPAT models produce for a 16 nm-class part and
calibrated so a fully-busy GP102 lands near its 250 W envelope.  The
*relative* ordering is what matters for reproducing Figure 5: the
register file is the most expensive SRAM per access (the paper calls it
the third most power-hungry structure, citing GPUWattch), L2 accesses
are costly, and DRAM dominates per byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies (pJ) and static powers (W).

    Component keys follow the paper's Figure 5 legend: IB, IC, DC, TC,
    CC, SHRD, RF, SP, SFU, FPU, SCHED, L2C, MC, NOC, DRAM, PIPE,
    IDLE_CORE, CONST_DYNAMIC.
    """

    #: Instruction buffer read per issued instruction.
    ib_pj: float = 54.0
    #: Instruction cache access per issued instruction.
    ic_pj: float = 72.0
    #: L1 data cache access.
    dc_pj: float = 480.0
    #: Texture cache access (the suite does not use texture memory).
    tc_pj: float = 270.0
    #: Constant cache access.
    cc_pj: float = 120.0
    #: Shared-memory access.
    shrd_pj: float = 330.0
    #: Register file: per operand read/write.  The RF is the largest
    #: on-chip SRAM and the top dynamic consumer (Observation, Fig. 5).
    rf_pj: float = 700.0
    #: Integer/simple ALU op.
    sp_pj: float = 360.0
    #: SFU op (transcendentals are wide datapaths).
    sfu_pj: float = 1200.0
    #: FP32 multiply-add datapath op.
    fpu_pj: float = 540.0
    #: Warp scheduler arbitration per issue.
    sched_pj: float = 330.0
    #: L2 cache access (bank + tag + wires).
    l2c_pj: float = 1950.0
    #: Memory-controller transaction.
    mc_pj: float = 1350.0
    #: NoC traversal per transaction.
    noc_pj: float = 780.0
    #: DRAM energy per byte.
    dram_pj_per_byte: float = 66.0
    #: Pipeline latch/control overhead per issued instruction.
    pipe_pj: float = 180.0
    #: Static (leakage + clocking) power of one idle-but-powered SM, W.
    idle_sm_watts: float = 1.1
    #: Constant non-core dynamic overhead, as a fraction of core dynamic.
    const_dynamic_fraction: float = 0.08
    #: Chip uncore static power (PLLs, IO, fans share), W.
    uncore_static_watts: float = 14.0


    def scaled_for_tdp(self, tdp_watts: float, reference_tdp: float = 250.0) -> "EnergyTable":
        """Scale the table for a different power class.

        Both per-access (dynamic) energies and static power scale with
        the square root of the TDP ratio: mobile parts lower voltage and
        narrow datapaths, but per-access energy shrinks slower than the
        board-level envelope (E is proportional to V^2, and V scales
        gently across power classes).  Calibrated so
        the TX1 board lands at its measured 6-9 W under load with a ~4 W
        floor — which reproduces the paper's Figure 6 peak-power ratios
        (2.28x / 3.2x vs the PynQ) and energy ratios (1.34x / 1.74x).
        """
        import dataclasses

        dyn = (tdp_watts / reference_tdp) ** 0.5
        stat = dyn
        fields = {}
        for field_info in dataclasses.fields(self):
            value = getattr(self, field_info.name)
            if field_info.name.endswith("_pj") or field_info.name == "dram_pj_per_byte":
                fields[field_info.name] = value * dyn
            elif field_info.name in ("idle_sm_watts", "uncore_static_watts"):
                fields[field_info.name] = value * stat
            else:
                fields[field_info.name] = value
        return EnergyTable(**fields)


#: Default coefficients, calibrated for the 250W GP102 class; other
#: platforms derive theirs via :meth:`EnergyTable.scaled_for_tdp`.
DEFAULT_ENERGY = EnergyTable()

#: Figure 5 legend order, bottom of the stack first.
FIGURE5_ORDER = (
    "IB",
    "IC",
    "DC",
    "TC",
    "CC",
    "SHRD",
    "RF",
    "SP",
    "SFU",
    "FPU",
    "SCHED",
    "L2C",
    "MC",
    "NOC",
    "DRAM",
    "PIPE",
    "IDLE_CORE",
    "CONST_DYNAMIC",
)
