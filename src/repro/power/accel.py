"""Energy model for tile-based accelerators, plus the model dispatcher.

FPGA and NPU backends carry their own first-order energy parameters on
the :class:`~repro.platforms.accel.AcceleratorConfig` itself — energy
per MAC and energy per DRAM byte, the two terms that dominate tiled
dataflow accelerators — rather than GPUWattch's per-structure access
energies, which have no analogue on a DSP array or a PE mesh.

:class:`AcceleratorPowerModel` exposes the same method surface the
consumers of :class:`~repro.power.gpuwattch.GpuWattchModel` rely on
(``static_watts``, ``dynamic_energy_joules``, ``window_seconds``,
``peak_power``), and :func:`power_model_for` picks the right model for
a config, so the serving profiles, campaign QoR rows and wall-meter
measurements stay platform-agnostic.
"""

from __future__ import annotations

from repro.gpu.config import GpuConfig
from repro.power.gpuwattch import GpuWattchModel
from repro.profiling.stats import KernelStats


class AcceleratorPowerModel:
    """First-order MAC + DRAM energy accounting for one accelerator."""

    def __init__(self, config):
        self.config = config

    # -- the GpuWattchModel surface the generic consumers use ----------
    @property
    def static_watts(self) -> float:
        """Device idle floor (fabric leakage, mesh clocks, DRAM refresh)."""
        return self.config.idle_watts

    def window_seconds(self, stats: KernelStats) -> float:
        """Wall-clock duration of the window *stats* covers."""
        return stats.cycles / (self.config.clock_ghz * 1e9)

    def dynamic_energy_joules(self, stats: KernelStats) -> float:
        """Activity-proportional energy: MACs plus DRAM traffic."""
        mac_j = stats.issued * self.config.energy_per_mac_pj * 1e-12
        dram_j = stats.dram_bytes * self.config.energy_per_dram_byte_pj * 1e-12
        return mac_j + dram_j

    def stats_power(self, stats: KernelStats) -> float:
        """Average watts over a stats window, capped at the device TDP."""
        window = self.window_seconds(stats)
        if window <= 0:
            return self.static_watts
        watts = self.static_watts + self.dynamic_energy_joules(stats) / window
        return min(watts, self.config.tdp_watts)

    def peak_power(self, result) -> float:
        """Highest per-layer average power of the run, in watts."""
        return max(
            (self.stats_power(k.stats) for k in result.kernels),
            default=self.static_watts,
        )

    def network_energy_joules(self, result) -> float:
        """Total energy of one inference: static x time + activity."""
        total = 0.0
        for kernel in result.kernels:
            stats = kernel.stats
            total += self.static_watts * self.window_seconds(stats)
            total += self.dynamic_energy_joules(stats)
        return total


def power_model_for(config):
    """The power model matching a platform's execution config."""
    if isinstance(config, GpuConfig):
        return GpuWattchModel(config)
    return AcceleratorPowerModel(config)
