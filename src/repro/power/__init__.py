"""Power models: GPUWattch-style component energy plus a device meter.

The paper measures power two ways (Section IV): GPUWattch on top of
GPGPU-Sim for per-component and per-layer detail (Figures 3-5), and a
Wattsup wall meter for device-level numbers on the embedded boards
(Figure 6).  This package mirrors both:

* :mod:`repro.power.energy_table` -- per-access energies and static
  power parameters.
* :mod:`repro.power.gpuwattch` -- activity x energy accounting over the
  simulator's :class:`~repro.profiling.stats.KernelStats`.
* :mod:`repro.power.wattsup` -- the board-level meter model used for the
  TX1-vs-PynQ energy comparison.
* :mod:`repro.power.accel` -- MAC + DRAM energy accounting for the
  tile-based accelerator backends, and :func:`power_model_for`, which
  dispatches a config to the model that understands it.
"""

from repro.power.accel import AcceleratorPowerModel, power_model_for
from repro.power.gpuwattch import ComponentPower, GpuWattchModel
from repro.power.wattsup import WattsupMeter

__all__ = [
    "AcceleratorPowerModel",
    "ComponentPower",
    "GpuWattchModel",
    "WattsupMeter",
    "power_model_for",
]
