"""Wattsup wall-meter model for device-level power (Figure 6).

The paper measures embedded boards with a Wattsup meter, which reports
instantaneous watts but not energy; they therefore compute energy as
``peak power x execution time`` (Section IV-B.3).  This module applies
the same procedure to simulated runs: device power = board baseline +
chip dynamic power, sampled per kernel; energy uses the paper's
peak-times-time formula so the comparison methodology matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.gpu.simulator import NetworkResult
from repro.power.accel import power_model_for


@dataclass(frozen=True)
class DeviceMeasurement:
    """What the wall meter yields for one benchmark run."""

    platform: str
    network: str
    time_s: float
    peak_watts: float

    @property
    def energy_j(self) -> float:
        """Energy as the paper computes it: peak power x execution time."""
        return self.peak_watts * self.time_s


class WattsupMeter:
    """Board-level meter over one simulated device run.

    Works for any registered platform: GPU configs meter through
    GPUWattch with the board-overhead uplift, accelerator configs
    through their MAC + DRAM model (whose estimate already covers the
    whole board — an FPGA's fabric or an NPU's mesh *is* the device).
    """

    def __init__(self, config, model=None):
        self.config = config
        self.model = model or power_model_for(config)

    def measure(self, result: NetworkResult) -> DeviceMeasurement:
        """Meter one network run on this board."""
        chip_peak = self.model.peak_power(result)
        if isinstance(self.config, GpuConfig):
            # Board overhead (VRM losses, memory, SoC uncore) rides on
            # top of the chip estimate; idle_watts is the board's floor.
            board_peak = self.config.idle_watts + 0.9 * chip_peak
        else:
            board_peak = chip_peak
        return DeviceMeasurement(
            platform=self.config.name,
            network=result.network,
            time_s=result.total_time_ms / 1e3,
            peak_watts=board_peak,
        )
